//! Small dense linear algebra: just enough for OLS with a few dozen
//! regressors. Row-major storage, Cholesky factorization for symmetric
//! positive-definite solves.

use crate::{Result, StatsError};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row-major data. `data.len()` must equal `rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(StatsError::DimensionMismatch {
                context: "Matrix::from_rows: data length != rows*cols",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Borrow a row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(StatsError::DimensionMismatch {
                context: "matmul: inner dimensions",
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(StatsError::DimensionMismatch {
                context: "matvec: vector length",
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Gram matrix `Xᵀ X` computed directly (symmetric, so only the upper
    /// triangle is computed and mirrored).
    pub fn gram(&self) -> Matrix {
        let k = self.cols;
        let mut g = Matrix::zeros(k, k);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..k {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..k {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        for i in 0..k {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `Xᵀ y`.
    pub fn xty(&self, y: &[f64]) -> Result<Vec<f64>> {
        if self.rows != y.len() {
            return Err(StatsError::DimensionMismatch {
                context: "xty: y length != rows",
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            let row = self.row(r);
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x * yr;
            }
        }
        Ok(out)
    }

    /// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite
    /// matrix. Returns the lower-triangular factor.
    pub fn cholesky(&self) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(StatsError::DimensionMismatch {
                context: "cholesky: not square",
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(StatsError::RankDeficient);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solve `A x = b` for symmetric positive-definite `A` (this matrix)
    /// via Cholesky forward/back substitution.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>> {
        let l = self.cholesky()?;
        let n = self.rows;
        if b.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "solve_spd: rhs length",
            });
        }
        // Forward: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * z[k];
            }
            z[i] = sum / l[(i, i)];
        }
        // Back: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in i + 1..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Ok(x)
    }

    /// Inverse of a symmetric positive-definite matrix via Cholesky
    /// (column-by-column solves against the identity).
    pub fn inverse_spd(&self) -> Result<Matrix> {
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve_spd(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Frobenius norm of the difference with another matrix (testing aid).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, d: &[f64]) -> Matrix {
        Matrix::from_rows(rows, cols, d.to_vec()).unwrap()
    }

    #[test]
    fn matmul_known() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_dimension_check() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 2, &[0.0; 4]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let x = mat(4, 2, &[1.0, 2.0, 1.0, 3.0, 1.0, 5.0, 1.0, 7.0]);
        let g = x.gram();
        let explicit = x.transpose().matmul(&x).unwrap();
        assert!(g.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn cholesky_reconstructs() {
        // SPD matrix.
        let a = mat(3, 3, &[4.0, 2.0, 0.6, 2.0, 5.0, 1.5, 0.6, 1.5, 3.0]);
        let l = a.cholesky().unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        assert!(a.max_abs_diff(&back) < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = mat(2, 2, &[1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn solve_spd_known_system() {
        let a = mat(2, 2, &[4.0, 1.0, 1.0, 3.0]);
        let x = a.solve_spd(&[1.0, 2.0]).unwrap();
        // Solution of [[4,1],[1,3]] x = [1,2] is [1/11, 7/11].
        assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
        assert!((x[1] - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_spd_gives_identity() {
        let a = mat(3, 3, &[4.0, 2.0, 0.6, 2.0, 5.0, 1.5, 0.6, 1.5, 3.0]);
        let inv = a.inverse_spd().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn matvec_known() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let v = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
    }
}
