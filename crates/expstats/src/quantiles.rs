//! Quantile estimation and quantile treatment effects.
//!
//! The paper notes (§2, "Note on averages") that practitioners regularly
//! estimate *quantile* treatment effects — e.g. the difference in 99th
//! percentile latency between treatment and control — and that all the
//! estimands generalize by replacing the mean with a quantile estimator.
//! This module provides those estimators.

use crate::rng::SplitMix64;
use crate::{Result, StatsError};

/// Linear-interpolation quantile (R type 7, the default in R/NumPy) on a
/// pre-sorted slice. `q` must be in `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Quantile of an unsorted sample (copies and sorts internally).
///
/// Rejects non-finite observations (NaN would otherwise poison the sort
/// order silently) and out-of-range `q` with [`StatsError`] instead of
/// panicking, so a single bad session metric cannot take down a sweep.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewObservations { got: 0, need: 1 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            context: "quantile: q must be in [0,1]",
        });
    }
    if xs.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::InvalidParameter {
            context: "quantile: non-finite value in sample",
        });
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    Ok(quantile_sorted(&v, q))
}

/// A quantile treatment effect: the difference between the `q`-quantile of
/// the treatment sample and the `q`-quantile of the control sample, with a
/// bootstrap confidence interval.
#[derive(Debug, Clone)]
pub struct QuantileEffect {
    /// Quantile level in `[0, 1]`.
    pub q: f64,
    /// Treatment-sample quantile.
    pub treat_q: f64,
    /// Control-sample quantile.
    pub control_q: f64,
    /// Point estimate `treat_q - control_q`.
    pub effect: f64,
    /// Bootstrap percentile 95% confidence interval for the effect.
    pub ci95: (f64, f64),
}

/// Estimate the quantile treatment effect at level `q` with a percentile
/// bootstrap (`reps` resamples, explicit `seed`).
pub fn quantile_effect(
    treat: &[f64],
    control: &[f64],
    q: f64,
    reps: usize,
    seed: u64,
) -> Result<QuantileEffect> {
    if treat.len() < 2 || control.len() < 2 {
        return Err(StatsError::TooFewObservations {
            got: treat.len().min(control.len()),
            need: 2,
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter {
            context: "quantile_effect: q must be in [0,1]",
        });
    }
    let tq = quantile(treat, q)?;
    let cq = quantile(control, q)?;
    let mut rng = SplitMix64::new(seed);
    let mut effects = Vec::with_capacity(reps);
    let mut buf_t = vec![0.0; treat.len()];
    let mut buf_c = vec![0.0; control.len()];
    for _ in 0..reps {
        for slot in buf_t.iter_mut() {
            *slot = treat[rng.next_below(treat.len() as u64) as usize];
        }
        for slot in buf_c.iter_mut() {
            *slot = control[rng.next_below(control.len() as u64) as usize];
        }
        effects.push(quantile(&buf_t, q)? - quantile(&buf_c, q)?);
    }
    effects.sort_by(f64::total_cmp);
    let lo = quantile_sorted(&effects, 0.025);
    let hi = quantile_sorted(&effects, 0.975);
    Ok(QuantileEffect {
        q,
        treat_q: tq,
        control_q: cq,
        effect: tq - cq,
        ci95: (lo, hi),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 3.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn median_of_uniform_grid() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.5).unwrap(), 50.0);
        assert_eq!(quantile(&xs, 0.99).unwrap(), 99.0);
    }

    #[test]
    fn effect_detects_shift() {
        // Treatment is control shifted by +5; every quantile effect is 5.
        let control: Vec<f64> = (0..200).map(|i| i as f64 * 0.1).collect();
        let treat: Vec<f64> = control.iter().map(|x| x + 5.0).collect();
        let e = quantile_effect(&treat, &control, 0.9, 200, 1).unwrap();
        assert!((e.effect - 5.0).abs() < 1e-9);
        assert!(e.ci95.0 <= 5.0 && 5.0 <= e.ci95.1);
    }

    #[test]
    fn effect_null_covers_zero() {
        let control: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
        let treat: Vec<f64> = (0..300).map(|i| ((i * 7) % 37) as f64).collect();
        let e = quantile_effect(&treat, &control, 0.5, 300, 2).unwrap();
        assert!(e.ci95.0 <= 0.0 && 0.0 <= e.ci95.1, "ci {:?}", e.ci95);
    }

    #[test]
    fn effect_rejects_bad_input() {
        assert!(quantile_effect(&[1.0], &[1.0, 2.0], 0.5, 10, 0).is_err());
        assert!(quantile_effect(&[1.0, 2.0], &[1.0, 2.0], 1.5, 10, 0).is_err());
    }

    #[test]
    fn quantile_rejects_nan_instead_of_panicking() {
        // Regression: this used to panic inside sort_by via
        // `partial_cmp(..).expect("NaN in sample")`.
        let xs = [1.0, f64::NAN, 3.0];
        assert_eq!(
            quantile(&xs, 0.5),
            Err(StatsError::InvalidParameter {
                context: "quantile: non-finite value in sample",
            })
        );
        assert!(quantile(&[1.0, f64::INFINITY], 0.5).is_err());
        assert!(quantile(&[1.0, 2.0], -0.1).is_err());
    }

    #[test]
    fn quantile_effect_rejects_nan_sample() {
        // A NaN session metric (e.g. play delay of a cancelled session)
        // must surface as an error, not a panic mid-bootstrap.
        let treat = [1.0, f64::NAN, 3.0];
        let control = [1.0, 2.0, 3.0];
        assert!(quantile_effect(&treat, &control, 0.5, 10, 0).is_err());
        assert!(quantile_effect(&control, &treat, 0.5, 10, 0).is_err());
    }
}
