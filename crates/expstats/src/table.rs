//! Plain-text table rendering for the benchmark binaries that regenerate
//! the paper's tables and figures.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers; the first column is
    /// left-aligned, the rest right-aligned (the common numeric layout).
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let aligns = header
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            header,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override the alignment of a column.
    pub fn align(mut self, col: usize, a: Align) -> Table {
        if col < self.aligns.len() {
            self.aligns[col] = a;
        }
        self
    }

    /// Append a row; missing cells render empty, extra cells are dropped.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => line.push_str(&format!("{cell:<w$}", w = widths[i])),
                    Align::Right => line.push_str(&format!("{cell:>w$}", w = widths[i])),
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths, &self.aligns));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as a signed percentage with one decimal, e.g. `+12.3%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Format a `(lo, hi)` fraction interval as a percentage range.
pub fn pct_ci(ci: (f64, f64)) -> String {
    format!("[{:+.1}%, {:+.1}%]", ci.0 * 100.0, ci.1 * 100.0)
}

/// Render a normalized series as a sparkline-like ASCII bar chart row
/// (used by the time-series "figures").
pub fn ascii_bars(values: &[f64], width: usize) -> Vec<String> {
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min).min(0.0);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|&v| {
            let filled = (((v - min) / span) * width as f64).round() as usize;
            format!("{} {:.3}", "#".repeat(filled.min(width)), v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut t = Table::new(vec!["metric", "effect"]);
        t.row(vec!["throughput", "+12.0%"]);
        t.row(vec!["rtt", "-24.0%"]);
        let s = t.render();
        assert!(s.contains("metric"));
        assert!(s.contains("throughput"));
        assert!(s.lines().count() == 4);
        // Numeric column right-aligned: both values end at same column.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pads_missing_cells() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.123), "+12.3%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(pct_ci((-0.01, 0.02)), "[-1.0%, +2.0%]");
    }

    #[test]
    fn ascii_bars_monotone_in_value() {
        let bars = ascii_bars(&[0.0, 0.5, 1.0], 10);
        let lens: Vec<usize> = bars.iter().map(|b| b.find(' ').unwrap()).collect();
        assert!(lens[0] < lens[1] && lens[1] < lens[2]);
    }
}
