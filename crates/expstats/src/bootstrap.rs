//! Bootstrap resampling: iid percentile bootstrap and the moving-block
//! bootstrap for autocorrelated (time-series) data.
//!
//! Switchback and event-study analyses operate on short autocorrelated
//! hourly series; the moving-block bootstrap provides a nonparametric
//! cross-check of the Newey–West intervals.

use crate::quantiles::quantile_sorted;
use crate::rng::SplitMix64;
use crate::{Result, StatsError};

/// A bootstrap confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Percentile interval at the requested level.
    pub ci: (f64, f64),
    /// Number of resamples used.
    pub reps: usize,
}

/// Percentile bootstrap for an arbitrary statistic of one sample.
pub fn bootstrap_ci<F>(
    xs: &[f64],
    statistic: F,
    reps: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    if xs.len() < 2 {
        return Err(StatsError::TooFewObservations {
            got: xs.len(),
            need: 2,
        });
    }
    if reps < 10 {
        return Err(StatsError::InvalidParameter {
            context: "bootstrap reps must be >= 10",
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            context: "level must be in (0,1)",
        });
    }
    let mut rng = SplitMix64::new(seed);
    let mut stats = Vec::with_capacity(reps);
    let mut buf = vec![0.0; xs.len()];
    for _ in 0..reps {
        for slot in buf.iter_mut() {
            *slot = xs[rng.next_below(xs.len() as u64) as usize];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN statistic in bootstrap"));
    let alpha = (1.0 - level) / 2.0;
    Ok(BootstrapCi {
        estimate: statistic(xs),
        ci: (
            quantile_sorted(&stats, alpha),
            quantile_sorted(&stats, 1.0 - alpha),
        ),
        reps,
    })
}

/// Two-sample percentile bootstrap for the difference of a statistic.
pub fn bootstrap_diff_ci<F>(
    treat: &[f64],
    control: &[f64],
    statistic: F,
    reps: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    if treat.len() < 2 || control.len() < 2 {
        return Err(StatsError::TooFewObservations {
            got: treat.len().min(control.len()),
            need: 2,
        });
    }
    let mut rng = SplitMix64::new(seed);
    let mut stats = Vec::with_capacity(reps);
    let mut bt = vec![0.0; treat.len()];
    let mut bc = vec![0.0; control.len()];
    for _ in 0..reps {
        for slot in bt.iter_mut() {
            *slot = treat[rng.next_below(treat.len() as u64) as usize];
        }
        for slot in bc.iter_mut() {
            *slot = control[rng.next_below(control.len() as u64) as usize];
        }
        stats.push(statistic(&bt) - statistic(&bc));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN statistic in bootstrap"));
    let alpha = (1.0 - level) / 2.0;
    Ok(BootstrapCi {
        estimate: statistic(treat) - statistic(control),
        ci: (
            quantile_sorted(&stats, alpha),
            quantile_sorted(&stats, 1.0 - alpha),
        ),
        reps,
    })
}

/// Moving-block bootstrap for a statistic of an autocorrelated series.
///
/// Resamples overlapping blocks of length `block_len` (with replacement)
/// and concatenates them to the original length, preserving short-range
/// dependence inside blocks.
pub fn block_bootstrap_ci<F>(
    xs: &[f64],
    block_len: usize,
    statistic: F,
    reps: usize,
    level: f64,
    seed: u64,
) -> Result<BootstrapCi>
where
    F: Fn(&[f64]) -> f64,
{
    let n = xs.len();
    if n < 2 {
        return Err(StatsError::TooFewObservations { got: n, need: 2 });
    }
    if block_len == 0 || block_len > n {
        return Err(StatsError::InvalidParameter {
            context: "block_len must be in 1..=len(xs)",
        });
    }
    let n_blocks = n - block_len + 1; // number of available overlapping blocks
    let mut rng = SplitMix64::new(seed);
    let mut stats = Vec::with_capacity(reps);
    let mut buf = Vec::with_capacity(n + block_len);
    for _ in 0..reps {
        buf.clear();
        while buf.len() < n {
            let start = rng.next_below(n_blocks as u64) as usize;
            buf.extend_from_slice(&xs[start..start + block_len]);
        }
        buf.truncate(n);
        stats.push(statistic(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN statistic in bootstrap"));
    let alpha = (1.0 - level) / 2.0;
    Ok(BootstrapCi {
        estimate: statistic(xs),
        ci: (
            quantile_sorted(&stats, alpha),
            quantile_sorted(&stats, 1.0 - alpha),
        ),
        reps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::mean;

    #[test]
    fn mean_ci_covers_truth() {
        // 10 full cycles of 0..21 so the sample mean is exactly 10-10+5 = 5.
        let xs: Vec<f64> = (0..210).map(|i| (i % 21) as f64 - 10.0 + 5.0).collect();
        let b = bootstrap_ci(&xs, mean, 500, 0.95, 42).unwrap();
        assert!(b.ci.0 <= 5.0 && 5.0 <= b.ci.1, "{:?}", b.ci);
        assert!((b.estimate - 5.0).abs() < 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let a = bootstrap_ci(&xs, mean, 200, 0.95, 7).unwrap();
        let b = bootstrap_ci(&xs, mean, 200, 0.95, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn diff_ci_detects_shift() {
        let c: Vec<f64> = (0..100).map(|i| (i % 11) as f64).collect();
        let t: Vec<f64> = c.iter().map(|x| x + 3.0).collect();
        let b = bootstrap_diff_ci(&t, &c, mean, 400, 0.95, 9).unwrap();
        assert!((b.estimate - 3.0).abs() < 1e-9);
        assert!(b.ci.0 > 0.0, "interval should exclude zero: {:?}", b.ci);
    }

    #[test]
    fn block_bootstrap_respects_length_invariants() {
        let xs: Vec<f64> = (0..60).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = block_bootstrap_ci(&xs, 6, mean, 300, 0.9, 3).unwrap();
        assert!(b.ci.0 <= b.ci.1);
        assert!(block_bootstrap_ci(&xs, 0, mean, 300, 0.9, 3).is_err());
        assert!(block_bootstrap_ci(&xs, 61, mean, 300, 0.9, 3).is_err());
    }

    #[test]
    fn block_bootstrap_wider_than_iid_for_autocorrelated_series() {
        // AR-like slow sine: iid bootstrap underestimates the variance of
        // the mean; block bootstrap should yield a wider interval.
        let xs: Vec<f64> = (0..240).map(|i| (i as f64 * 0.05).sin() * 2.0).collect();
        let iid = bootstrap_ci(&xs, mean, 600, 0.95, 11).unwrap();
        let blk = block_bootstrap_ci(&xs, 24, mean, 600, 0.95, 11).unwrap();
        let w_iid = iid.ci.1 - iid.ci.0;
        let w_blk = blk.ci.1 - blk.ci.0;
        assert!(w_blk > w_iid, "block {w_blk} vs iid {w_iid}");
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(bootstrap_ci(&[1.0], mean, 100, 0.95, 0).is_err());
        assert!(bootstrap_ci(&[1.0, 2.0], mean, 5, 0.95, 0).is_err());
        assert!(bootstrap_ci(&[1.0, 2.0], mean, 100, 1.5, 0).is_err());
    }
}
