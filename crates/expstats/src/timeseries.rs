//! Time-series utilities: autocovariance, autocorrelation and automatic
//! HAC lag selection.
//!
//! The paper fixes the Newey–West lag at 2 for hourly aggregates; the
//! Newey–West (1994) plug-in rule here lets users validate that choice on
//! their own data.

use crate::describe::mean;
use crate::{Result, StatsError};

/// Sample autocovariance at the given lag (biased, `1/n` normalization, as
/// is standard for spectral estimation).
pub fn autocovariance(xs: &[f64], lag: usize) -> Result<f64> {
    let n = xs.len();
    if n < 2 {
        return Err(StatsError::TooFewObservations { got: n, need: 2 });
    }
    if lag >= n {
        return Err(StatsError::InvalidParameter {
            context: "autocovariance: lag >= length",
        });
    }
    let m = mean(xs);
    let s: f64 = (lag..n).map(|t| (xs[t] - m) * (xs[t - lag] - m)).sum();
    Ok(s / n as f64)
}

/// Sample autocorrelation at the given lag.
pub fn autocorrelation(xs: &[f64], lag: usize) -> Result<f64> {
    let g0 = autocovariance(xs, 0)?;
    if g0 == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "autocorrelation: zero-variance series",
        });
    }
    Ok(autocovariance(xs, lag)? / g0)
}

/// Newey–West (1994) rule-of-thumb bandwidth for the Bartlett kernel:
/// `floor(4 (n/100)^{2/9})`.
pub fn newey_west_auto_lag(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    (4.0 * (n as f64 / 100.0).powf(2.0 / 9.0)).floor() as usize
}

/// Ljung–Box statistic for joint autocorrelation up to `max_lag`.
/// Returns `(statistic, dof)`; the statistic is asymptotically χ²(dof)
/// under the white-noise null.
pub fn ljung_box(xs: &[f64], max_lag: usize) -> Result<(f64, usize)> {
    let n = xs.len();
    if n <= max_lag + 1 {
        return Err(StatsError::TooFewObservations {
            got: n,
            need: max_lag + 2,
        });
    }
    let mut q = 0.0;
    for l in 1..=max_lag {
        let r = autocorrelation(xs, l)?;
        q += r * r / (n - l) as f64;
    }
    Ok((q * n as f64 * (n as f64 + 2.0), max_lag))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag0_autocovariance_is_biased_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let g0 = autocovariance(&xs, 0).unwrap();
        // Biased variance with 1/n: mean 2.5, ss = 5.0, /4 = 1.25.
        assert!((g0 - 1.25).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_bounds() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        for lag in 0..10 {
            let r = autocorrelation(&xs, lag).unwrap();
            assert!((-1.0..=1.0).contains(&r), "lag {lag} r {r}");
        }
        assert!((autocorrelation(&xs, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let xs: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1).unwrap() < -0.9);
    }

    #[test]
    fn smooth_series_has_positive_lag1() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.05).sin()).collect();
        assert!(autocorrelation(&xs, 1).unwrap() > 0.9);
    }

    #[test]
    fn auto_lag_rule_values() {
        assert_eq!(newey_west_auto_lag(100), 4);
        assert_eq!(newey_west_auto_lag(0), 0);
        // Hourly cells of a 5-day experiment: 24*5 = 120 observations per arm.
        let l = newey_west_auto_lag(120);
        assert!((2..=6).contains(&l), "lag {l}");
    }

    #[test]
    fn ljung_box_larger_for_correlated_series() {
        let mut rng = crate::rng::SplitMix64::new(17);
        let noise: Vec<f64> = (0..100).map(|_| rng.next_f64() - 0.5).collect();
        let smooth: Vec<f64> = (0..100).map(|i| (i as f64 * 0.05).sin()).collect();
        let (q_noise, _) = ljung_box(&noise, 5).unwrap();
        let (q_smooth, _) = ljung_box(&smooth, 5).unwrap();
        assert!(q_smooth > q_noise, "{q_smooth} vs {q_noise}");
    }

    #[test]
    fn input_validation() {
        assert!(autocovariance(&[1.0], 0).is_err());
        assert!(autocovariance(&[1.0, 2.0], 2).is_err());
        assert!(ljung_box(&[1.0, 2.0, 3.0], 5).is_err());
    }
}
