//! Statistics for the analysis of randomized experiments.
//!
//! This crate implements, from scratch, exactly the statistical machinery
//! required by Appendix B of *Unbiased Experiments in Congested Networks*
//! (IMC '21):
//!
//! * ordinary least squares with arbitrary design matrices (hour-of-day
//!   fixed effects are just columns) — [`ols`],
//! * heteroskedasticity-and-autocorrelation-consistent (HAC) standard
//!   errors via the Newey–West estimator — [`ols::CovEstimator::NeweyWest`],
//! * normal and Student-t distributions for confidence intervals —
//!   [`dist`],
//! * descriptive statistics, quantiles and quantile treatment effects —
//!   [`describe`], [`quantiles`],
//! * two-sample inference (Welch) used for unit-level A/B analysis —
//!   [`infer`],
//! * bootstrap resampling (iid and moving-block, for time series) —
//!   [`bootstrap`],
//! * power / sample-size calculations used to size switchback intervals —
//!   [`power`],
//! * autocovariance utilities and automatic HAC lag selection —
//!   [`timeseries`],
//! * mergeable one-pass accumulators (Welford cells, normal-equation OLS,
//!   CRV1 cluster state) for streaming fleet aggregation — [`accum`],
//! * data-quality guardrails (sample-ratio-mismatch chi-square) for
//!   lossy-telemetry pipelines — [`quality`].
//!
//! The Rust statistics ecosystem is young; implementing these ~15 routines
//! directly keeps the workspace dependency-free and lets us property-test
//! every numerical kernel against closed-form cases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accum;
pub mod bootstrap;
pub mod describe;
pub mod dist;
pub mod infer;
pub mod linalg;
pub mod ols;
pub mod power;
pub mod quality;
pub mod quantiles;
pub mod rng;
pub mod table;
pub mod timeseries;

pub use accum::{ClusterOlsAccum, OlsAccum, WelfordCell};
pub use describe::{mean, stddev, variance, Summary};
pub use infer::{
    columnwise_mean_ci, diff_in_means, diff_in_means_cells, diff_in_means_moments, mean_ci,
    welch_t_test, DiffEstimate,
};
pub use linalg::Matrix;
pub use ols::{CovEstimator, Ols, OlsFit};
pub use quality::{sample_ratio_mismatch, SrmCell, SrmTest};

/// Errors produced by statistical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// Not enough observations to compute the requested quantity.
    TooFewObservations {
        /// How many observations were provided.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// The design matrix is rank deficient (or numerically so).
    RankDeficient,
    /// Dimension mismatch between inputs.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: &'static str,
    },
    /// An input parameter was outside its valid domain.
    InvalidParameter {
        /// Human-readable description of the violation.
        context: &'static str,
    },
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::TooFewObservations { got, need } => {
                write!(f, "too few observations: got {got}, need at least {need}")
            }
            StatsError::RankDeficient => write!(f, "design matrix is rank deficient"),
            StatsError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            StatsError::InvalidParameter { context } => {
                write!(f, "invalid parameter: {context}")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;
