//! Mergeable one-pass accumulators for streaming estimation.
//!
//! The fleet simulations of §6 produce far more session records than fit
//! in memory (the paper's regime is a CDN serving millions of concurrent
//! viewers), so the sweep layer folds each finished link run into
//! *sufficient statistics* the moment it completes and drops the records.
//! Every accumulator here supports an associative, order-insensitive
//! `merge`, which is what makes work-stealing reduction correct: worker
//! partials can be combined in any order and the final state is the same
//! set of sufficient statistics the single-pass batch estimator would
//! have seen.
//!
//! * [`WelfordCell`] — count / mean / M2 via Welford's algorithm with the
//!   Chan et al. parallel combination step; enough for means, variances
//!   and Welch t inference.
//! * [`OlsAccum`] — normal-equation state `X'X`, `X'y`, `y'y` for
//!   one-pass OLS; solving uses the same Cholesky inverse as
//!   [`crate::ols::Ols::fit`], so coefficients agree with the batch path
//!   to rounding error.
//! * [`ClusterOlsAccum`] — adds per-cluster `X'X`/`X'y` blocks, which are
//!   sufficient for the CRV1 (Liang–Zeger) clustered covariance because
//!   the per-cluster score sum is `s_g = X_g'y − X_g'X_g β̂`.
//!
//! The quantile analogue (a bounded reservoir sketch) lives with the
//! fleet analysis in the `unbiased` crate, since it needs stable record
//! identities to stay deterministic.

use std::collections::BTreeMap;

use crate::linalg::Matrix;
use crate::{Result, StatsError};

/// Streaming count / mean / M2 cell (Welford's online algorithm).
///
/// `M2` is the sum of squared deviations from the running mean, so
/// `variance = M2 / (n − 1)`. The merge step is Chan, Golub & LeVeque's
/// pairwise combination; it is exact in real arithmetic for any merge
/// order, and the fleet layer only merges cells in a deterministic order
/// so results are reproducible bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WelfordCell {
    /// Number of observations folded in.
    pub n: u64,
    /// Running mean (0 when empty).
    pub mean: f64,
    /// Sum of squared deviations from the mean (0 when empty).
    pub m2: f64,
}

impl WelfordCell {
    /// Empty cell.
    pub fn new() -> WelfordCell {
        WelfordCell::default()
    }

    /// Fold one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Combine with another cell (associative; either side may be empty).
    pub fn merge(&mut self, other: &WelfordCell) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }

    /// Sum of observations `Σx = n · mean`.
    pub fn sum(&self) -> f64 {
        self.n as f64 * self.mean
    }

    /// Sum of squared observations `Σx² = M2 + n · mean²`.
    pub fn sum_sq(&self) -> f64 {
        self.m2 + self.n as f64 * self.mean * self.mean
    }

    /// Sample variance (n − 1 denominator); NaN with fewer than two
    /// observations, matching [`crate::describe::variance`].
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
}

/// One-pass OLS state: `X'X` (dense symmetric, row-major `k × k`),
/// `X'y`, `y'y` and the observation count.
///
/// Merging two accumulators just adds the matrices, so the state after
/// any partition/merge order equals the state of a single pass — the
/// property the streaming fleet path relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsAccum {
    k: usize,
    n: u64,
    xtx: Vec<f64>,
    xty: Vec<f64>,
    yty: f64,
}

/// Solution of the normal equations accumulated in [`OlsAccum`].
#[derive(Debug, Clone)]
pub struct OlsNormalFit {
    /// Estimated coefficients (one per design column).
    pub coef: Vec<f64>,
    /// `(X'X)⁻¹`, for covariance computations.
    pub xtx_inv: Matrix,
    /// Residual sum of squares `y'y − β̂·X'y`.
    pub rss: f64,
    /// Observations folded in.
    pub n: usize,
    /// Number of regressors.
    pub k: usize,
}

impl OlsNormalFit {
    /// Classic spherical-error standard errors `σ̂ √[(X'X)⁻¹]_jj` with
    /// `σ̂² = rss / (n − k)`.
    pub fn std_errors(&self) -> Vec<f64> {
        let sigma2 = self.rss.max(0.0) / (self.n - self.k) as f64;
        (0..self.k)
            .map(|j| (sigma2 * self.xtx_inv[(j, j)].max(0.0)).sqrt())
            .collect()
    }
}

impl OlsAccum {
    /// Empty accumulator for `k` regressors.
    pub fn new(k: usize) -> OlsAccum {
        OlsAccum {
            k,
            n: 0,
            xtx: vec![0.0; k * k],
            xty: vec![0.0; k],
            yty: 0.0,
        }
    }

    /// Number of regressors.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Observations folded in.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Fold one observation `(x row, y)`.
    pub fn push(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len(), self.k, "OlsAccum::push: row length != k");
        for i in 0..self.k {
            for j in 0..self.k {
                self.xtx[i * self.k + j] += x[i] * x[j];
            }
            self.xty[i] += x[i] * y;
        }
        self.yty += y * y;
        self.n += 1;
    }

    /// Fold a precomputed block of observations: `xtx`/`xty`/`yty` summed
    /// over `n` rows (e.g. derived in closed form from a Welford cell).
    pub fn push_block(&mut self, xtx: &[f64], xty: &[f64], yty: f64, n: u64) {
        assert_eq!(xtx.len(), self.k * self.k, "push_block: xtx size");
        assert_eq!(xty.len(), self.k, "push_block: xty size");
        for (a, b) in self.xtx.iter_mut().zip(xtx) {
            *a += b;
        }
        for (a, b) in self.xty.iter_mut().zip(xty) {
            *a += b;
        }
        self.yty += yty;
        self.n += n;
    }

    /// Combine with another accumulator (element-wise sums; associative).
    pub fn merge(&mut self, other: &OlsAccum) {
        assert_eq!(self.k, other.k, "OlsAccum::merge: mismatched k");
        self.push_block(&other.xtx, &other.xty, other.yty, other.n);
    }

    /// Solve the normal equations `X'X β = X'y` via the same SPD
    /// Cholesky inverse the batch path uses.
    ///
    /// Errors if under-determined (`n ≤ k`) or the Gram matrix is
    /// (numerically) rank deficient — the same failures as
    /// [`crate::ols::Ols::fit`].
    pub fn solve(&self) -> Result<OlsNormalFit> {
        let n = self.n as usize;
        if n <= self.k {
            return Err(StatsError::TooFewObservations {
                got: n,
                need: self.k + 1,
            });
        }
        let xtx = Matrix::from_rows(self.k, self.k, self.xtx.clone())?;
        let xtx_inv = xtx.inverse_spd()?;
        let coef = xtx_inv.matvec(&self.xty)?;
        let explained: f64 = coef.iter().zip(&self.xty).map(|(b, v)| b * v).sum();
        Ok(OlsNormalFit {
            rss: self.yty - explained,
            coef,
            xtx_inv,
            n,
            k: self.k,
        })
    }
}

/// Per-cluster normal-equation blocks on top of [`OlsAccum`]: sufficient
/// state for CRV1 (Liang–Zeger) cluster-robust covariance.
///
/// The CRV1 meat is `Σ_g s_g s_g'` with score sums
/// `s_g = Σ_{t∈g} u_t x_t = X_g'y − X_g'X_g β̂`, so per-cluster
/// `X'X`/`X'y` blocks are all that must be retained — memory grows with
/// the number of clusters (links), not observations (sessions).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOlsAccum {
    global: OlsAccum,
    clusters: BTreeMap<usize, OlsAccum>,
}

/// Fit with CRV1 cluster-robust standard errors from accumulated state.
#[derive(Debug, Clone)]
pub struct ClusterOlsFit {
    /// Estimated coefficients.
    pub coef: Vec<f64>,
    /// CRV1 standard errors (inference uses `G − 1` dof).
    pub std_errors: Vec<f64>,
    /// Observations folded in.
    pub n: usize,
    /// Number of distinct clusters with at least one observation.
    pub g: usize,
}

impl ClusterOlsAccum {
    /// Empty accumulator for `k` regressors.
    pub fn new(k: usize) -> ClusterOlsAccum {
        ClusterOlsAccum {
            global: OlsAccum::new(k),
            clusters: BTreeMap::new(),
        }
    }

    /// Fold one observation `(cluster label, x row, y)`.
    pub fn push(&mut self, cluster: usize, x: &[f64], y: f64) {
        let k = self.global.k;
        self.global.push(x, y);
        self.clusters
            .entry(cluster)
            .or_insert_with(|| OlsAccum::new(k))
            .push(x, y);
    }

    /// Fold a precomputed block belonging to one cluster.
    pub fn push_block(&mut self, cluster: usize, xtx: &[f64], xty: &[f64], yty: f64, n: u64) {
        if n == 0 {
            return;
        }
        let k = self.global.k;
        self.global.push_block(xtx, xty, yty, n);
        self.clusters
            .entry(cluster)
            .or_insert_with(|| OlsAccum::new(k))
            .push_block(xtx, xty, yty, n);
    }

    /// Combine with another accumulator. Cluster blocks with the same
    /// label are summed, so splitting one cluster's observations across
    /// workers is safe.
    pub fn merge(&mut self, other: &ClusterOlsAccum) {
        self.global.merge(&other.global);
        for (label, block) in &other.clusters {
            match self.clusters.get_mut(label) {
                Some(mine) => mine.merge(block),
                None => {
                    self.clusters.insert(*label, block.clone());
                }
            }
        }
    }

    /// Number of distinct clusters seen.
    pub fn g(&self) -> usize {
        self.clusters.len()
    }

    /// Observations folded in.
    pub fn n(&self) -> u64 {
        self.global.n
    }

    /// Solve and compute CRV1 standard errors with the same small-sample
    /// correction `G/(G−1) · (n−1)/(n−k)` as
    /// [`crate::ols::OlsFit::covariance_clustered`].
    pub fn fit(&self) -> Result<ClusterOlsFit> {
        let g = self.clusters.len();
        if g < 2 {
            return Err(StatsError::TooFewObservations { got: g, need: 2 });
        }
        let sol = self.global.solve()?;
        let k = sol.k;
        // Meat: Σ_g s_g s_g' with s_g = X_g'y − X_g'X_g β̂.
        let mut meat = Matrix::zeros(k, k);
        let mut s_g = vec![0.0; k];
        for block in self.clusters.values() {
            for (i, s) in s_g.iter_mut().enumerate() {
                let mut v = block.xty[i];
                for j in 0..k {
                    v -= block.xtx[i * k + j] * sol.coef[j];
                }
                *s = v;
            }
            for i in 0..k {
                for j in 0..k {
                    meat[(i, j)] += s_g[i] * s_g[j];
                }
            }
        }
        let n = sol.n;
        let correction = (g as f64 / (g as f64 - 1.0)) * ((n as f64 - 1.0) / (n as f64 - k as f64));
        let cov = sol.xtx_inv.matmul(&meat)?.matmul(&sol.xtx_inv)?;
        let std_errors = (0..k)
            .map(|i| (cov[(i, i)] * correction).max(0.0).sqrt())
            .collect();
        Ok(ClusterOlsFit {
            coef: sol.coef,
            std_errors,
            n,
            g,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::{mean, variance};
    use crate::ols::{DesignBuilder, Ols};
    use crate::rng::SplitMix64;

    fn sample(seed: u64, n: usize) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_f64() * 10.0 - 3.0).collect()
    }

    #[test]
    fn welford_matches_batch_moments() {
        let xs = sample(1, 500);
        let mut cell = WelfordCell::new();
        for &x in &xs {
            cell.push(x);
        }
        assert_eq!(cell.n, 500);
        assert!((cell.mean - mean(&xs)).abs() < 1e-12);
        assert!((cell.variance() - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_is_order_insensitive() {
        let xs = sample(2, 301);
        let mut whole = WelfordCell::new();
        for &x in &xs {
            whole.push(x);
        }
        // Three uneven chunks merged in both association orders.
        let chunks: Vec<WelfordCell> = [&xs[..7], &xs[7..180], &xs[180..]]
            .iter()
            .map(|c| {
                let mut w = WelfordCell::new();
                for &x in *c {
                    w.push(x);
                }
                w
            })
            .collect();
        let mut left = chunks[0];
        left.merge(&chunks[1]);
        left.merge(&chunks[2]);
        let mut right = chunks[1];
        right.merge(&chunks[2]);
        let mut outer = chunks[0];
        outer.merge(&right);
        for m in [left, outer] {
            assert_eq!(m.n, whole.n);
            assert!((m.mean - whole.mean).abs() < 1e-12);
            assert!((m.variance() - whole.variance()).abs() < 1e-12);
        }
    }

    #[test]
    fn welford_merge_with_empty_is_identity() {
        let mut a = WelfordCell::new();
        a.push(2.0);
        a.push(4.0);
        let b = a;
        a.merge(&WelfordCell::new());
        assert_eq!(a, b);
        let mut e = WelfordCell::new();
        e.merge(&b);
        assert_eq!(e, b);
    }

    #[test]
    fn sum_identities() {
        let xs = [1.0, 2.0, 4.0];
        let mut c = WelfordCell::new();
        for &x in &xs {
            c.push(x);
        }
        assert!((c.sum() - 7.0).abs() < 1e-12);
        assert!((c.sum_sq() - 21.0).abs() < 1e-9);
    }

    fn toy_regression(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![1.0, rng.next_f64() * 4.0 - 2.0])
            .collect();
        let ys: Vec<f64> = rows
            .iter()
            .map(|r| 1.5 + 0.7 * r[1] + (rng.next_f64() - 0.5))
            .collect();
        (rows, ys)
    }

    #[test]
    fn ols_accum_matches_batch_fit() {
        let (rows, ys) = toy_regression(3, 120);
        let mut acc = OlsAccum::new(2);
        for (r, &y) in rows.iter().zip(&ys) {
            acc.push(r, y);
        }
        let xs: Vec<f64> = rows.iter().map(|r| r[1]).collect();
        let x = DesignBuilder::new()
            .intercept(120)
            .unwrap()
            .column("x", &xs)
            .unwrap()
            .build()
            .unwrap();
        let batch = Ols::fit(x, &ys).unwrap();
        let fit = acc.solve().unwrap();
        for j in 0..2 {
            assert!((fit.coef[j] - batch.coef[j]).abs() < 1e-10, "coef {j}");
        }
        assert!((fit.rss - batch.rss()).abs() / batch.rss() < 1e-10);
        let se = fit.std_errors();
        let se_batch = batch.std_errors(crate::CovEstimator::Classic).unwrap();
        for j in 0..2 {
            assert!((se[j] - se_batch[j]).abs() / se_batch[j] < 1e-10, "se {j}");
        }
    }

    #[test]
    fn ols_accum_merge_equals_single_pass() {
        let (rows, ys) = toy_regression(4, 90);
        let mut whole = OlsAccum::new(2);
        for (r, &y) in rows.iter().zip(&ys) {
            whole.push(r, y);
        }
        let mut a = OlsAccum::new(2);
        let mut b = OlsAccum::new(2);
        for (i, (r, &y)) in rows.iter().zip(&ys).enumerate() {
            if i % 3 == 0 {
                a.push(r, y);
            } else {
                b.push(r, y);
            }
        }
        // Merge in the "wrong" order relative to the stream.
        let mut merged = b.clone();
        merged.merge(&a);
        let w = whole.solve().unwrap();
        let m = merged.solve().unwrap();
        for j in 0..2 {
            assert!((w.coef[j] - m.coef[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn ols_accum_underdetermined_errors() {
        let mut acc = OlsAccum::new(2);
        acc.push(&[1.0, 0.0], 1.0);
        acc.push(&[1.0, 1.0], 2.0);
        assert!(matches!(
            acc.solve(),
            Err(StatsError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn cluster_fit_matches_batch_crv1() {
        let (rows, ys) = toy_regression(5, 80);
        let clusters: Vec<usize> = (0..80).map(|i| i % 7).collect();
        let mut acc = ClusterOlsAccum::new(2);
        for ((r, &y), &c) in rows.iter().zip(&ys).zip(&clusters) {
            acc.push(c, r, y);
        }
        let xs: Vec<f64> = rows.iter().map(|r| r[1]).collect();
        let x = DesignBuilder::new()
            .intercept(80)
            .unwrap()
            .column("x", &xs)
            .unwrap()
            .build()
            .unwrap();
        let batch = Ols::fit(x, &ys).unwrap();
        let se_batch = batch.std_errors_clustered(&clusters).unwrap();
        let fit = acc.fit().unwrap();
        assert_eq!(fit.g, 7);
        assert_eq!(fit.n, 80);
        for (j, &se) in se_batch.iter().enumerate() {
            assert!(
                (fit.coef[j] - batch.coef[j]).abs() < 1e-10
                    && (fit.std_errors[j] - se).abs() / se < 1e-9,
                "col {j}: {} vs {}",
                fit.std_errors[j],
                se
            );
        }
    }

    #[test]
    fn cluster_merge_reassembles_split_clusters() {
        let (rows, ys) = toy_regression(6, 60);
        let clusters: Vec<usize> = (0..60).map(|i| i % 5).collect();
        let mut whole = ClusterOlsAccum::new(2);
        let mut parts: Vec<ClusterOlsAccum> = (0..3).map(|_| ClusterOlsAccum::new(2)).collect();
        for (i, ((r, &y), &c)) in rows.iter().zip(&ys).zip(&clusters).enumerate() {
            whole.push(c, r, y);
            // Observations of the same cluster land in different parts.
            parts[i % 3].push(c, r, y);
        }
        let mut merged = parts[2].clone();
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged.g(), whole.g());
        let a = whole.fit().unwrap();
        let b = merged.fit().unwrap();
        for j in 0..2 {
            assert!((a.coef[j] - b.coef[j]).abs() < 1e-12);
            assert!((a.std_errors[j] - b.std_errors[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn cluster_fit_needs_two_clusters() {
        let mut acc = ClusterOlsAccum::new(1);
        acc.push(0, &[1.0], 1.0);
        acc.push(0, &[1.0], 2.0);
        assert!(matches!(
            acc.fit(),
            Err(StatsError::TooFewObservations { got: 1, need: 2 })
        ));
    }
}
