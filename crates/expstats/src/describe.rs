//! Descriptive statistics: means, variances, summaries.

use crate::{Result, StatsError};

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n-1 denominator) sample variance.
///
/// Uses the two-pass algorithm for numerical stability. Returns `NaN` when
/// fewer than two observations are supplied.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    ss / (xs.len() - 1) as f64
}

/// Sample standard deviation (square root of [`variance`]).
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Standard error of the mean: `s / sqrt(n)`.
pub fn std_error(xs: &[f64]) -> f64 {
    stddev(xs) / (xs.len() as f64).sqrt()
}

/// Weighted mean with non-negative weights.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> Result<f64> {
    if xs.len() != ws.len() {
        return Err(StatsError::DimensionMismatch {
            context: "weighted_mean: values and weights lengths differ",
        });
    }
    let wsum: f64 = ws.iter().sum();
    if wsum <= 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "weighted_mean: weights must sum to a positive value",
        });
    }
    Ok(xs.iter().zip(ws).map(|(x, w)| x * w).sum::<f64>() / wsum)
}

/// Covariance between two equally long samples (n-1 denominator).
pub fn covariance(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::DimensionMismatch {
            context: "covariance: sample lengths differ",
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::TooFewObservations {
            got: xs.len(),
            need: 2,
        });
    }
    let mx = mean(xs);
    let my = mean(ys);
    let s: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    Ok(s / (xs.len() - 1) as f64)
}

/// Pearson correlation coefficient.
pub fn correlation(xs: &[f64], ys: &[f64]) -> Result<f64> {
    let c = covariance(xs, ys)?;
    let sx = stddev(xs);
    let sy = stddev(ys);
    if sx == 0.0 || sy == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "correlation: zero-variance input",
        });
    }
    Ok(c / (sx * sy))
}

/// Five-number-plus summary of a sample, as used for the lab "boxplot"
/// figures (Figure 2 of the paper reports box plots per allocation).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Lower quartile (type-7 interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns an error on an empty input.
    pub fn of(xs: &[f64]) -> Result<Summary> {
        if xs.is_empty() {
            return Err(StatsError::TooFewObservations { got: 0, need: 1 });
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Ok(Summary {
            n: xs.len(),
            mean: mean(xs),
            stddev: if xs.len() > 1 { stddev(xs) } else { 0.0 },
            min: sorted[0],
            q1: crate::quantiles::quantile_sorted(&sorted, 0.25),
            median: crate::quantiles::quantile_sorted(&sorted, 0.5),
            q3: crate::quantiles::quantile_sorted(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn variance_known() {
        // Var of 1..=5 with n-1 denominator is 2.5.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((variance(&xs) - 2.5).abs() < 1e-12);
        assert!((stddev(&xs) - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_invariant_to_shift() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let shifted: Vec<f64> = xs.iter().map(|x| x + 1e9).collect();
        assert!((variance(&xs) - variance(&shifted)).abs() < 1e-4);
    }

    #[test]
    fn weighted_mean_matches_plain_for_equal_weights() {
        let xs = [2.0, 4.0, 9.0];
        let w = [1.0, 1.0, 1.0];
        assert!((weighted_mean(&xs, &w).unwrap() - mean(&xs)).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_rejects_bad_input() {
        assert!(weighted_mean(&[1.0], &[1.0, 2.0]).is_err());
        assert!(weighted_mean(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn covariance_and_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let yneg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((correlation(&xs, &yneg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
    }

    #[test]
    fn summary_rejects_empty() {
        assert!(Summary::of(&[]).is_err());
    }
}
