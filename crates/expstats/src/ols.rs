//! Ordinary least squares with classic, heteroskedasticity-robust and
//! Newey–West (HAC) covariance estimators.
//!
//! This is the regression engine behind Appendix B of the paper: outcomes
//! aggregated to the hourly level are regressed on a treatment indicator
//! plus hour-of-day fixed effects, and uncertainty is quantified with
//! Newey–West robust standard errors (lag 2) to absorb autocorrelation
//! between successive hours.

use crate::dist::t_critical;
use crate::linalg::Matrix;
use crate::{Result, StatsError};

/// Covariance estimator for OLS coefficient uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CovEstimator {
    /// Classic spherical-error covariance `σ² (XᵀX)⁻¹`.
    Classic,
    /// White's heteroskedasticity-consistent estimator with the HC1
    /// small-sample correction `n/(n-k)`.
    Hc1,
    /// Newey–West heteroskedasticity-and-autocorrelation-consistent
    /// estimator with Bartlett kernel and the given maximum lag.
    ///
    /// The paper uses `lag = 2` on hourly aggregates ("a lag of two hours").
    NeweyWest {
        /// Maximum lag (Bartlett window width minus one).
        lag: usize,
    },
}

/// A fitted OLS model.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Estimated coefficients, one per design-matrix column.
    pub coef: Vec<f64>,
    /// Fitted values `X β̂`.
    pub fitted: Vec<f64>,
    /// Residuals `y − X β̂` in observation order.
    pub residuals: Vec<f64>,
    /// `(XᵀX)⁻¹`, cached for covariance computations.
    xtx_inv: Matrix,
    /// Design matrix (kept for sandwich estimators).
    x: Matrix,
    /// Number of observations.
    pub n: usize,
    /// Number of regressors.
    pub k: usize,
    /// Total sum of squares of the centered response.
    tss: f64,
}

/// OLS entry point.
pub struct Ols;

impl Ols {
    /// Fit `y = X β + ε` by least squares.
    ///
    /// Errors if the system is under-determined (`n ≤ k`) or the design is
    /// rank deficient.
    pub fn fit(x: Matrix, y: &[f64]) -> Result<OlsFit> {
        let n = x.nrows();
        let k = x.ncols();
        if y.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "Ols::fit: y length != rows",
            });
        }
        if n <= k {
            return Err(StatsError::TooFewObservations {
                got: n,
                need: k + 1,
            });
        }
        let xtx = x.gram();
        let xty = x.xty(y)?;
        let xtx_inv = xtx.inverse_spd()?;
        let coef = xtx_inv.matvec(&xty)?;
        let fitted = x.matvec(&coef)?;
        let residuals: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
        let ybar = crate::describe::mean(y);
        let tss = y.iter().map(|v| (v - ybar) * (v - ybar)).sum();
        Ok(OlsFit {
            coef,
            fitted,
            residuals,
            xtx_inv,
            x,
            n,
            k,
            tss,
        })
    }
}

impl OlsFit {
    /// Residual sum of squares.
    pub fn rss(&self) -> f64 {
        self.residuals.iter().map(|r| r * r).sum()
    }

    /// Coefficient of determination `R²`.
    pub fn r_squared(&self) -> f64 {
        if self.tss == 0.0 {
            return 1.0;
        }
        1.0 - self.rss() / self.tss
    }

    /// Residual degrees of freedom `n − k`.
    pub fn dof(&self) -> f64 {
        (self.n - self.k) as f64
    }

    /// Coefficient covariance matrix under the chosen estimator.
    pub fn covariance(&self, est: CovEstimator) -> Result<Matrix> {
        match est {
            CovEstimator::Classic => {
                let sigma2 = self.rss() / self.dof();
                let mut cov = self.xtx_inv.clone();
                for i in 0..self.k {
                    for j in 0..self.k {
                        cov[(i, j)] *= sigma2;
                    }
                }
                Ok(cov)
            }
            CovEstimator::Hc1 => self.sandwich(0, self.n as f64 / self.dof()),
            CovEstimator::NeweyWest { lag } => self.sandwich(lag, self.n as f64 / self.dof()),
        }
    }

    /// Sandwich covariance `(XᵀX)⁻¹ S (XᵀX)⁻¹` with the Bartlett-weighted
    /// score covariance `S` truncated at `lag`, scaled by `correction`.
    ///
    /// `lag = 0` reduces to White's HC estimator. The Bartlett kernel
    /// guarantees the result is positive semi-definite
    /// (Newey & West, 1987).
    fn sandwich(&self, lag: usize, correction: f64) -> Result<Matrix> {
        let k = self.k;
        let n = self.n;
        // Scores g_t = u_t * x_t.
        let mut scores = Matrix::zeros(n, k);
        for t in 0..n {
            let u = self.residuals[t];
            for j in 0..k {
                scores[(t, j)] = u * self.x[(t, j)];
            }
        }
        // S = Γ0 + Σ_l w_l (Γ_l + Γ_lᵀ), w_l = 1 − l/(lag+1).
        let mut s = Matrix::zeros(k, k);
        for t in 0..n {
            for i in 0..k {
                let gi = scores[(t, i)];
                if gi == 0.0 {
                    continue;
                }
                for j in 0..k {
                    s[(i, j)] += gi * scores[(t, j)];
                }
            }
        }
        for l in 1..=lag.min(n.saturating_sub(1)) {
            let w = 1.0 - l as f64 / (lag as f64 + 1.0);
            for t in l..n {
                for i in 0..k {
                    let gi = scores[(t, i)];
                    let hi = scores[(t - l, i)];
                    for j in 0..k {
                        let cross = gi * scores[(t - l, j)] + hi * scores[(t, j)];
                        s[(i, j)] += w * cross;
                    }
                }
            }
        }
        // (XᵀX)⁻¹ S (XᵀX)⁻¹, scaled.
        let mut cov = self.xtx_inv.matmul(&s)?.matmul(&self.xtx_inv)?;
        for i in 0..k {
            for j in 0..k {
                cov[(i, j)] *= correction;
            }
        }
        Ok(cov)
    }

    /// Standard errors of all coefficients under the chosen estimator.
    pub fn std_errors(&self, est: CovEstimator) -> Result<Vec<f64>> {
        let cov = self.covariance(est)?;
        Ok((0..self.k).map(|i| cov[(i, i)].max(0.0).sqrt()).collect())
    }

    /// Cluster-robust (CRV1 / Liang–Zeger) coefficient covariance:
    /// `(XᵀX)⁻¹ (Σ_g s_g s_gᵀ) (XᵀX)⁻¹` with cluster score sums
    /// `s_g = Σ_{t ∈ g} u_t x_t`, scaled by the standard small-sample
    /// correction `G/(G−1) · (n−1)/(n−k)`.
    ///
    /// `clusters[t]` is observation `t`'s cluster label (any `usize`;
    /// labels need not be dense). This is the fleet analysis's
    /// link-clustered estimator: sessions on the same congested link
    /// share shocks (and, under interference, each other's treatments),
    /// so iid standard errors understate the uncertainty — often
    /// severely when effects vary across links.
    ///
    /// Errors when `clusters` is not `n` long or fewer than two distinct
    /// clusters are present (the between-cluster variance is then
    /// unidentified).
    pub fn covariance_clustered(&self, clusters: &[usize]) -> Result<Matrix> {
        let (n, k) = (self.n, self.k);
        if clusters.len() != n {
            return Err(StatsError::DimensionMismatch {
                context: "covariance_clustered: one cluster label per observation",
            });
        }
        // Accumulate per-cluster score sums s_g = Σ u_t x_t.
        let mut labels: Vec<usize> = clusters.to_vec();
        labels.sort_unstable();
        labels.dedup();
        let g = labels.len();
        if g < 2 {
            return Err(StatsError::TooFewObservations { got: g, need: 2 });
        }
        let mut sums = vec![0.0; g * k];
        for (t, label) in clusters.iter().enumerate() {
            let gi = labels.binary_search(label).expect("label present");
            let u = self.residuals[t];
            for j in 0..k {
                sums[gi * k + j] += u * self.x[(t, j)];
            }
        }
        // Meat: Σ_g s_g s_gᵀ.
        let mut s = Matrix::zeros(k, k);
        for sg in sums.chunks_exact(k) {
            for i in 0..k {
                for j in 0..k {
                    s[(i, j)] += sg[i] * sg[j];
                }
            }
        }
        let correction = (g as f64 / (g as f64 - 1.0)) * ((n as f64 - 1.0) / (n as f64 - k as f64));
        let mut cov = self.xtx_inv.matmul(&s)?.matmul(&self.xtx_inv)?;
        for i in 0..k {
            for j in 0..k {
                cov[(i, j)] *= correction;
            }
        }
        Ok(cov)
    }

    /// Cluster-robust standard errors (see
    /// [`OlsFit::covariance_clustered`]). Inference should use `G − 1`
    /// degrees of freedom, where `G` is the number of distinct clusters.
    pub fn std_errors_clustered(&self, clusters: &[usize]) -> Result<Vec<f64>> {
        let cov = self.covariance_clustered(clusters)?;
        Ok((0..self.k).map(|i| cov[(i, i)].max(0.0).sqrt()).collect())
    }

    /// Two-sided confidence interval for coefficient `idx` at the given
    /// confidence `level` (e.g. `0.95`), using the t distribution with
    /// `n − k` degrees of freedom.
    pub fn coef_ci(&self, idx: usize, level: f64, est: CovEstimator) -> Result<(f64, f64)> {
        if idx >= self.k {
            return Err(StatsError::InvalidParameter {
                context: "coef_ci: index out of range",
            });
        }
        let se = self.std_errors(est)?[idx];
        let t = t_critical(level, self.dof());
        Ok((self.coef[idx] - t * se, self.coef[idx] + t * se))
    }

    /// t statistic for coefficient `idx` under the chosen estimator.
    pub fn t_stat(&self, idx: usize, est: CovEstimator) -> Result<f64> {
        let se = self.std_errors(est)?[idx];
        if se == 0.0 {
            return Err(StatsError::InvalidParameter {
                context: "t_stat: zero standard error",
            });
        }
        Ok(self.coef[idx] / se)
    }

    /// Two-sided p-value for the null that coefficient `idx` is zero.
    pub fn p_value(&self, idx: usize, est: CovEstimator) -> Result<f64> {
        let t = self.t_stat(idx, est)?;
        let p = 2.0 * (1.0 - crate::dist::t_cdf(t.abs(), self.dof()));
        Ok(p.clamp(0.0, 1.0))
    }
}

/// Convenience builder for design matrices (intercept, covariates,
/// categorical dummies with one level dropped to avoid collinearity).
#[derive(Debug, Default)]
pub struct DesignBuilder {
    columns: Vec<Vec<f64>>,
    names: Vec<String>,
    nrows: Option<usize>,
}

impl DesignBuilder {
    /// Empty builder.
    pub fn new() -> DesignBuilder {
        DesignBuilder::default()
    }

    fn check_len(&mut self, len: usize) -> Result<()> {
        match self.nrows {
            None => {
                self.nrows = Some(len);
                Ok(())
            }
            Some(n) if n == len => Ok(()),
            Some(_) => Err(StatsError::DimensionMismatch {
                context: "DesignBuilder: column lengths differ",
            }),
        }
    }

    /// Add an all-ones intercept column. Requires at least one data column
    /// first (to know the row count) or a later column to fix it.
    pub fn intercept(mut self, nrows: usize) -> Result<DesignBuilder> {
        self.check_len(nrows)?;
        self.columns.push(vec![1.0; nrows]);
        self.names.push("intercept".into());
        Ok(self)
    }

    /// Add a numeric column.
    pub fn column(mut self, name: &str, values: &[f64]) -> Result<DesignBuilder> {
        self.check_len(values.len())?;
        self.columns.push(values.to_vec());
        self.names.push(name.into());
        Ok(self)
    }

    /// Add dummy columns for a categorical variable, dropping the first
    /// (smallest) level as the reference category.
    pub fn dummies(mut self, name: &str, levels: &[usize]) -> Result<DesignBuilder> {
        self.check_len(levels.len())?;
        let mut uniq: Vec<usize> = levels.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        for &lvl in uniq.iter().skip(1) {
            let col: Vec<f64> = levels
                .iter()
                .map(|&v| if v == lvl { 1.0 } else { 0.0 })
                .collect();
            self.columns.push(col);
            self.names.push(format!("{name}[{lvl}]"));
        }
        Ok(self)
    }

    /// Column names, in matrix order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Materialize the design matrix.
    pub fn build(self) -> Result<Matrix> {
        let n = self
            .nrows
            .ok_or(StatsError::TooFewObservations { got: 0, need: 1 })?;
        let k = self.columns.len();
        let mut m = Matrix::zeros(n, k);
        for (j, col) in self.columns.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_line_fit() -> OlsFit {
        // y = 1 + 2x exactly.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x).collect();
        let x = DesignBuilder::new()
            .intercept(xs.len())
            .unwrap()
            .column("x", &xs)
            .unwrap()
            .build()
            .unwrap();
        Ols::fit(x, &ys).unwrap()
    }

    #[test]
    fn exact_line_recovered() {
        let fit = simple_line_fit();
        assert!((fit.coef[0] - 1.0).abs() < 1e-10);
        assert!((fit.coef[1] - 2.0).abs() < 1e-10);
        assert!(fit.rss() < 1e-18);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intercept_only_is_mean() {
        let ys = [3.0, 5.0, 7.0, 9.0];
        let x = DesignBuilder::new().intercept(4).unwrap().build().unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        assert!((fit.coef[0] - 6.0).abs() < 1e-12);
        // Classic SE of the intercept equals the standard error of the mean.
        let se = fit.std_errors(CovEstimator::Classic).unwrap()[0];
        let sem = crate::describe::std_error(&ys);
        assert!((se - sem).abs() < 1e-12);
    }

    #[test]
    fn hc1_equals_classic_under_homoskedastic_balanced_design() {
        // With a balanced binary regressor and equal residual magnitudes,
        // HC1 and classic agree on the slope SE.
        let x_raw = [0.0, 0.0, 1.0, 1.0];
        let ys = [1.0, -1.0, 3.0, 1.0]; // residuals ±1 in both groups
        let x = DesignBuilder::new()
            .intercept(4)
            .unwrap()
            .column("d", &x_raw)
            .unwrap()
            .build()
            .unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        let se_c = fit.std_errors(CovEstimator::Classic).unwrap()[1];
        let se_h = fit.std_errors(CovEstimator::Hc1).unwrap()[1];
        assert!((se_c - se_h).abs() < 1e-10, "{se_c} vs {se_h}");
    }

    #[test]
    fn newey_west_lag0_equals_hc1() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [0.3, 1.9, 4.5, 5.8, 8.6, 9.9];
        let x = DesignBuilder::new()
            .intercept(6)
            .unwrap()
            .column("x", &xs)
            .unwrap()
            .build()
            .unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        let nw0 = fit.covariance(CovEstimator::NeweyWest { lag: 0 }).unwrap();
        let hc1 = fit.covariance(CovEstimator::Hc1).unwrap();
        assert!(nw0.max_abs_diff(&hc1) < 1e-12);
    }

    #[test]
    fn newey_west_variances_nonnegative() {
        // Strongly autocorrelated residuals; NW must stay PSD on the
        // diagonal thanks to the Bartlett kernel.
        let n = 50;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| i as f64 * 0.5 + (i as f64 * 0.7).sin() * 3.0)
            .collect();
        let x = DesignBuilder::new()
            .intercept(n)
            .unwrap()
            .column("x", &xs)
            .unwrap()
            .build()
            .unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        for lag in [0, 1, 2, 5, 10] {
            let cov = fit.covariance(CovEstimator::NeweyWest { lag }).unwrap();
            for i in 0..2 {
                assert!(cov[(i, i)] >= 0.0, "lag {lag} diag {i}");
            }
        }
    }

    #[test]
    fn autocorrelated_errors_widen_nw_intervals() {
        // Residuals follow a slow sine => positive autocorrelation; the NW
        // SE at lag 6 should exceed the HC (lag 0) SE.
        let n = 120;
        let xs: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.5 * (i % 2) as f64 + (i as f64 * 0.2).sin())
            .collect();
        let x = DesignBuilder::new()
            .intercept(n)
            .unwrap()
            .column("d", &xs)
            .unwrap()
            .build()
            .unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        let se0 = fit.std_errors(CovEstimator::NeweyWest { lag: 0 }).unwrap()[0];
        let se6 = fit.std_errors(CovEstimator::NeweyWest { lag: 6 }).unwrap()[0];
        assert!(se6 > se0, "expected NW(6) {se6} > NW(0) {se0}");
    }

    #[test]
    fn singleton_clusters_reduce_to_hc1() {
        // With every observation its own cluster, the CRV1 meat is the
        // HC meat and the correction collapses to n/(n−k) — exactly HC1.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [0.3, 1.9, 4.5, 5.8, 8.6, 9.9];
        let x = DesignBuilder::new()
            .intercept(6)
            .unwrap()
            .column("x", &xs)
            .unwrap()
            .build()
            .unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        let singleton: Vec<usize> = (0..6).collect();
        let crv = fit.covariance_clustered(&singleton).unwrap();
        let hc1 = fit.covariance(CovEstimator::Hc1).unwrap();
        assert!(crv.max_abs_diff(&hc1) < 1e-12);
        // Labels need not be dense.
        let sparse: Vec<usize> = (0..6).map(|i| i * 100 + 7).collect();
        let crv2 = fit.covariance_clustered(&sparse).unwrap();
        assert!(crv2.max_abs_diff(&hc1) < 1e-12);
    }

    #[test]
    fn cluster_shared_shocks_widen_clustered_se() {
        // Five clusters of ten observations each share one big shock;
        // iid-flavored SEs treat the 50 rows as independent and
        // understate the uncertainty of the treatment coefficient
        // (treatment assigned at the cluster level, as in the fleet's
        // link-level design).
        let g = 5;
        let per = 10;
        let n = g * per;
        let mut clusters = Vec::with_capacity(n);
        let mut d = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for c in 0..g {
            let shock = [3.0, -2.0, 1.5, -3.5, 1.0][c];
            let treated = c % 2 == 0;
            for i in 0..per {
                clusters.push(c);
                d.push(if treated { 1.0 } else { 0.0 });
                // Tiny idiosyncratic noise on top of the shared shock.
                ys.push(10.0 + shock + 0.01 * ((i % 3) as f64 - 1.0));
            }
        }
        let x = DesignBuilder::new()
            .intercept(n)
            .unwrap()
            .column("d", &d)
            .unwrap()
            .build()
            .unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        let se_cl = fit.std_errors_clustered(&clusters).unwrap()[1];
        let se_hc = fit.std_errors(CovEstimator::Hc1).unwrap()[1];
        assert!(
            se_cl > 2.0 * se_hc,
            "clustered SE {se_cl} should dwarf HC1 {se_hc}"
        );
    }

    #[test]
    fn clustered_covariance_input_validation() {
        let fit = simple_line_fit();
        // Wrong length.
        assert!(fit.covariance_clustered(&[0, 1]).is_err());
        // A single cluster cannot identify between-cluster variance.
        assert!(fit.covariance_clustered(&[7; 5]).is_err());
    }

    #[test]
    fn dummies_drop_reference_level() {
        let levels = [0usize, 1, 2, 0, 1, 2];
        let b = DesignBuilder::new()
            .intercept(6)
            .unwrap()
            .dummies("h", &levels)
            .unwrap();
        assert_eq!(b.names(), &["intercept", "h[1]", "h[2]"]);
        let x = b.build().unwrap();
        assert_eq!(x.ncols(), 3);
        // Row 0 has level 0 => both dummies zero.
        assert_eq!(x[(0, 1)], 0.0);
        assert_eq!(x[(0, 2)], 0.0);
        // Row 1 has level 1.
        assert_eq!(x[(1, 1)], 1.0);
        assert_eq!(x[(1, 2)], 0.0);
    }

    #[test]
    fn fixed_effects_absorb_group_means() {
        // y = group_effect + 2*d; with group dummies the treatment coefficient
        // must recover exactly 2 despite wildly different group levels.
        let groups = [0usize, 0, 1, 1, 2, 2];
        let d = [0.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let base = [10.0, 10.0, 100.0, 100.0, -50.0, -50.0];
        let ys: Vec<f64> = base.iter().zip(&d).map(|(b, t)| b + 2.0 * t).collect();
        let x = DesignBuilder::new()
            .intercept(6)
            .unwrap()
            .column("d", &d)
            .unwrap()
            .dummies("g", &groups)
            .unwrap()
            .build()
            .unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        assert!(
            (fit.coef[1] - 2.0).abs() < 1e-9,
            "treatment coef {}",
            fit.coef[1]
        );
    }

    #[test]
    fn rank_deficiency_detected() {
        // Duplicate column => singular XᵀX.
        let xs = [1.0, 2.0, 3.0, 4.0];
        let x = DesignBuilder::new()
            .column("a", &xs)
            .unwrap()
            .column("b", &xs)
            .unwrap()
            .build()
            .unwrap();
        assert!(matches!(
            Ols::fit(x, &[1.0, 2.0, 3.0, 4.0]),
            Err(StatsError::RankDeficient)
        ));
    }

    #[test]
    fn underdetermined_rejected() {
        let x = DesignBuilder::new().intercept(1).unwrap().build().unwrap();
        assert!(Ols::fit(x, &[1.0]).is_err());
    }

    #[test]
    fn ci_covers_truth_for_exact_fit_with_noise() {
        // Deterministic "noise" with zero mean; CI should cover the true slope.
        let n = 40;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let x = DesignBuilder::new()
            .intercept(n)
            .unwrap()
            .column("x", &xs)
            .unwrap()
            .build()
            .unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        let (lo, hi) = fit.coef_ci(1, 0.95, CovEstimator::Classic).unwrap();
        assert!(lo <= 3.0 && 3.0 <= hi, "({lo}, {hi})");
    }

    #[test]
    fn p_value_small_for_strong_effect() {
        let n = 30;
        let d: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let ys: Vec<f64> = d
            .iter()
            .enumerate()
            .map(|(i, t)| 10.0 * t + if i % 4 < 2 { 0.1 } else { -0.1 })
            .collect();
        let x = DesignBuilder::new()
            .intercept(n)
            .unwrap()
            .column("d", &d)
            .unwrap()
            .build()
            .unwrap();
        let fit = Ols::fit(x, &ys).unwrap();
        assert!(fit.p_value(1, CovEstimator::Hc1).unwrap() < 1e-6);
    }
}
