//! Two-sample inference: the unit-level analysis used for naïve A/B test
//! estimates (difference in means with Welch standard errors).

use crate::accum::WelfordCell;
use crate::describe::{mean, variance};
use crate::dist::{t_cdf, t_critical};
use crate::{Result, StatsError};

/// A point estimate with standard error and confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEstimate {
    /// Point estimate (difference of means, or normalized effect).
    pub estimate: f64,
    /// Standard error of the estimate.
    pub se: f64,
    /// Two-sided confidence interval at the requested level.
    pub ci: (f64, f64),
    /// Degrees of freedom used for the interval.
    pub dof: f64,
}

impl DiffEstimate {
    /// Whether the confidence interval excludes zero.
    pub fn significant(&self) -> bool {
        self.ci.0 > 0.0 || self.ci.1 < 0.0
    }

    /// Half the confidence-interval width (the "±" the time-series
    /// figures print next to each cross-seed mean).
    pub fn half_width(&self) -> f64 {
        (self.ci.1 - self.ci.0) / 2.0
    }

    /// Rescale estimate, SE and CI by a constant (used to express effects
    /// relative to a global control mean, as the paper normalizes).
    pub fn scaled(&self, factor: f64) -> DiffEstimate {
        let (lo, hi) = (self.ci.0 * factor, self.ci.1 * factor);
        DiffEstimate {
            estimate: self.estimate * factor,
            se: self.se * factor.abs(),
            ci: if factor >= 0.0 { (lo, hi) } else { (hi, lo) },
            dof: self.dof,
        }
    }
}

/// Welch two-sample comparison: difference in means with unequal-variance
/// standard errors and Welch–Satterthwaite degrees of freedom.
pub fn diff_in_means(treat: &[f64], control: &[f64], level: f64) -> Result<DiffEstimate> {
    diff_in_means_moments(
        treat.len(),
        mean(treat),
        variance(treat),
        control.len(),
        mean(control),
        variance(control),
        level,
    )
}

/// Welch comparison from summary moments `(n, mean, variance)` of each
/// sample — the streaming-path entry point. [`diff_in_means`] delegates
/// here, so both paths share the same formulas exactly.
pub fn diff_in_means_moments(
    n_t: usize,
    mean_t: f64,
    var_t: f64,
    n_c: usize,
    mean_c: f64,
    var_c: f64,
    level: f64,
) -> Result<DiffEstimate> {
    if n_t < 2 || n_c < 2 {
        return Err(StatsError::TooFewObservations {
            got: n_t.min(n_c),
            need: 2,
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter {
            context: "level must be in (0,1)",
        });
    }
    let (nt, nc) = (n_t as f64, n_c as f64);
    let (vt, vc) = (var_t, var_c);
    let est = mean_t - mean_c;
    let se2 = vt / nt + vc / nc;
    let se = se2.sqrt();
    // Welch–Satterthwaite.
    let dof = if se2 > 0.0 {
        se2 * se2 / ((vt / nt).powi(2) / (nt - 1.0) + (vc / nc).powi(2) / (nc - 1.0))
    } else {
        nt + nc - 2.0
    };
    let t = t_critical(level, dof.max(1.0));
    Ok(DiffEstimate {
        estimate: est,
        se,
        ci: (est - t * se, est + t * se),
        dof,
    })
}

/// Welch comparison between two streaming [`WelfordCell`]s.
pub fn diff_in_means_cells(
    treat: &WelfordCell,
    control: &WelfordCell,
    level: f64,
) -> Result<DiffEstimate> {
    diff_in_means_moments(
        treat.n as usize,
        treat.mean,
        treat.variance(),
        control.n as usize,
        control.mean,
        control.variance(),
        level,
    )
}

/// Result of a hypothesis test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Test statistic.
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Degrees of freedom.
    pub dof: f64,
}

/// Welch's t-test for equality of means.
pub fn welch_t_test(treat: &[f64], control: &[f64]) -> Result<TestResult> {
    let d = diff_in_means(treat, control, 0.95)?;
    if d.se == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "welch_t_test: zero variance",
        });
    }
    let t = d.estimate / d.se;
    let p = 2.0 * (1.0 - t_cdf(t.abs(), d.dof));
    Ok(TestResult {
        statistic: t,
        p_value: p.clamp(0.0, 1.0),
        dof: d.dof,
    })
}

/// Paired t-test on matched observations.
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TestResult> {
    if a.len() != b.len() {
        return Err(StatsError::DimensionMismatch {
            context: "paired_t_test: lengths differ",
        });
    }
    if a.len() < 2 {
        return Err(StatsError::TooFewObservations {
            got: a.len(),
            need: 2,
        });
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let m = mean(&diffs);
    let se = crate::describe::std_error(&diffs);
    if se == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "paired_t_test: zero variance",
        });
    }
    let dof = (diffs.len() - 1) as f64;
    let t = m / se;
    let p = 2.0 * (1.0 - t_cdf(t.abs(), dof));
    Ok(TestResult {
        statistic: t,
        p_value: p.clamp(0.0, 1.0),
        dof,
    })
}

/// Confidence interval for a single mean.
pub fn mean_ci(xs: &[f64], level: f64) -> Result<DiffEstimate> {
    if xs.len() < 2 {
        return Err(StatsError::TooFewObservations {
            got: xs.len(),
            need: 2,
        });
    }
    let m = mean(xs);
    let se = crate::describe::std_error(xs);
    let dof = (xs.len() - 1) as f64;
    let t = t_critical(level, dof);
    Ok(DiffEstimate {
        estimate: m,
        se,
        ci: (m - t * se, m + t * se),
        dof,
    })
}

/// Column-wise mean ± CI half-width across replicated series.
///
/// `rows` are per-replication series (e.g. one normalized hourly series
/// per seed); the result has one entry per column up to the longest
/// row. Non-finite entries and short rows are skipped column-wise; a
/// column with fewer than two finite values yields `(NaN, NaN)` instead
/// of failing the whole aggregation (figures render those as gaps).
pub fn columnwise_mean_ci(rows: &[Vec<f64>], level: f64) -> (Vec<f64>, Vec<f64>) {
    let len = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut means = Vec::with_capacity(len);
    let mut half_widths = Vec::with_capacity(len);
    for col in 0..len {
        let vals: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.get(col).copied())
            .filter(|v| v.is_finite())
            .collect();
        match mean_ci(&vals, level) {
            Ok(d) => {
                means.push(d.estimate);
                half_widths.push(d.half_width());
            }
            Err(_) => {
                means.push(f64::NAN);
                half_widths.push(f64::NAN);
            }
        }
    }
    (means, half_widths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columnwise_ci_skips_nan_and_short_rows() {
        let rows = vec![
            vec![1.0, 10.0, 5.0],
            vec![3.0, f64::NAN, 5.0],
            vec![2.0, 14.0], // short row: no column-2 contribution
        ];
        let (means, hw) = columnwise_mean_ci(&rows, 0.95);
        assert_eq!(means.len(), 3);
        assert!((means[0] - 2.0).abs() < 1e-12);
        assert!((means[1] - 12.0).abs() < 1e-12);
        // Column 2 has two equal finite values: mean 5, zero width.
        assert!((means[2] - 5.0).abs() < 1e-12);
        assert!(hw[2].abs() < 1e-12);
        assert!(hw[0] > 0.0 && hw[1] > 0.0);
        // A column with < 2 finite values yields NaN, not an error.
        let (m, w) = columnwise_mean_ci(&[vec![1.0]], 0.95);
        assert!(m[0].is_nan() && w[0].is_nan());
        // Empty input: empty output.
        assert_eq!(columnwise_mean_ci(&[], 0.95), (vec![], vec![]));
    }

    #[test]
    fn half_width_matches_ci() {
        let d = mean_ci(&[1.0, 2.0, 3.0, 4.0], 0.95).unwrap();
        assert!((d.half_width() - (d.ci.1 - d.estimate)).abs() < 1e-12);
    }

    #[test]
    fn diff_detects_clear_separation() {
        let treat: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let control: Vec<f64> = (0..50).map(|i| 5.0 + (i % 5) as f64 * 0.1).collect();
        let d = diff_in_means(&treat, &control, 0.95).unwrap();
        assert!((d.estimate - 5.0).abs() < 1e-9);
        assert!(d.significant());
    }

    #[test]
    fn diff_null_not_significant() {
        let a: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| ((i + 3) % 7) as f64).collect();
        let d = diff_in_means(&a, &b, 0.95).unwrap();
        assert!(!d.significant(), "estimate {} ci {:?}", d.estimate, d.ci);
    }

    #[test]
    fn welch_p_value_extremes() {
        let a: Vec<f64> = (0..30).map(|i| 100.0 + (i % 3) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| (i % 3) as f64).collect();
        assert!(welch_t_test(&a, &b).unwrap().p_value < 1e-12);
        let c: Vec<f64> = (0..30).map(|i| (i % 3) as f64).collect();
        assert!(welch_t_test(&c, &b).unwrap().p_value > 0.99);
    }

    #[test]
    fn paired_t_detects_shift() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 1.0 + 0.01 * (x % 2.0)).collect();
        let r = paired_t_test(&b, &a).unwrap();
        assert!(r.p_value < 1e-9);
        assert!(r.statistic > 0.0);
    }

    #[test]
    fn mean_ci_covers_sample_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ci = mean_ci(&xs, 0.95).unwrap();
        assert!((ci.estimate - 3.0).abs() < 1e-12);
        assert!(ci.ci.0 < 3.0 && 3.0 < ci.ci.1);
    }

    #[test]
    fn scaled_flips_interval_for_negative_factor() {
        let d = DiffEstimate {
            estimate: 2.0,
            se: 1.0,
            ci: (0.0, 4.0),
            dof: 10.0,
        };
        let s = d.scaled(-1.0);
        assert_eq!(s.estimate, -2.0);
        assert_eq!(s.ci, (-4.0, 0.0));
        assert!(s.ci.0 <= s.ci.1);
    }

    #[test]
    fn errors_on_tiny_samples() {
        assert!(diff_in_means(&[1.0], &[1.0, 2.0], 0.95).is_err());
        assert!(mean_ci(&[1.0], 0.95).is_err());
    }
}
