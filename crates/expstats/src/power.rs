//! Power analysis for two-sample experiments.
//!
//! §5.2 of the paper: "The allocation size should be large enough to give
//! statistically significant results, and can be determined by a power
//! calculation." These routines size A/B allocations and switchback
//! interval counts.

use crate::dist::{norm_cdf, norm_ppf};
use crate::{Result, StatsError};

/// Power of a two-sided two-sample z-test.
///
/// * `effect` — true difference in means,
/// * `sd` — common outcome standard deviation,
/// * `n_treat`, `n_control` — group sizes,
/// * `alpha` — significance level (e.g. 0.05).
pub fn two_sample_power(
    effect: f64,
    sd: f64,
    n_treat: usize,
    n_control: usize,
    alpha: f64,
) -> Result<f64> {
    if sd <= 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "power: sd must be positive",
        });
    }
    if n_treat == 0 || n_control == 0 {
        return Err(StatsError::InvalidParameter {
            context: "power: group sizes must be > 0",
        });
    }
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(StatsError::InvalidParameter {
            context: "power: alpha must be in (0,1)",
        });
    }
    let se = sd * (1.0 / n_treat as f64 + 1.0 / n_control as f64).sqrt();
    let z_crit = norm_ppf(1.0 - alpha / 2.0);
    let shift = effect.abs() / se;
    // P(|Z + shift| > z_crit).
    Ok(norm_cdf(shift - z_crit) + norm_cdf(-shift - z_crit))
}

/// Minimum per-group sample size for a balanced two-sample test to reach
/// the requested `power` against `effect` at level `alpha`.
pub fn required_n_per_group(effect: f64, sd: f64, power: f64, alpha: f64) -> Result<usize> {
    if effect == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "required_n: effect must be non-zero",
        });
    }
    if sd <= 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "required_n: sd must be positive",
        });
    }
    if !(0.0 < power && power < 1.0 && 0.0 < alpha && alpha < 1.0) {
        return Err(StatsError::InvalidParameter {
            context: "required_n: power/alpha must be in (0,1)",
        });
    }
    let za = norm_ppf(1.0 - alpha / 2.0);
    let zb = norm_ppf(power);
    let n = 2.0 * ((za + zb) * sd / effect).powi(2);
    Ok(n.ceil() as usize)
}

/// Minimum number of switchback intervals (half treated, half control)
/// needed to detect `effect` when each interval contributes one aggregated
/// observation with standard deviation `interval_sd`.
///
/// This encodes the paper's worst-case analysis stance: each interval is a
/// single data point, so interval count — not session count — drives power.
pub fn required_switchback_intervals(
    effect: f64,
    interval_sd: f64,
    power: f64,
    alpha: f64,
) -> Result<usize> {
    let per_arm = required_n_per_group(effect, interval_sd, power, alpha)?;
    Ok(per_arm * 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_increases_with_n() {
        let p_small = two_sample_power(1.0, 5.0, 20, 20, 0.05).unwrap();
        let p_large = two_sample_power(1.0, 5.0, 200, 200, 0.05).unwrap();
        assert!(p_large > p_small);
    }

    #[test]
    fn power_at_zero_effect_equals_alpha() {
        let p = two_sample_power(0.0, 1.0, 100, 100, 0.05).unwrap();
        assert!((p - 0.05).abs() < 1e-6, "{p}");
    }

    #[test]
    fn textbook_sample_size() {
        // Cohen's d = 0.5, 80% power, alpha 0.05 => n ≈ 63-64 per group.
        let n = required_n_per_group(0.5, 1.0, 0.8, 0.05).unwrap();
        assert!((62..=64).contains(&n), "n = {n}");
    }

    #[test]
    fn required_n_achieves_power() {
        let n = required_n_per_group(0.3, 1.0, 0.9, 0.05).unwrap();
        let p = two_sample_power(0.3, 1.0, n, n, 0.05).unwrap();
        assert!(p >= 0.9, "power {p} with n {n}");
    }

    #[test]
    fn switchback_intervals_double_per_arm() {
        let per_arm = required_n_per_group(1.0, 1.0, 0.8, 0.05).unwrap();
        let total = required_switchback_intervals(1.0, 1.0, 0.8, 0.05).unwrap();
        assert_eq!(total, per_arm * 2);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(two_sample_power(1.0, 0.0, 10, 10, 0.05).is_err());
        assert!(two_sample_power(1.0, 1.0, 0, 10, 0.05).is_err());
        assert!(required_n_per_group(0.0, 1.0, 0.8, 0.05).is_err());
        assert!(required_n_per_group(1.0, 1.0, 1.2, 0.05).is_err());
    }
}
