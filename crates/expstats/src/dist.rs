//! Probability distributions needed for interval estimation: the standard
//! normal and Student's t.
//!
//! Implemented from standard numerical recipes:
//! * normal CDF via a high-accuracy `erfc` rational approximation,
//! * normal quantile via Acklam's algorithm refined with one Halley step,
//! * `ln Γ` via the Lanczos approximation,
//! * regularized incomplete beta via Lentz's continued fraction,
//! * Student-t CDF from the incomplete beta, quantile via Newton iteration.
//!
//! All functions are pure and allocation-free.

/// Standard normal probability density function.
pub fn norm_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Complementary error function, W. J. Cody's rational approximations
/// (netlib CALERF), accurate to full double precision.
fn erfc(x: f64) -> f64 {
    let y = x.abs();
    if y <= 0.46875 {
        return 1.0 - erf_small(x);
    }
    let res = if y <= 4.0 { erfc_mid(y) } else { erfc_large(y) };
    if x >= 0.0 {
        res
    } else {
        2.0 - res
    }
}

/// erf on |x| <= 0.46875.
fn erf_small(x: f64) -> f64 {
    const A: [f64; 5] = [
        3.161_123_743_870_565_6e0,
        1.138_641_541_510_501_6e2,
        3.774_852_376_853_02e2,
        3.209_377_589_138_469_4e3,
        1.857_777_061_846_031_5e-1,
    ];
    const B: [f64; 4] = [
        2.360_129_095_234_412_1e1,
        2.440_246_379_344_441_7e2,
        1.282_616_526_077_372_3e3,
        2.844_236_833_439_171e3,
    ];
    let z = x * x;
    let mut xnum = A[4] * z;
    let mut xden = z;
    for i in 0..3 {
        xnum = (xnum + A[i]) * z;
        xden = (xden + B[i]) * z;
    }
    x * (xnum + A[3]) / (xden + B[3])
}

/// erfc on 0.46875 < y <= 4.
fn erfc_mid(y: f64) -> f64 {
    const C: [f64; 9] = [
        5.641_884_969_886_701e-1,
        8.883_149_794_388_375,
        6.611_919_063_714_163e1,
        2.986_351_381_974_001e2,
        8.819_522_212_417_69e2,
        1.712_047_612_634_070_6e3,
        2.051_078_377_826_071_5e3,
        1.230_339_354_797_997_2e3,
        2.153_115_354_744_038_5e-8,
    ];
    const D: [f64; 8] = [
        1.574_492_611_070_983_5e1,
        1.176_939_508_913_125e2,
        5.371_811_018_620_099e2,
        1.621_389_574_566_690_2e3,
        3.290_799_235_733_459_6e3,
        4.362_619_090_143_247e3,
        3.439_367_674_143_721_6e3,
        1.230_339_354_803_749_4e3,
    ];
    let mut xnum = C[8] * y;
    let mut xden = y;
    for i in 0..7 {
        xnum = (xnum + C[i]) * y;
        xden = (xden + D[i]) * y;
    }
    let result = (xnum + C[7]) / (xden + D[7]);
    scaled_exp(y) * result
}

/// erfc on y > 4.
fn erfc_large(y: f64) -> f64 {
    const P: [f64; 6] = [
        3.053_266_349_612_323_4e-1,
        3.603_448_999_498_044_4e-1,
        1.257_817_261_112_292_5e-1,
        1.608_378_514_874_228e-2,
        6.587_491_615_298_378e-4,
        1.631_538_713_730_209_8e-2,
    ];
    const Q: [f64; 5] = [
        2.568_520_192_289_822,
        1.872_952_849_923_460_4e0,
        5.279_051_029_514_284e-1,
        6.051_834_131_244_132e-2,
        2.335_204_976_268_691_8e-3,
    ];
    if y >= 26.543 {
        return 0.0; // underflows to zero in f64
    }
    const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
    let z = 1.0 / (y * y);
    let mut xnum = P[5] * z;
    let mut xden = z;
    for i in 0..4 {
        xnum = (xnum + P[i]) * z;
        xden = (xden + Q[i]) * z;
    }
    let result = z * (xnum + P[4]) / (xden + Q[4]);
    scaled_exp(y) * (INV_SQRT_PI - result) / y
}

/// Compute `exp(-y²)` with Cody's split to preserve precision for large y.
fn scaled_exp(y: f64) -> f64 {
    let ysq = (y * 16.0).trunc() / 16.0;
    let del = (y - ysq) * (y + ysq);
    (-ysq * ysq).exp() * (-del).exp()
}

/// Standard normal cumulative distribution function.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal quantile function (inverse CDF).
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9),
/// followed by one Halley refinement step against [`norm_cdf`], giving
/// near machine precision over `(0, 1)`.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_ppf requires p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: x <- x - f/(f' - f*f''/(2 f')) with f = cdf - p.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via Lentz's continued
/// fraction (converges for all `0 <= x <= 1`, `a, b > 0`).
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta requires positive parameters");
    assert!((0.0..=1.0).contains(&x), "inc_beta requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Evaluate the continued fraction on whichever side converges faster;
    // both branches are computed directly (no recursion) so boundary cases
    // like a = b, x = 0.5 cannot ping-pong.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3.0e-15;
    const FPMIN: f64 = 1.0e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Student-t cumulative distribution function with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_cdf requires positive degrees of freedom");
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Student-t quantile function (inverse CDF).
///
/// Starts from the normal quantile and polishes with Newton iterations on
/// [`t_cdf`]; falls back to bisection if Newton leaves the bracket.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)` or `df <= 0`.
pub fn t_ppf(p: f64, df: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "t_ppf requires p in (0,1), got {p}");
    assert!(df > 0.0, "t_ppf requires positive degrees of freedom");
    // Large df: t is effectively normal.
    if df > 1e8 {
        return norm_ppf(p);
    }
    let mut x = norm_ppf(p);
    // Cornish-Fisher style expansion gives a better start for small df.
    let g1 = (x.powi(3) + x) / 4.0;
    let g2 = (5.0 * x.powi(5) + 16.0 * x.powi(3) + 3.0 * x) / 96.0;
    x += g1 / df + g2 / (df * df);

    // Newton polish with a bisection safety bracket.
    let (mut lo, mut hi) = (-1e10_f64, 1e10_f64);
    for _ in 0..60 {
        let f = t_cdf(x, df) - p;
        if f.abs() < 1e-14 {
            break;
        }
        if f > 0.0 {
            hi = hi.min(x);
        } else {
            lo = lo.max(x);
        }
        // t pdf at x:
        let pdf = ((ln_gamma((df + 1.0) / 2.0) - ln_gamma(df / 2.0)).exp()
            / (df * std::f64::consts::PI).sqrt())
            * (1.0 + x * x / df).powf(-(df + 1.0) / 2.0);
        let step = f / pdf.max(1e-300);
        let next = x - step;
        x = if next > lo && next < hi {
            next
        } else {
            0.5 * (lo + hi)
        };
    }
    x
}

/// Two-sided critical value for a `level` confidence interval from the
/// t distribution: `t_{1 - alpha/2, df}` where `alpha = 1 - level`.
pub fn t_critical(level: f64, df: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    t_ppf(1.0 - (1.0 - level) / 2.0, df)
}

/// Two-sided critical value from the standard normal.
pub fn z_critical(level: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    norm_ppf(1.0 - (1.0 - level) / 2.0)
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction on the
/// complement otherwise (the same split Numerical Recipes uses; each
/// converges fast on its side).
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`,
/// computed directly on the tail side so extreme upper-tail p-values
/// don't cancel to zero.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)`, accurate for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (a * x.ln() - x - ln_gamma(a)).exp()
}

/// Lentz continued fraction for `Q(a, x)`, accurate for `x >= a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Chi-square cumulative distribution function with `df` degrees of
/// freedom: `P(df/2, x/2)`.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_cdf requires positive degrees of freedom");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(0.5 * df, 0.5 * x)
}

/// Chi-square survival function `1 - CDF` with `df` degrees of freedom,
/// computed on the tail side directly — this is the p-value of a
/// chi-square test statistic, accurate deep into the tail where
/// `1.0 - chi2_cdf(..)` would round to zero.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi2_sf requires positive degrees of freedom");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(0.5 * df, 0.5 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975_002_1).abs() < 1e-5);
        assert!((norm_cdf(-1.96) - 0.024_997_9).abs() < 1e-5);
        assert!((norm_cdf(3.0) - 0.998_650_1).abs() < 1e-5);
    }

    #[test]
    fn norm_ppf_round_trips() {
        for &p in &[0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            let x = norm_ppf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-8, "p={p} x={x}");
        }
    }

    #[test]
    fn norm_ppf_known_values() {
        assert!((norm_ppf(0.975) - 1.959_964).abs() < 1e-5);
        assert!(norm_ppf(0.5).abs() < 1e-9);
        assert!((norm_ppf(0.995) - 2.575_829).abs() < 1e-5);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=sqrt(pi)
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_symmetry_and_bounds() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let v = inc_beta(2.5, 1.5, 0.3);
        let w = 1.0 - inc_beta(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-12);
    }

    #[test]
    fn inc_beta_uniform_case() {
        // I_x(1,1) = x.
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn t_cdf_symmetry() {
        for &df in &[1.0, 2.0, 5.0, 30.0] {
            for &t in &[0.5, 1.0, 2.5] {
                let a = t_cdf(t, df);
                let b = t_cdf(-t, df);
                assert!((a + b - 1.0).abs() < 1e-12, "df={df} t={t}");
            }
        }
        assert!((t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_cauchy_case() {
        // df=1 is Cauchy: CDF(t) = 1/2 + atan(t)/pi.
        for &t in &[-2.0_f64, -0.5, 0.7, 3.0] {
            let expect = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((t_cdf(t, 1.0) - expect).abs() < 1e-10, "t={t}");
        }
    }

    #[test]
    fn t_critical_known_values() {
        // Classic t-table values.
        assert!((t_critical(0.95, 10.0) - 2.228_14).abs() < 1e-4);
        assert!((t_critical(0.95, 22.0) - 2.073_87).abs() < 1e-4);
        assert!((t_critical(0.99, 5.0) - 4.032_14).abs() < 1e-4);
        // Converges to the normal as df grows.
        assert!((t_critical(0.95, 1e7) - 1.959_96).abs() < 1e-3);
    }

    #[test]
    fn t_ppf_round_trips() {
        for &df in &[1.0, 3.0, 10.0, 100.0] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = t_ppf(p, df);
                assert!((t_cdf(x, df) - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
    }

    #[test]
    fn z_critical_95() {
        assert!((z_critical(0.95) - 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            assert!(
                (gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12,
                "x={x}"
            );
        }
        // P(1/2, x) = erf(sqrt(x)): P(0.5, 0.5) with known value
        // (scipy gammainc(0.5, 0.5) = 0.682689...; also the 1-sigma
        // normal mass).
        assert!((gamma_p(0.5, 0.5) - 0.682_689_492_137_086).abs() < 1e-10);
        // Boundaries and complements.
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        for &(a, x) in &[(0.5, 0.2), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            let s = gamma_p(a, x) + gamma_q(a, x);
            assert!((s - 1.0).abs() < 1e-12, "a={a} x={x}: {s}");
        }
        // Monotone in x.
        assert!(gamma_p(3.0, 2.0) < gamma_p(3.0, 2.5));
    }

    #[test]
    fn chi2_known_values() {
        // chi2_cdf(x, 2) = 1 - e^{-x/2}.
        for &x in &[0.5, 1.0, 5.0, 12.0] {
            assert!((chi2_cdf(x, 2.0) - (1.0 - (-x / 2.0).exp())).abs() < 1e-12);
        }
        // Classic table: P(chi2 > 3.841) = 0.05 at df=1,
        // P(chi2 > 6.635) = 0.01 at df=1, P(chi2 > 18.307) = 0.05 at
        // df=10.
        assert!((chi2_sf(3.841_458_820_694_124, 1.0) - 0.05).abs() < 1e-9);
        assert!((chi2_sf(6.634_896_601_021_213, 1.0) - 0.01).abs() < 1e-9);
        assert!((chi2_sf(18.307_038_053_275_146, 10.0) - 0.05).abs() < 1e-9);
        // Deep tail stays positive and ordered instead of rounding to 0.
        let far = chi2_sf(300.0, 1.0);
        assert!(far > 0.0 && far < 1e-60);
        assert!(chi2_sf(310.0, 1.0) < far);
        // Degenerate statistic.
        assert_eq!(chi2_sf(0.0, 5.0), 1.0);
        assert_eq!(chi2_cdf(-1.0, 5.0), 0.0);
    }
}
