//! Data-quality tests for experiment pipelines.
//!
//! The first casualty of lossy telemetry is the *randomization itself*:
//! if records go missing as a function of the treatment (congestion-
//! correlated loss in a bitrate-capping experiment, say), the delivered
//! arm ratio drifts away from the allocated one, and every downstream
//! estimate is computed on a selected sample. The sample-ratio-mismatch
//! (SRM) test is the standard guardrail: a chi-square goodness-of-fit
//! test of observed arm counts against the allocation, which should
//! *never* fire under healthy collection — so a small p-value is
//! evidence the measurement, not the treatment, moved.

use crate::dist::chi2_sf;
use crate::{Result, StatsError};

/// Observed arm counts of one randomization cell (one link, one
/// stratum, or one whole experiment) plus its design allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrmCell {
    /// Delivered control-arm records.
    pub control: u64,
    /// Delivered treated-arm records.
    pub treated: u64,
    /// The treated share the design allocated, in `(0, 1)`. Cells at
    /// exactly 0 or 1 carry no ratio information (one arm is empty by
    /// construction) and are skipped by [`sample_ratio_mismatch`].
    pub expected_treated_share: f64,
}

impl SrmCell {
    /// Total delivered records in the cell.
    pub fn n(&self) -> u64 {
        self.control + self.treated
    }

    /// Whether the cell can contribute to an SRM statistic: a
    /// non-degenerate allocation and at least one delivered record.
    fn usable(&self) -> bool {
        self.n() > 0
            && self.expected_treated_share > 0.0
            && self.expected_treated_share < 1.0
            && self.expected_treated_share.is_finite()
    }
}

/// Outcome of a sample-ratio-mismatch test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrmTest {
    /// Summed chi-square statistic across usable cells.
    pub chi2: f64,
    /// Degrees of freedom (one per usable cell).
    pub df: f64,
    /// Upper-tail p-value: probability of a statistic at least this
    /// large under correct allocation.
    pub p_value: f64,
    /// Total records across usable cells.
    pub n: u64,
    /// Pooled delivered treated share across usable cells (diagnostic;
    /// the test itself is per-cell).
    pub observed_treated_share: f64,
    /// Pooled expected treated share (record-weighted mean of the cell
    /// allocations).
    pub expected_treated_share: f64,
}

impl SrmTest {
    /// Whether the mismatch is significant at `alpha` (an SRM guardrail
    /// conventionally uses a stringent threshold like `1e-3`: it should
    /// *never* fire on healthy data, so even weak evidence is alarming).
    pub fn fires(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Chi-square sample-ratio-mismatch test over one or more randomization
/// cells.
///
/// Each usable cell (see [`SrmCell`]) contributes a 1-df goodness-of-fit
/// term `Σ (obs − exp)² / exp` over its two arms; cells are summed, so
/// per-cell skews add up even when they point in the same direction
/// fleet-wide. Cells with a degenerate allocation (0 or 1) or no
/// delivered records are skipped.
///
/// Errors with [`StatsError::TooFewObservations`] when no usable cell
/// remains.
pub fn sample_ratio_mismatch(cells: &[SrmCell]) -> Result<SrmTest> {
    let mut chi2 = 0.0f64;
    let mut df = 0.0f64;
    let mut n = 0u64;
    let mut treated = 0u64;
    let mut expected_treated = 0.0f64;
    for cell in cells.iter().filter(|c| c.usable()) {
        let total = cell.n() as f64;
        let p = cell.expected_treated_share;
        let exp_t = total * p;
        let exp_c = total * (1.0 - p);
        let obs_t = cell.treated as f64;
        let obs_c = cell.control as f64;
        chi2 += (obs_t - exp_t).powi(2) / exp_t + (obs_c - exp_c).powi(2) / exp_c;
        df += 1.0;
        n += cell.n();
        treated += cell.treated;
        expected_treated += exp_t;
    }
    if df == 0.0 {
        return Err(StatsError::TooFewObservations { got: 0, need: 1 });
    }
    Ok(SrmTest {
        chi2,
        df,
        p_value: chi2_sf(chi2, df),
        n,
        observed_treated_share: treated as f64 / n as f64,
        expected_treated_share: expected_treated / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_cells_do_not_fire() {
        // Exactly on-allocation: statistic 0, p-value 1.
        let t = sample_ratio_mismatch(&[SrmCell {
            control: 5000,
            treated: 5000,
            expected_treated_share: 0.5,
        }])
        .unwrap();
        assert_eq!(t.chi2, 0.0);
        assert_eq!(t.p_value, 1.0);
        assert!(!t.fires(0.05));
        assert_eq!(t.n, 10_000);
        assert!((t.observed_treated_share - 0.5).abs() < 1e-12);
    }

    #[test]
    fn strong_mismatch_fires() {
        // 52/48 on 100k records at a 50/50 allocation: chi2 = 160.
        let t = sample_ratio_mismatch(&[SrmCell {
            control: 48_000,
            treated: 52_000,
            expected_treated_share: 0.5,
        }])
        .unwrap();
        assert!((t.chi2 - 160.0).abs() < 1e-9);
        assert!(t.fires(1e-3), "p = {}", t.p_value);
        assert!(t.p_value < 1e-30);
    }

    #[test]
    fn small_noise_does_not_fire() {
        // 50.2/49.8 on 10k records: chi2 = 0.16, entirely unremarkable.
        let t = sample_ratio_mismatch(&[SrmCell {
            control: 4_980,
            treated: 5_020,
            expected_treated_share: 0.5,
        }])
        .unwrap();
        assert!(t.p_value > 0.5, "p = {}", t.p_value);
    }

    #[test]
    fn cells_sum_and_df_accumulates() {
        let cell = SrmCell {
            control: 400,
            treated: 640,
            expected_treated_share: 0.6,
        };
        let one = sample_ratio_mismatch(&[cell]).unwrap();
        let two = sample_ratio_mismatch(&[cell, cell]).unwrap();
        assert!((two.chi2 - 2.0 * one.chi2).abs() < 1e-9);
        assert_eq!(two.df, 2.0);
        assert_eq!(two.n, 2 * one.n);
    }

    #[test]
    fn degenerate_cells_are_skipped() {
        let usable = SrmCell {
            control: 500,
            treated: 520,
            expected_treated_share: 0.5,
        };
        let all_treated = SrmCell {
            control: 0,
            treated: 1000,
            expected_treated_share: 1.0,
        };
        let empty = SrmCell {
            control: 0,
            treated: 0,
            expected_treated_share: 0.5,
        };
        let t = sample_ratio_mismatch(&[usable, all_treated, empty]).unwrap();
        assert_eq!(t.df, 1.0);
        assert_eq!(t.n, 1020);
        // Nothing usable at all: error, not NaN.
        assert!(sample_ratio_mismatch(&[all_treated, empty]).is_err());
        assert!(sample_ratio_mismatch(&[]).is_err());
    }

    #[test]
    fn chi2_matches_hand_computation() {
        // 30 treated / 70 control at an expected 40/60 split:
        // chi2 = (30-40)^2/40 + (70-60)^2/60 = 2.5 + 1.6667 = 4.1667.
        let t = sample_ratio_mismatch(&[SrmCell {
            control: 70,
            treated: 30,
            expected_treated_share: 0.4,
        }])
        .unwrap();
        assert!((t.chi2 - (2.5 + 5.0 / 3.0)).abs() < 1e-9);
        assert!((t.expected_treated_share - 0.4).abs() < 1e-12);
        assert!((t.observed_treated_share - 0.3).abs() < 1e-12);
    }
}
