//! Minimal deterministic PRNG used by the resampling routines.
//!
//! `expstats` deliberately has no external dependencies, so bootstrap and
//! permutation methods use this small [SplitMix64] generator. It is *not*
//! cryptographic; it is a fast, well-distributed 64-bit mixer that is more
//! than adequate for Monte-Carlo resampling.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// SplitMix64 pseudo-random number generator.
///
/// Deterministic for a given seed; every statistical routine that resamples
/// takes an explicit seed so experiment analyses are exactly reproducible.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Distinct seeds give independent-
    /// looking streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: retry to remove modulo bias.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fork an independent child stream. The child is seeded from this
    /// stream's output, so forks are reproducible and uncorrelated.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SplitMix64::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..1000 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SplitMix64::new(5);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SplitMix64::new(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
