//! Potential-outcome models with closed-form interference.
//!
//! These models give *exact* ground truth for every estimand, so
//! estimators and experiment designs can be verified analytically. The
//! congestion models mirror the mechanisms of the paper's lab tests:
//! fair-share bandwidth splitting explains the parallel-connections
//! result (§3.1) exactly.

use crate::assignment::Assignment;

/// A joint model of potential outcomes `Y_i(A)` for `n` units.
pub trait PotentialOutcomes {
    /// Number of units.
    fn n(&self) -> usize;

    /// Outcome of unit `i` under the full assignment vector
    /// (interference is allowed: the outcome may depend on every entry).
    fn outcome(&self, unit: usize, assignment: &Assignment) -> f64;

    /// Average outcome over treated units (`NaN` if none).
    fn mean_treated(&self, assignment: &Assignment) -> f64 {
        let t = assignment.treated();
        if t.is_empty() {
            return f64::NAN;
        }
        t.iter().map(|&i| self.outcome(i, assignment)).sum::<f64>() / t.len() as f64
    }

    /// Average outcome over control units (`NaN` if none).
    fn mean_control(&self, assignment: &Assignment) -> f64 {
        let c = assignment.control();
        if c.is_empty() {
            return f64::NAN;
        }
        c.iter().map(|&i| self.outcome(i, assignment)).sum::<f64>() / c.len() as f64
    }

    /// The true total treatment effect `μ_T(1) − μ_C(0)` (exact: computed
    /// from the all-treated and all-control assignments).
    fn true_tte(&self) -> f64 {
        let all_t = Assignment::from_vec(vec![true; self.n()]);
        let all_c = Assignment::from_vec(vec![false; self.n()]);
        self.mean_treated(&all_t) - self.mean_control(&all_c)
    }
}

/// No interference: `Y_i(A) = baseline_i + effect · A_i` (SUTVA holds).
///
/// Under this model a naïve A/B test is unbiased for the TTE — the
/// assumption Figure 1a depicts.
#[derive(Debug, Clone)]
pub struct NoInterference {
    /// Per-unit baseline outcomes.
    pub baselines: Vec<f64>,
    /// Constant additive treatment effect.
    pub effect: f64,
}

impl PotentialOutcomes for NoInterference {
    fn n(&self) -> usize {
        self.baselines.len()
    }

    fn outcome(&self, unit: usize, assignment: &Assignment) -> f64 {
        self.baselines[unit]
            + if assignment.arm(unit) {
                self.effect
            } else {
                0.0
            }
    }
}

/// Fair-share congestion: `n` units split capacity `C` in proportion to
/// their weights; treatment changes a unit's weight.
///
/// With `weight_treated = 2`, `weight_control = 1` this is *exactly* the
/// parallel-connections experiment of §3.1: an application opening two
/// TCP connections gets twice the fair share, but the link capacity is
/// unchanged, so `TTE(throughput) = 0` while every A/B test shows +100%.
#[derive(Debug, Clone)]
pub struct FairShare {
    /// Number of units sharing the link.
    pub n: usize,
    /// Link capacity (same outcome units as the metric, e.g. bit/s).
    pub capacity: f64,
    /// Weight of a treated unit.
    pub weight_treated: f64,
    /// Weight of a control unit.
    pub weight_control: f64,
}

impl FairShare {
    fn total_weight(&self, assignment: &Assignment) -> f64 {
        let t = assignment.treated_count() as f64;
        let c = (self.n - assignment.treated_count()) as f64;
        t * self.weight_treated + c * self.weight_control
    }
}

impl PotentialOutcomes for FairShare {
    fn n(&self) -> usize {
        self.n
    }

    fn outcome(&self, unit: usize, assignment: &Assignment) -> f64 {
        let w = if assignment.arm(unit) {
            self.weight_treated
        } else {
            self.weight_control
        };
        self.capacity * w / self.total_weight(assignment)
    }
}

/// Congestion-cost model: every unit pays a cost that grows with the
/// total "aggressiveness" on the link. Models the retransmission-rate
/// side of §3.1: more connections ⇒ more drops *for everyone*.
///
/// `Y_i(A) = base · (total_weight / n)^gamma`, identical for both arms —
/// an outcome with pure spillover and zero within-test contrast.
#[derive(Debug, Clone)]
pub struct CongestionCost {
    /// Number of units.
    pub n: usize,
    /// Cost when everyone runs the control behaviour.
    pub base: f64,
    /// Weight of a treated unit.
    pub weight_treated: f64,
    /// Weight of a control unit.
    pub weight_control: f64,
    /// Cost growth exponent.
    pub gamma: f64,
}

impl PotentialOutcomes for CongestionCost {
    fn n(&self) -> usize {
        self.n
    }

    fn outcome(&self, _unit: usize, assignment: &Assignment) -> f64 {
        let t = assignment.treated_count() as f64;
        let c = (self.n - assignment.treated_count()) as f64;
        let total = t * self.weight_treated + c * self.weight_control;
        let per_capita = total / (self.n as f64 * self.weight_control);
        self.base * per_capita.powf(self.gamma)
    }
}

/// Linear-in-allocation outcomes: `μ_T(p)` and `μ_C(p)` are straight
/// lines in the treated fraction `p`, plus deterministic per-unit
/// heterogeneity. The general shape of Figure 1b.
#[derive(Debug, Clone)]
pub struct LinearInterference {
    /// Number of units.
    pub n: usize,
    /// Treated mean at `p = 0`.
    pub t_intercept: f64,
    /// Slope of the treated mean in `p`.
    pub t_slope: f64,
    /// Control mean at `p = 0`.
    pub c_intercept: f64,
    /// Slope of the control mean in `p`.
    pub c_slope: f64,
    /// Amplitude of deterministic unit heterogeneity (mean zero).
    pub heterogeneity: f64,
}

impl LinearInterference {
    fn unit_offset(&self, unit: usize) -> f64 {
        // Deterministic mean-zero offsets (alternating), so estimand
        // values stay exact.
        if unit.is_multiple_of(2) {
            self.heterogeneity
        } else {
            -self.heterogeneity
        }
    }

    /// True treated mean at allocation `p`.
    pub fn mu_t(&self, p: f64) -> f64 {
        self.t_intercept + self.t_slope * p
    }

    /// True control mean at allocation `p`.
    pub fn mu_c(&self, p: f64) -> f64 {
        self.c_intercept + self.c_slope * p
    }
}

impl PotentialOutcomes for LinearInterference {
    fn n(&self) -> usize {
        self.n
    }

    fn outcome(&self, unit: usize, assignment: &Assignment) -> f64 {
        let p = assignment.treated_fraction();
        let base = if assignment.arm(unit) {
            self.mu_t(p)
        } else {
            self.mu_c(p)
        };
        base + self.unit_offset(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interference_tte_equals_effect() {
        let m = NoInterference {
            baselines: vec![1.0, 2.0, 3.0, 4.0],
            effect: 0.5,
        };
        assert!((m.true_tte() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fair_share_reproduces_parallel_connections_math() {
        // 10 apps, capacity C: with k treated (2 connections each),
        // treated get 2C/(10+k), control get C/(10+k).
        let m = FairShare {
            n: 10,
            capacity: 10.0,
            weight_treated: 2.0,
            weight_control: 1.0,
        };
        for k in 1..10 {
            let mut arms = vec![false; 10];
            for a in arms.iter_mut().take(k) {
                *a = true;
            }
            let assign = Assignment::from_vec(arms);
            let t = m.mean_treated(&assign);
            let c = m.mean_control(&assign);
            let denom = 10.0 + k as f64;
            assert!((t - 20.0 / denom).abs() < 1e-12, "k={k}");
            assert!((c - 10.0 / denom).abs() < 1e-12, "k={k}");
            // The A/B contrast is +100% at every allocation...
            assert!((t / c - 2.0).abs() < 1e-12);
        }
        // ...but the total treatment effect is zero.
        assert!(m.true_tte().abs() < 1e-12);
    }

    #[test]
    fn fair_share_spillover_is_negative() {
        // Treating 9 of 10 units lowers the control unit's share by 9/19
        // relative to the all-control world: 10/19 vs 1 per unit.
        let m = FairShare {
            n: 10,
            capacity: 10.0,
            weight_treated: 2.0,
            weight_control: 1.0,
        };
        let mut arms = vec![true; 10];
        arms[9] = false;
        let assign = Assignment::from_vec(arms);
        let spill = m.mean_control(&assign) - 1.0;
        assert!((spill - (10.0 / 19.0 - 1.0)).abs() < 1e-12);
        assert!(spill < 0.0);
    }

    #[test]
    fn congestion_cost_identical_across_arms() {
        let m = CongestionCost {
            n: 10,
            base: 0.01,
            weight_treated: 2.0,
            weight_control: 1.0,
            gamma: 1.585,
        };
        let assign = Assignment::bernoulli(10, 0.5, 3);
        if assign.treated_count() > 0 && assign.treated_count() < 10 {
            let t = m.mean_treated(&assign);
            let c = m.mean_control(&assign);
            assert!((t - c).abs() < 1e-12, "cost is shared equally");
        }
        // TTE is large: (2)^1.585 ≈ 3 → +200%.
        let tte_rel = m.true_tte() / 0.01;
        assert!((tte_rel - 2.0).abs() < 0.01, "tte_rel {tte_rel}");
    }

    #[test]
    fn linear_interference_means_exact() {
        let m = LinearInterference {
            n: 100,
            t_intercept: 10.0,
            t_slope: -2.0,
            c_intercept: 8.0,
            c_slope: 3.0,
            heterogeneity: 0.5,
        };
        let assign = Assignment::from_vec(
            (0..100).map(|i| i < 40).collect(), // p = 0.4
        );
        // Unit offsets alternate ±0.5 and cancel within large arms.
        let t = m.mean_treated(&assign);
        let c = m.mean_control(&assign);
        assert!((t - m.mu_t(0.4)).abs() < 0.03, "t {t}");
        assert!((c - m.mu_c(0.4)).abs() < 0.03, "c {c}");
        // TTE = μT(1) − μC(0) = 8 − 8 = 0 despite large A/B contrasts.
        assert!(m.true_tte().abs() < 1e-9);
    }

    #[test]
    fn true_tte_uses_full_allocations() {
        let m = LinearInterference {
            n: 10,
            t_intercept: 5.0,
            t_slope: 1.0,
            c_intercept: 2.0,
            c_slope: 0.0,
            heterogeneity: 0.0,
        };
        assert!((m.true_tte() - 4.0).abs() < 1e-12); // (5+1) - 2
    }
}
