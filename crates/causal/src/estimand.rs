//! The estimands of §2, computed exactly from cell means.
//!
//! An *estimand* is the population quantity an experiment targets; an
//! *estimator* (see [`crate::estimators`]) is the statistic computed from
//! observed data. This module holds the bookkeeping that turns the four
//! observable cell means of a paired experiment into the paper's
//! quantities of interest.

/// Which experimental arm a unit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WhichArm {
    /// Runs the new algorithm.
    Treatment,
    /// Runs the existing algorithm.
    Control,
}

/// The four estimands of §2 evaluated from the mean-outcome function
/// `μ_arm(p)` of an experiment with allocation `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimands {
    /// `μ_T(p_hi)`: treated mean in the high-allocation condition.
    pub mu_t_hi: f64,
    /// `μ_C(p_hi)`: control mean in the high-allocation condition.
    pub mu_c_hi: f64,
    /// `μ_T(p_lo)`: treated mean in the low-allocation condition.
    pub mu_t_lo: f64,
    /// `μ_C(p_lo)`: control mean in the low-allocation condition.
    pub mu_c_lo: f64,
}

impl Estimands {
    /// Average treatment effect at the high allocation:
    /// `τ(p_hi) = μ_T(p_hi) − μ_C(p_hi)`.
    pub fn ate_hi(&self) -> f64 {
        self.mu_t_hi - self.mu_c_hi
    }

    /// Average treatment effect at the low allocation.
    pub fn ate_lo(&self) -> f64 {
        self.mu_t_lo - self.mu_c_lo
    }

    /// Approximate total treatment effect, as in the paired-link design:
    /// treated mean when almost everything is treated minus control mean
    /// when almost everything is control,
    /// `TTE ≈ μ_T(p_hi) − μ_C(p_lo)`.
    pub fn tte(&self) -> f64 {
        self.mu_t_hi - self.mu_c_lo
    }

    /// Spillover of a high allocation on control units:
    /// `s(p_hi) = μ_C(p_hi) − μ_C(p_lo)` (≈ `μ_C(p_hi) − μ_C(0)`).
    pub fn spillover(&self) -> f64 {
        self.mu_c_hi - self.mu_c_lo
    }

    /// Partial treatment effect `ρ(p_hi) = μ_T(p_hi) − μ_C(p_lo)` — note
    /// this coincides with the approximate TTE in a two-cell design.
    pub fn partial_hi(&self) -> f64 {
        self.tte()
    }

    /// Express every estimand relative to a baseline (the paper divides
    /// by the global-control mean `μ_C(p_lo)`).
    pub fn relative_to_global_control(&self) -> RelativeEstimands {
        let b = self.mu_c_lo;
        RelativeEstimands {
            ate_hi: self.ate_hi() / b,
            ate_lo: self.ate_lo() / b,
            tte: self.tte() / b,
            spillover: self.spillover() / b,
        }
    }
}

/// Estimands normalized by the global control mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeEstimands {
    /// Relative ATE at the high allocation.
    pub ate_hi: f64,
    /// Relative ATE at the low allocation.
    pub ate_lo: f64,
    /// Relative total treatment effect.
    pub tte: f64,
    /// Relative spillover.
    pub spillover: f64,
}

impl RelativeEstimands {
    /// Do the naïve A/B estimates and the TTE disagree in *sign*?
    /// (the paper's "smoking gun": naïve tests said throughput −5%, the
    /// TTE said +12%).
    pub fn sign_flip(&self) -> bool {
        let naive = 0.5 * (self.ate_hi + self.ate_lo);
        naive.signum() != self.tte.signum() && naive.abs() > 1e-12 && self.tte.abs() > 1e-12
    }

    /// Magnitude of the naïve bias: `mean(τ̂) − TTE` in relative units.
    pub fn naive_bias(&self) -> f64 {
        0.5 * (self.ate_hi + self.ate_lo) - self.tte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_throughput_like() -> Estimands {
        // Shaped like the paper's Figure 7: both A/B tests say capped
        // traffic is ~5% slower, but capping the majority raised both
        // cell means on that link.
        Estimands {
            mu_t_hi: 1.12,
            mu_c_hi: 1.16,
            mu_t_lo: 0.95,
            mu_c_lo: 1.00,
        }
    }

    #[test]
    fn ates_are_within_cell_contrasts() {
        let e = paper_throughput_like();
        assert!((e.ate_hi() - (1.12 - 1.16)).abs() < 1e-12);
        assert!((e.ate_lo() - (0.95 - 1.00)).abs() < 1e-12);
    }

    #[test]
    fn tte_crosses_cells() {
        let e = paper_throughput_like();
        assert!((e.tte() - 0.12).abs() < 1e-12);
        assert!((e.spillover() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn relative_normalization() {
        let e = Estimands {
            mu_t_hi: 224.0,
            mu_c_hi: 232.0,
            mu_t_lo: 190.0,
            mu_c_lo: 200.0,
        };
        let r = e.relative_to_global_control();
        assert!((r.tte - 0.12).abs() < 1e-12);
        assert!((r.spillover - 0.16).abs() < 1e-12);
        assert!((r.ate_hi - (-0.04)).abs() < 1e-12);
        assert!((r.ate_lo - (-0.05)).abs() < 1e-12);
    }

    #[test]
    fn sign_flip_detected() {
        let r = paper_throughput_like().relative_to_global_control();
        assert!(r.sign_flip(), "naive says negative, TTE positive");
        assert!(r.naive_bias() < 0.0);
    }

    #[test]
    fn no_sign_flip_when_consistent() {
        let e = Estimands {
            mu_t_hi: 1.2,
            mu_c_hi: 1.0,
            mu_t_lo: 1.1,
            mu_c_lo: 1.0,
        };
        assert!(!e.relative_to_global_control().sign_flip());
    }
}
