//! Treatment assignment mechanisms.
//!
//! §2 of the paper: "In an A/B test, we randomly assign units to
//! treatment independently with probability p". Beyond Bernoulli
//! assignment this module provides complete randomization (exactly k
//! treated), cluster randomization, and the switchback interval
//! assignment of §5.2.

use expstats::rng::SplitMix64;

/// A realized assignment vector: `true` = treatment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    arms: Vec<bool>,
}

impl Assignment {
    /// Wrap an explicit assignment vector.
    pub fn from_vec(arms: Vec<bool>) -> Assignment {
        Assignment { arms }
    }

    /// Independent Bernoulli(p) assignment over `n` units.
    pub fn bernoulli(n: usize, p: f64, seed: u64) -> Assignment {
        assert!((0.0..=1.0).contains(&p), "allocation must be in [0,1]");
        let mut rng = SplitMix64::new(seed);
        Assignment {
            arms: (0..n).map(|_| rng.next_f64() < p).collect(),
        }
    }

    /// Complete randomization: exactly `k` of `n` units treated
    /// (Fisher–Yates partial shuffle).
    pub fn complete(n: usize, k: usize, seed: u64) -> Assignment {
        assert!(k <= n, "cannot treat more units than exist");
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = SplitMix64::new(seed);
        for i in 0..k {
            let j = i + rng.next_below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        let mut arms = vec![false; n];
        for &i in &idx[..k] {
            arms[i] = true;
        }
        Assignment { arms }
    }

    /// Cluster randomization: every unit in a cluster shares one coin
    /// flip (Bernoulli(p) per cluster). `clusters[i]` is unit i's cluster.
    pub fn clustered(clusters: &[usize], p: f64, seed: u64) -> Assignment {
        assert!((0.0..=1.0).contains(&p), "allocation must be in [0,1]");
        let max_cluster = clusters.iter().copied().max().map_or(0, |m| m + 1);
        let mut rng = SplitMix64::new(seed);
        let cluster_arm: Vec<bool> = (0..max_cluster).map(|_| rng.next_f64() < p).collect();
        Assignment {
            arms: clusters.iter().map(|&c| cluster_arm[c]).collect(),
        }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// Whether there are no units.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// Arm of unit `i`.
    pub fn arm(&self, i: usize) -> bool {
        self.arms[i]
    }

    /// Borrow the raw vector.
    pub fn as_slice(&self) -> &[bool] {
        &self.arms
    }

    /// Number of treated units.
    pub fn treated_count(&self) -> usize {
        self.arms.iter().filter(|&&a| a).count()
    }

    /// Realized treated fraction.
    pub fn treated_fraction(&self) -> f64 {
        if self.arms.is_empty() {
            0.0
        } else {
            self.treated_count() as f64 / self.arms.len() as f64
        }
    }

    /// Indices of treated units.
    pub fn treated(&self) -> Vec<usize> {
        (0..self.arms.len()).filter(|&i| self.arms[i]).collect()
    }

    /// Indices of control units.
    pub fn control(&self) -> Vec<usize> {
        (0..self.arms.len()).filter(|&i| !self.arms[i]).collect()
    }
}

/// Switchback assignment: time is divided into `n_intervals`; each
/// interval is independently assigned treatment with probability 0.5
/// (§5.2: "a given interval is randomly assigned to be either treatment
/// or control").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchbackPlan {
    intervals: Vec<bool>,
}

impl SwitchbackPlan {
    /// Random plan over `n_intervals` (seeded).
    pub fn random(n_intervals: usize, seed: u64) -> SwitchbackPlan {
        let mut rng = SplitMix64::new(seed);
        SwitchbackPlan {
            intervals: (0..n_intervals).map(|_| rng.next_f64() < 0.5).collect(),
        }
    }

    /// Random plan guaranteed to include at least one treated and one
    /// control interval (re-draws; the paper notes any assignment with
    /// ≥1 day per arm gave similar results).
    pub fn random_balanced(n_intervals: usize, seed: u64) -> SwitchbackPlan {
        assert!(n_intervals >= 2, "need at least two intervals to balance");
        for attempt in 0..64 {
            let plan = SwitchbackPlan::random(n_intervals, seed.wrapping_add(attempt));
            let t = plan.intervals.iter().filter(|&&a| a).count();
            if t > 0 && t < n_intervals {
                return plan;
            }
        }
        // Probability of reaching here is 2^-63; alternate determinately.
        SwitchbackPlan {
            intervals: (0..n_intervals).map(|i| i % 2 == 0).collect(),
        }
    }

    /// Strict alternation starting from `start_treated` (used by the
    /// paper's emulated switchback: treatment on days 1, 3, 5).
    pub fn alternating(n_intervals: usize, start_treated: bool) -> SwitchbackPlan {
        SwitchbackPlan {
            intervals: (0..n_intervals)
                .map(|i| (i % 2 == 0) == start_treated)
                .collect(),
        }
    }

    /// Explicit plan.
    pub fn from_vec(intervals: Vec<bool>) -> SwitchbackPlan {
        SwitchbackPlan { intervals }
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the plan has no intervals.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Whether interval `i` is a treatment interval.
    pub fn treated(&self, i: usize) -> bool {
        self.intervals[i]
    }

    /// Borrow the raw plan.
    pub fn as_slice(&self) -> &[bool] {
        &self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_fraction_close_to_p() {
        let a = Assignment::bernoulli(100_000, 0.3, 1);
        assert!((a.treated_fraction() - 0.3).abs() < 0.01);
    }

    #[test]
    fn bernoulli_deterministic_per_seed() {
        assert_eq!(
            Assignment::bernoulli(1000, 0.5, 9),
            Assignment::bernoulli(1000, 0.5, 9)
        );
        assert_ne!(
            Assignment::bernoulli(1000, 0.5, 9),
            Assignment::bernoulli(1000, 0.5, 10)
        );
    }

    #[test]
    fn bernoulli_extremes() {
        assert_eq!(Assignment::bernoulli(50, 0.0, 3).treated_count(), 0);
        assert_eq!(Assignment::bernoulli(50, 1.0, 3).treated_count(), 50);
    }

    #[test]
    fn complete_exact_count() {
        for k in [0, 1, 5, 50, 100] {
            let a = Assignment::complete(100, k, 42);
            assert_eq!(a.treated_count(), k);
        }
    }

    #[test]
    fn complete_is_uniform_ish() {
        // Each unit should be treated in roughly k/n of draws.
        let mut hits = vec![0usize; 20];
        let reps = 2000;
        for seed in 0..reps {
            let a = Assignment::complete(20, 5, seed);
            for (i, h) in hits.iter_mut().enumerate() {
                if a.arm(i) {
                    *h += 1;
                }
            }
        }
        for &h in &hits {
            let frac = h as f64 / reps as f64;
            assert!((frac - 0.25).abs() < 0.05, "frac {frac}");
        }
    }

    #[test]
    fn clustered_units_share_arm() {
        let clusters = [0usize, 0, 1, 1, 2, 2, 2];
        let a = Assignment::clustered(&clusters, 0.5, 7);
        assert_eq!(a.arm(0), a.arm(1));
        assert_eq!(a.arm(2), a.arm(3));
        assert_eq!(a.arm(4), a.arm(5));
        assert_eq!(a.arm(5), a.arm(6));
    }

    #[test]
    fn treated_control_partition() {
        let a = Assignment::bernoulli(100, 0.4, 5);
        let t = a.treated();
        let c = a.control();
        assert_eq!(t.len() + c.len(), 100);
        assert!(t.iter().all(|&i| a.arm(i)));
        assert!(c.iter().all(|&i| !a.arm(i)));
    }

    #[test]
    fn switchback_balanced_has_both_arms() {
        for seed in 0..50 {
            let p = SwitchbackPlan::random_balanced(5, seed);
            let t = p.as_slice().iter().filter(|&&a| a).count();
            assert!(t > 0 && t < 5, "seed {seed}");
        }
    }

    #[test]
    fn switchback_alternating_pattern() {
        let p = SwitchbackPlan::alternating(5, true);
        assert_eq!(p.as_slice(), &[true, false, true, false, true]);
        let q = SwitchbackPlan::alternating(4, false);
        assert_eq!(q.as_slice(), &[false, true, false, true]);
    }
}
