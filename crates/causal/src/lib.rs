//! Potential-outcomes causal inference for networking experiments.
//!
//! Implements §2 of *Unbiased Experiments in Congested Networks*
//! (IMC '21): units, treatment assignment mechanisms, the estimands a
//! networking experimenter cares about —
//!
//! * average treatment effect `τ(p) = μ_T(p) − μ_C(p)`,
//! * **total treatment effect** `TTE = μ_T(1) − μ_C(0)`,
//! * **spillover** `s(p) = μ_C(p) − μ_C(0)`,
//! * partial effect `ρ(p) = μ_T(p) − μ_C(0)`,
//!
//! — together with estimators, allocation–response ("Figure 1") curves
//! and SUTVA/interference diagnostics.
//!
//! Closed-form congestion models in [`potential`] (fair-share bandwidth
//! allocation and friends) provide exact ground truth: estimator
//! unbiasedness is property-tested against them, and the lab simulations
//! in `netsim` are sanity-checked against their predictions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod estimand;
pub mod estimators;
pub mod exposure;
pub mod potential;
pub mod sutva;

pub use assignment::Assignment;
pub use estimand::{Estimands, WhichArm};
pub use estimators::{between_within, naive_ab, BetweenWithin, ClusterCell};
pub use exposure::ExposureCurves;
pub use potential::PotentialOutcomes;
