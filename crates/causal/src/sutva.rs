//! SUTVA / interference diagnostics.
//!
//! §5.1 of the paper: during a gradual deployment with allocations
//! `p_1, p_2, …` one can check that the ATEs agree across allocations,
//! that partial effects match ATEs, and that spillovers are zero. "We can
//! use statistical tests to check each of these relationships. If they do
//! not hold, it could be a sign of congestion interference."

use expstats::dist::norm_cdf;
use expstats::infer::TestResult;
use expstats::ols::{DesignBuilder, Ols};
use expstats::{CovEstimator, DiffEstimate, Result, StatsError};

/// Two-sample z-test that two independent effect estimates are equal
/// (`τ(p_i) = τ(p_j)`).
pub fn test_effect_equality(a: &DiffEstimate, b: &DiffEstimate) -> Result<TestResult> {
    let se = (a.se * a.se + b.se * b.se).sqrt();
    if se == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "test_effect_equality: zero pooled standard error",
        });
    }
    let z = (a.estimate - b.estimate) / se;
    let p = 2.0 * (1.0 - norm_cdf(z.abs()));
    Ok(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
        dof: f64::INFINITY,
    })
}

/// z-test that a spillover estimate is zero.
pub fn test_spillover_zero(s: &DiffEstimate) -> Result<TestResult> {
    if s.se == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "test_spillover_zero: zero standard error",
        });
    }
    let z = s.estimate / s.se;
    let p = 2.0 * (1.0 - norm_cdf(z.abs()));
    Ok(TestResult {
        statistic: z,
        p_value: p.clamp(0.0, 1.0),
        dof: f64::INFINITY,
    })
}

/// Trend test: regress per-allocation ATE estimates on the allocation
/// and test the slope (a sloped dose–response curve means the A/B
/// contrast depends on `p`, i.e. interference).
pub fn dose_response_trend(allocations: &[f64], ates: &[DiffEstimate]) -> Result<TestResult> {
    if allocations.len() != ates.len() {
        return Err(StatsError::DimensionMismatch {
            context: "dose_response_trend: allocations and estimates differ in length",
        });
    }
    if allocations.len() < 3 {
        return Err(StatsError::TooFewObservations {
            got: allocations.len(),
            need: 3,
        });
    }
    let y: Vec<f64> = ates.iter().map(|a| a.estimate).collect();
    let x = DesignBuilder::new()
        .intercept(allocations.len())?
        .column("p", allocations)?
        .build()?;
    let fit = Ols::fit(x, &y)?;
    let t = fit.t_stat(1, CovEstimator::Hc1)?;
    let p = fit.p_value(1, CovEstimator::Hc1)?;
    Ok(TestResult {
        statistic: t,
        p_value: p,
        dof: fit.dof(),
    })
}

/// Summary verdict over a set of interference diagnostics.
#[derive(Debug, Clone)]
pub struct InterferenceReport {
    /// Pairwise ATE-equality tests between consecutive allocations.
    pub ate_equality: Vec<TestResult>,
    /// Spillover-zero tests per allocation (where estimable).
    pub spillover_zero: Vec<TestResult>,
    /// Trend test over the dose–response curve (if ≥ 3 allocations).
    pub trend: Option<TestResult>,
    /// Significance level used for the verdict.
    pub alpha: f64,
}

impl InterferenceReport {
    /// Build a report from gradual-deployment stage estimates.
    pub fn from_stages(
        allocations: &[f64],
        ates: &[DiffEstimate],
        spillovers: &[DiffEstimate],
        alpha: f64,
    ) -> Result<InterferenceReport> {
        if allocations.len() != ates.len() {
            return Err(StatsError::DimensionMismatch {
                context: "InterferenceReport: allocations vs ates",
            });
        }
        let mut ate_equality = Vec::new();
        for w in ates.windows(2) {
            ate_equality.push(test_effect_equality(&w[0], &w[1])?);
        }
        let mut spillover_zero = Vec::new();
        for s in spillovers {
            spillover_zero.push(test_spillover_zero(s)?);
        }
        let trend = if allocations.len() >= 3 {
            Some(dose_response_trend(allocations, ates)?)
        } else {
            None
        };
        Ok(InterferenceReport {
            ate_equality,
            spillover_zero,
            trend,
            alpha,
        })
    }

    /// Whether any diagnostic rejects its no-interference null at `alpha`.
    pub fn interference_detected(&self) -> bool {
        self.ate_equality.iter().any(|t| t.p_value < self.alpha)
            || self.spillover_zero.iter().any(|t| t.p_value < self.alpha)
            || self.trend.as_ref().is_some_and(|t| t.p_value < self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(e: f64, se: f64) -> DiffEstimate {
        DiffEstimate {
            estimate: e,
            se,
            ci: (e - 1.96 * se, e + 1.96 * se),
            dof: 100.0,
        }
    }

    #[test]
    fn equality_test_accepts_equal_effects() {
        let r = test_effect_equality(&est(1.0, 0.2), &est(1.1, 0.2)).unwrap();
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn equality_test_rejects_different_effects() {
        let r = test_effect_equality(&est(1.0, 0.1), &est(2.0, 0.1)).unwrap();
        assert!(r.p_value < 0.001);
    }

    #[test]
    fn spillover_zero_test() {
        assert!(test_spillover_zero(&est(0.05, 0.2)).unwrap().p_value > 0.5);
        assert!(test_spillover_zero(&est(1.0, 0.1)).unwrap().p_value < 0.001);
    }

    #[test]
    fn trend_detects_sloped_dose_response() {
        let ps = [0.1f64, 0.3, 0.5, 0.7, 0.9];
        // ATE shrinks with allocation: strong interference signal.
        let ates: Vec<DiffEstimate> = ps
            .iter()
            .map(|&p| est(2.0 - 1.5 * p + 0.01 * (p * 37.0).sin(), 0.05))
            .collect();
        let r = dose_response_trend(&ps, &ates).unwrap();
        assert!(r.p_value < 0.01, "p {}", r.p_value);
        assert!(r.statistic < 0.0);
    }

    #[test]
    fn trend_flat_curve_not_significant() {
        let ps = [0.1f64, 0.3, 0.5, 0.7, 0.9];
        let noise = [0.03, -0.02, 0.01, -0.03, 0.02];
        let ates: Vec<DiffEstimate> = noise.iter().map(|&n| est(1.0 + n, 0.05)).collect();
        let r = dose_response_trend(&ps, &ates).unwrap();
        assert!(r.p_value > 0.05, "p {}", r.p_value);
    }

    #[test]
    fn report_aggregates_verdict() {
        let ps = [0.05, 0.5, 0.95];
        let flat = vec![est(1.0, 0.1), est(1.02, 0.1), est(0.99, 0.1)];
        let no_spill = vec![est(0.01, 0.1), est(-0.02, 0.1)];
        let rep = InterferenceReport::from_stages(&ps, &flat, &no_spill, 0.05).unwrap();
        assert!(!rep.interference_detected());

        let sloped = vec![est(1.0, 0.05), est(0.5, 0.05), est(0.0, 0.05)];
        let spill = vec![est(0.6, 0.05), est(1.2, 0.05)];
        let rep = InterferenceReport::from_stages(&ps, &sloped, &spill, 0.05).unwrap();
        assert!(rep.interference_detected());
    }

    #[test]
    fn input_validation() {
        assert!(dose_response_trend(&[0.1, 0.2], &[est(1.0, 0.1), est(1.0, 0.1)]).is_err());
        assert!(test_spillover_zero(&est(1.0, 0.0)).is_err());
    }
}
