//! Estimators: statistics computed from one realized experiment.

use crate::assignment::Assignment;
use expstats::{diff_in_means, mean, mean_ci, DiffEstimate, Result, StatsError};

/// The naïve A/B estimator `τ̂(p) = μ̂_T(p) − μ̂_C(p)`: difference in
/// means between treated and control units, with a Welch confidence
/// interval at `level`.
///
/// This estimator is unbiased for `τ(p)` — the paper's point is that
/// `τ(p)` itself is a misleading proxy for the TTE under interference,
/// not that the estimator is computed wrongly.
pub fn naive_ab(outcomes: &[f64], assignment: &Assignment, level: f64) -> Result<DiffEstimate> {
    if outcomes.len() != assignment.len() {
        return Err(StatsError::DimensionMismatch {
            context: "naive_ab: outcomes and assignment lengths differ",
        });
    }
    let treated: Vec<f64> = assignment
        .treated()
        .into_iter()
        .map(|i| outcomes[i])
        .collect();
    let control: Vec<f64> = assignment
        .control()
        .into_iter()
        .map(|i| outcomes[i])
        .collect();
    diff_in_means(&treated, &control, level)
}

/// Mean outcome of each arm: `(μ̂_T, μ̂_C)`.
pub fn arm_means(outcomes: &[f64], assignment: &Assignment) -> Result<(f64, f64)> {
    if outcomes.len() != assignment.len() {
        return Err(StatsError::DimensionMismatch {
            context: "arm_means: outcomes and assignment lengths differ",
        });
    }
    let t = assignment.treated();
    let c = assignment.control();
    if t.is_empty() || c.is_empty() {
        return Err(StatsError::TooFewObservations {
            got: t.len().min(c.len()),
            need: 1,
        });
    }
    let mt = t.iter().map(|&i| outcomes[i]).sum::<f64>() / t.len() as f64;
    let mc = c.iter().map(|&i| outcomes[i]).sum::<f64>() / c.len() as f64;
    Ok((mt, mc))
}

/// Difference in means between two independent samples measured in two
/// different cells (e.g. treated sessions on link 1 vs control sessions
/// on link 2) — the cross-cell estimator used for TTE and spillover in
/// the paired design, at the unit level.
pub fn cross_cell_diff(cell_a: &[f64], cell_b: &[f64], level: f64) -> Result<DiffEstimate> {
    diff_in_means(cell_a, cell_b, level)
}

/// One cluster's realized outcomes, split by arm. The fleet analysis
/// builds one cell per link; either arm may be empty (a link-level
/// design leaves control links with almost no treated sessions).
#[derive(Debug, Clone, Default)]
pub struct ClusterCell {
    /// Outcomes of treated units in the cluster.
    pub treated: Vec<f64>,
    /// Outcomes of control units in the cluster.
    pub control: Vec<f64>,
}

impl ClusterCell {
    /// Mean outcome over both arms, or `None` for an empty cluster.
    pub fn overall_mean(&self) -> Option<f64> {
        let n = self.treated.len() + self.control.len();
        if n == 0 {
            return None;
        }
        let sum: f64 = self.treated.iter().chain(&self.control).sum();
        Some(sum / n as f64)
    }

    /// Whether the cluster is mostly treated (strictly more treated than
    /// control units) — the cluster-arm proxy the between contrast uses.
    pub fn mostly_treated(&self) -> bool {
        self.treated.len() > self.control.len()
    }
}

/// The between/within-cluster decomposition of a treatment effect.
///
/// Under congestion interference the two components answer different
/// questions. The **within** component averages each cluster's internal
/// treated−control contrast — what unit-level randomization estimates,
/// and what interference biases, because control units in a treated
/// cluster absorb spillover. The **between** component contrasts
/// mostly-treated clusters' overall means against mostly-control
/// clusters' — what link-level (cluster) randomization estimates, which
/// includes the spillover inside each cluster and therefore tracks the
/// total treatment effect. Comparing the two is the fleet diagnostic:
/// when they diverge, unit-level randomization is lying.
#[derive(Debug, Clone)]
pub struct BetweenWithin {
    /// Equal-weighted mean of within-cluster contrasts across clusters
    /// holding both arms, with a Student-t CI over clusters. `None` when
    /// fewer than two clusters hold both arms.
    pub within: Option<DiffEstimate>,
    /// Difference of cluster overall means, mostly-treated minus
    /// mostly-control, Welch CI over clusters. `None` when either side
    /// has fewer than two clusters.
    pub between: Option<DiffEstimate>,
    /// Clusters contributing within-cluster contrasts.
    pub n_within: usize,
    /// Clusters on the (mostly-treated, mostly-control) sides.
    pub n_between: (usize, usize),
}

/// Decompose a clustered experiment's effect into its between- and
/// within-cluster components (see [`BetweenWithin`]). `level` is the
/// confidence level for both intervals.
pub fn between_within(cells: &[ClusterCell], level: f64) -> Result<BetweenWithin> {
    if cells.is_empty() {
        return Err(StatsError::TooFewObservations { got: 0, need: 1 });
    }
    // Within: one contrast per cluster that realized both arms.
    let contrasts: Vec<f64> = cells
        .iter()
        .filter(|c| !c.treated.is_empty() && !c.control.is_empty())
        .map(|c| mean(&c.treated) - mean(&c.control))
        .collect();
    let n_within = contrasts.len();
    let within = mean_ci(&contrasts, level).ok();
    // Between: cluster overall means by majority arm.
    let mut t_means = Vec::new();
    let mut c_means = Vec::new();
    for cell in cells {
        if let Some(m) = cell.overall_mean() {
            if cell.mostly_treated() {
                t_means.push(m);
            } else {
                c_means.push(m);
            }
        }
    }
    let n_between = (t_means.len(), c_means.len());
    let between = diff_in_means(&t_means, &c_means, level).ok();
    Ok(BetweenWithin {
        within,
        between,
        n_within,
        n_between,
    })
}

/// Convert an absolute estimate into one relative to a baseline mean
/// (the paper normalizes by the global control mean).
pub fn relative(estimate: &DiffEstimate, baseline: f64) -> Result<DiffEstimate> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "relative: baseline must be finite and non-zero",
        });
    }
    Ok(estimate.scaled(1.0 / baseline))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{FairShare, LinearInterference, NoInterference, PotentialOutcomes};

    fn realize(model: &impl PotentialOutcomes, assignment: &Assignment) -> Vec<f64> {
        (0..model.n())
            .map(|i| model.outcome(i, assignment))
            .collect()
    }

    #[test]
    fn naive_ab_unbiased_without_interference() {
        // Average the estimator over many assignments: must converge to
        // the true effect when SUTVA holds.
        let baselines: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let model = NoInterference {
            baselines,
            effect: 2.5,
        };
        let mut sum = 0.0;
        let reps = 300;
        for seed in 0..reps {
            let a = Assignment::bernoulli(model.n(), 0.3, seed);
            let y = realize(&model, &a);
            sum += naive_ab(&y, &a, 0.95).unwrap().estimate;
        }
        let avg = sum / reps as f64;
        assert!((avg - 2.5).abs() < 0.05, "avg {avg}");
    }

    #[test]
    fn naive_ab_biased_for_tte_under_fair_share() {
        // FairShare: true TTE = 0, but the A/B estimate is ~+100% of the
        // control mean at every allocation.
        let model = FairShare {
            n: 100,
            capacity: 100.0,
            weight_treated: 2.0,
            weight_control: 1.0,
        };
        let a = Assignment::complete(100, 10, 7);
        let y = realize(&model, &a);
        let est = naive_ab(&y, &a, 0.95).unwrap();
        let (_, mc) = arm_means(&y, &a).unwrap();
        let rel = est.estimate / mc;
        assert!((rel - 1.0).abs() < 1e-9, "A/B sees +100%: {rel}");
        assert!(model.true_tte().abs() < 1e-9, "but the truth is zero");
    }

    #[test]
    fn cross_cell_estimator_recovers_linear_tte() {
        // Two cells at p=0.95 and p=0.05 recover TTE ≈ μT(0.95) − μC(0.05).
        let model = LinearInterference {
            n: 2000,
            t_intercept: 10.0,
            t_slope: 2.0,
            c_intercept: 9.0,
            c_slope: 1.5,
            heterogeneity: 0.25,
        };
        let hi = Assignment::complete(model.n(), 1900, 1);
        let lo = Assignment::complete(model.n(), 100, 2);
        let y_hi = realize(&model, &hi);
        let y_lo = realize(&model, &lo);
        let treated_hi: Vec<f64> = hi.treated().into_iter().map(|i| y_hi[i]).collect();
        let control_lo: Vec<f64> = lo.control().into_iter().map(|i| y_lo[i]).collect();
        let est = cross_cell_diff(&treated_hi, &control_lo, 0.95).unwrap();
        let approx_true = model.mu_t(0.95) - model.mu_c(0.05);
        assert!(
            (est.estimate - approx_true).abs() < 0.05,
            "{} vs {approx_true}",
            est.estimate
        );
    }

    #[test]
    fn relative_scales_interval() {
        let d = DiffEstimate {
            estimate: 5.0,
            se: 1.0,
            ci: (3.0, 7.0),
            dof: 10.0,
        };
        let r = relative(&d, 50.0).unwrap();
        assert!((r.estimate - 0.1).abs() < 1e-12);
        assert!((r.ci.0 - 0.06).abs() < 1e-12);
        assert!(relative(&d, 0.0).is_err());
    }

    #[test]
    fn input_validation() {
        let a = Assignment::bernoulli(10, 0.5, 1);
        assert!(naive_ab(&[1.0; 9], &a, 0.95).is_err());
        let all_t = Assignment::from_vec(vec![true; 10]);
        assert!(arm_means(&[1.0; 10], &all_t).is_err());
    }

    /// Build a cluster cell from constant arms plus deterministic jitter.
    fn cell(t_mean: f64, n_t: usize, c_mean: f64, n_c: usize) -> ClusterCell {
        let jitter = |m: f64, n: usize| -> Vec<f64> {
            (0..n).map(|i| m + ((i % 3) as f64 - 1.0) * 0.01).collect()
        };
        ClusterCell {
            treated: jitter(t_mean, n_t),
            control: jitter(c_mean, n_c),
        }
    }

    #[test]
    fn between_within_separates_direct_and_spillover_components() {
        // A synthetic interference pattern: within every cluster treated
        // units beat control by exactly 1.0, but treated-majority
        // clusters are lifted wholesale by 5.0 (the spillover raises
        // everyone). The within component must see ~1.0, the between
        // component ~5.0 + composition.
        let mut cells = Vec::new();
        for g in 0..8 {
            let lifted = g % 2 == 0;
            let base = if lifted { 15.0 } else { 10.0 };
            let (n_t, n_c) = if lifted { (95, 5) } else { (5, 95) };
            cells.push(cell(base + 1.0, n_t, base, n_c));
        }
        let bw = between_within(&cells, 0.95).unwrap();
        assert_eq!(bw.n_within, 8);
        assert_eq!(bw.n_between, (4, 4));
        let within = bw.within.unwrap();
        assert!(
            (within.estimate - 1.0).abs() < 0.05,
            "within {}",
            within.estimate
        );
        let between = bw.between.unwrap();
        // Treated-majority cluster mean ≈ 15 + 0.95; control-majority ≈ 10 + 0.05.
        assert!(
            (between.estimate - 5.9).abs() < 0.1,
            "between {}",
            between.estimate
        );
    }

    #[test]
    fn between_within_degenerate_sides_are_none_not_errors() {
        // All clusters mostly treated: no between contrast; only one
        // cluster with both arms: no within CI.
        let cells = vec![cell(2.0, 10, 1.0, 2), cell(3.0, 10, 0.0, 0)];
        let bw = between_within(&cells, 0.95).unwrap();
        assert!(bw.within.is_none());
        assert!(bw.between.is_none());
        assert_eq!(bw.n_within, 1);
        assert_eq!(bw.n_between, (2, 0));
        assert!(between_within(&[], 0.95).is_err());
    }
}
