//! Allocation–response curves: `μ_T(p)` and `μ_C(p)` as functions of the
//! treated fraction — the paper's Figure 1, computed for any potential-
//! outcomes model by Monte Carlo over assignments.

use crate::assignment::Assignment;
use crate::potential::PotentialOutcomes;
use expstats::rng::SplitMix64;

/// Sampled allocation–response curves.
#[derive(Debug, Clone)]
pub struct ExposureCurves {
    /// Allocation grid (treated fractions), ascending.
    pub ps: Vec<f64>,
    /// `μ_T(p)` estimates (NaN where `p = 0`).
    pub mu_t: Vec<f64>,
    /// `μ_C(p)` estimates (NaN where `p = 1`).
    pub mu_c: Vec<f64>,
}

impl ExposureCurves {
    /// Estimate the curves for `model` on an allocation grid, averaging
    /// `reps` complete-randomization draws per grid point.
    pub fn sample<M: PotentialOutcomes>(
        model: &M,
        grid: &[f64],
        reps: usize,
        seed: u64,
    ) -> ExposureCurves {
        let n = model.n();
        let mut rng = SplitMix64::new(seed);
        let mut mu_t = Vec::with_capacity(grid.len());
        let mut mu_c = Vec::with_capacity(grid.len());
        for &p in grid {
            let k = ((p * n as f64).round() as usize).min(n);
            let mut sum_t = 0.0;
            let mut cnt_t = 0usize;
            let mut sum_c = 0.0;
            let mut cnt_c = 0usize;
            for _ in 0..reps {
                let a = Assignment::complete(n, k, rng.next_u64());
                let t = model.mean_treated(&a);
                if t.is_finite() {
                    sum_t += t;
                    cnt_t += 1;
                }
                let c = model.mean_control(&a);
                if c.is_finite() {
                    sum_c += c;
                    cnt_c += 1;
                }
            }
            mu_t.push(if cnt_t > 0 {
                sum_t / cnt_t as f64
            } else {
                f64::NAN
            });
            mu_c.push(if cnt_c > 0 {
                sum_c / cnt_c as f64
            } else {
                f64::NAN
            });
        }
        ExposureCurves {
            ps: grid.to_vec(),
            mu_t,
            mu_c,
        }
    }

    /// The ATE curve `τ(p) = μ_T(p) − μ_C(p)` (NaN at the endpoints
    /// where one arm is empty).
    pub fn ate_curve(&self) -> Vec<f64> {
        self.mu_t
            .iter()
            .zip(&self.mu_c)
            .map(|(t, c)| t - c)
            .collect()
    }

    /// Spillover curve `s(p) = μ_C(p) − μ_C(0)`; requires the grid to
    /// start at `p = 0`.
    pub fn spillover_curve(&self) -> Vec<f64> {
        let base = self.mu_c.first().copied().unwrap_or(f64::NAN);
        self.mu_c.iter().map(|c| c - base).collect()
    }

    /// Approximate TTE from the curve endpoints: `μ_T(p_max) − μ_C(p_min)`.
    pub fn tte(&self) -> f64 {
        let t_end = self.mu_t.iter().rev().find(|v| v.is_finite());
        let c_start = self.mu_c.iter().find(|v| v.is_finite());
        match (t_end, c_start) {
            (Some(t), Some(c)) => t - c,
            _ => f64::NAN,
        }
    }

    /// Maximum absolute deviation of the ATE curve from its mean — a
    /// direct visual measure of interference (zero under SUTVA).
    pub fn ate_flatness_violation(&self) -> f64 {
        let ates: Vec<f64> = self
            .ate_curve()
            .into_iter()
            .filter(|v| v.is_finite())
            .collect();
        if ates.is_empty() {
            return 0.0;
        }
        let mean = expstats::mean(&ates);
        ates.iter().map(|a| (a - mean).abs()).fold(0.0, f64::max)
    }
}

/// A standard allocation grid including both endpoints.
pub fn standard_grid(points: usize) -> Vec<f64> {
    assert!(points >= 2, "grid needs at least the endpoints");
    (0..points)
        .map(|i| i as f64 / (points - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{FairShare, NoInterference};

    #[test]
    fn grid_spans_unit_interval() {
        let g = standard_grid(11);
        assert_eq!(g.len(), 11);
        assert_eq!(g[0], 0.0);
        assert_eq!(g[10], 1.0);
        assert!((g[5] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flat_curves_without_interference() {
        let model = NoInterference {
            baselines: vec![1.0; 50],
            effect: 2.0,
        };
        let curves = ExposureCurves::sample(&model, &standard_grid(6), 20, 1);
        // μT = 3 and μC = 1 at every p where defined.
        for (i, &p) in curves.ps.iter().enumerate() {
            if p > 0.0 {
                assert!((curves.mu_t[i] - 3.0).abs() < 1e-9);
            }
            if p < 1.0 {
                assert!((curves.mu_c[i] - 1.0).abs() < 1e-9);
            }
        }
        assert!(curves.ate_flatness_violation() < 1e-9);
        assert!((curves.tte() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fair_share_curves_decline_with_allocation() {
        let model = FairShare {
            n: 10,
            capacity: 10.0,
            weight_treated: 2.0,
            weight_control: 1.0,
        };
        let curves = ExposureCurves::sample(&model, &standard_grid(11), 5, 2);
        // Treated mean falls from 2C/(n+1)·... down to C/n as p → 1.
        let first_t = curves.mu_t[1];
        let last_t = curves.mu_t[10];
        assert!(first_t > last_t, "{first_t} vs {last_t}");
        assert!((last_t - 1.0).abs() < 1e-9, "all-treated share is C/n");
        // TTE (throughput) is zero.
        assert!(curves.tte().abs() < 1e-9);
        // Spillover is negative and grows with p.
        let s = curves.spillover_curve();
        assert!(s[9] < s[1]);
        assert!(s[9] < 0.0);
    }

    #[test]
    fn endpoint_arms_are_nan() {
        let model = NoInterference {
            baselines: vec![1.0; 10],
            effect: 1.0,
        };
        let curves = ExposureCurves::sample(&model, &[0.0, 1.0], 3, 3);
        assert!(curves.mu_t[0].is_nan(), "no treated units at p=0");
        assert!(curves.mu_c[1].is_nan(), "no control units at p=1");
    }
}
