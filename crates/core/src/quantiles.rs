//! Quantile treatment effects for experiment data.
//!
//! §2, "Note on averages": *"Practitioners may also be interested in
//! quantile treatment effects, e.g. the difference in 99th percentile
//! latency between treatment and control … It is straightforward to
//! adapt our definitions to measure quantile treatment effects."* This
//! module is that adaptation: every estimand (naïve ATE, TTE, spillover)
//! evaluated at a quantile instead of the mean, with bootstrap CIs.

use crate::dataset::Dataset;
use expstats::quantiles::{quantile, quantile_effect, quantile_sorted};
use expstats::{Result, StatsError};
use streamsim::session::{LinkId, Metric, SessionRecord};

/// A bounded-memory quantile sketch: a deterministic bottom-k "priority
/// reservoir" over a stream of `(id, value)` observations.
///
/// Each observation gets a pseudorandom priority by hashing its stable
/// `id` through the (bijective) SplitMix64 finalizer; the sketch keeps
/// the `cap` observations with the smallest priorities. Because the hash
/// is bijective, distinct ids never tie, so the kept set is a pure
/// function of the *set* of ids folded in — which makes [`merge`]
/// exactly associative, commutative and order-insensitive, the property
/// the work-stealing fleet reduction needs for reproducibility. (The
/// classic P² sketch was rejected here: its marker updates depend on
/// arrival order, so merged partials would not be deterministic.)
///
/// With `total() ≤ cap` the sketch holds every observation and
/// [`quantile`](QuantileSketch::quantile) is exact; beyond that the kept
/// set is a uniform random sample of size `cap`, giving the usual
/// order-statistic error of a `cap`-sized subsample.
///
/// [`merge`]: QuantileSketch::merge
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    cap: usize,
    total: u64,
    /// `(priority, value)` kept entries, sorted ascending by priority so
    /// the representation (not just the kept set) is canonical.
    entries: Vec<(u64, f64)>,
}

/// SplitMix64 finalizer: a bijection on `u64`, so distinct ids map to
/// distinct priorities.
fn priority(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl QuantileSketch {
    /// Empty sketch keeping at most `cap` observations.
    pub fn new(cap: usize) -> QuantileSketch {
        assert!(cap > 0, "sketch capacity must be positive");
        QuantileSketch {
            cap,
            total: 0,
            entries: Vec::new(),
        }
    }

    /// Fold one observation. `id` must be unique across the stream (the
    /// fleet layer derives it from `(link, session index)`); `value`
    /// must be finite — the caller filters NaN metrics exactly like the
    /// mean estimators do.
    pub fn insert(&mut self, id: u64, value: f64) {
        debug_assert!(value.is_finite(), "non-finite value in sketch");
        self.total += 1;
        let p = priority(id);
        if self.entries.len() == self.cap && p > self.entries.last().expect("cap > 0").0 {
            return;
        }
        let at = self.entries.partition_point(|&(q, _)| q < p);
        self.entries.insert(at, (p, value));
        self.entries.truncate(self.cap);
    }

    /// Union with another sketch of the same capacity: keeps the
    /// bottom-`cap` of the combined kept sets, which equals the bottom-k
    /// of the union of the underlying streams (set semantics — merge
    /// order cannot matter).
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert_eq!(self.cap, other.cap, "sketch capacity mismatch in merge");
        if other.entries.is_empty() {
            self.total += other.total;
            return;
        }
        let mut merged =
            Vec::with_capacity((self.entries.len() + other.entries.len()).min(self.cap));
        let (mut i, mut j) = (0, 0);
        while merged.len() < self.cap && (i < self.entries.len() || j < other.entries.len()) {
            let take_mine = j >= other.entries.len()
                || (i < self.entries.len() && self.entries[i].0 < other.entries[j].0);
            if take_mine {
                merged.push(self.entries[i]);
                i += 1;
            } else {
                merged.push(other.entries[j]);
                j += 1;
            }
        }
        self.entries = merged;
        self.total += other.total;
    }

    /// Observations folded in (kept or not).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations currently kept.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sketch has seen no observations.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Whether the kept set is the whole stream (quantiles are exact).
    pub fn is_exact(&self) -> bool {
        self.total <= self.cap as u64
    }

    /// Estimate the `q`-quantile of the stream from the kept sample.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if self.entries.is_empty() {
            return Err(StatsError::TooFewObservations { got: 0, need: 1 });
        }
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidParameter {
                context: "QuantileSketch::quantile: q must be in [0,1]",
            });
        }
        let mut vals: Vec<f64> = self.entries.iter().map(|&(_, v)| v).collect();
        vals.sort_by(f64::total_cmp);
        Ok(quantile_sorted(&vals, q))
    }
}

/// A quantile-level effect, normalized by the control-sample quantile.
#[derive(Debug, Clone)]
pub struct QuantileEstimate {
    /// Metric.
    pub metric: Metric,
    /// Quantile level in `[0, 1]`.
    pub q: f64,
    /// Relative effect: `(Q_q(T) − Q_q(C)) / Q_q(C)`.
    pub relative: f64,
    /// Bootstrap 95% CI for the relative effect.
    pub ci95: (f64, f64),
}

fn q_effect(
    metric: Metric,
    q: f64,
    treated: &[&SessionRecord],
    control: &[&SessionRecord],
    seed: u64,
) -> Result<QuantileEstimate> {
    let t = Dataset::values(treated, metric);
    let c = Dataset::values(control, metric);
    let e = quantile_effect(&t, &c, q, 300, seed)?;
    let base = quantile(&c, q)?;
    if base == 0.0 || !base.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "quantile effect: zero/non-finite control quantile",
        });
    }
    Ok(QuantileEstimate {
        metric,
        q,
        relative: e.effect / base,
        ci95: (e.ci95.0 / base, e.ci95.1 / base),
    })
}

/// The four paired-link estimands at a quantile level: naïve (both
/// links), TTE and spillover — the quantile analogue of
/// [`crate::designs::paired_link_effects`].
#[derive(Debug, Clone)]
pub struct QuantileEffects {
    /// Naïve within-link estimate at the low allocation.
    pub naive_lo: QuantileEstimate,
    /// Naïve within-link estimate at the high allocation.
    pub naive_hi: QuantileEstimate,
    /// Cross-link TTE analogue.
    pub tte: QuantileEstimate,
    /// Cross-link spillover analogue.
    pub spillover: QuantileEstimate,
}

/// Compute quantile effects from paired-link data at level `q`.
pub fn paired_link_quantile_effects(
    data: &Dataset,
    metric: Metric,
    q: f64,
    seed: u64,
) -> Result<QuantileEffects> {
    let l1_t = data.cell(LinkId::One, true);
    let l1_c = data.cell(LinkId::One, false);
    let l2_t = data.cell(LinkId::Two, true);
    let l2_c = data.cell(LinkId::Two, false);
    Ok(QuantileEffects {
        naive_lo: q_effect(metric, q, &l2_t, &l2_c, seed)?,
        naive_hi: q_effect(metric, q, &l1_t, &l1_c, seed.wrapping_add(1))?,
        tte: q_effect(metric, q, &l1_t, &l2_c, seed.wrapping_add(2))?,
        spillover: q_effect(metric, q, &l1_c, &l2_c, seed.wrapping_add(3))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_exact_below_capacity() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let mut sk = QuantileSketch::new(128);
        for (i, &x) in xs.iter().enumerate() {
            sk.insert(i as u64, x);
        }
        assert!(sk.is_exact());
        let mut sorted = xs.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(sk.quantile(q).unwrap(), quantile_sorted(&sorted, q));
        }
    }

    #[test]
    fn sketch_merge_is_order_insensitive() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 10.0).collect();
        let build = |range: std::ops::Range<usize>| {
            let mut s = QuantileSketch::new(64);
            for i in range {
                s.insert(i as u64, xs[i]);
            }
            s
        };
        let (a, b, c) = (build(0..50), build(50..300), build(300..500));
        // (a ∪ b) ∪ c vs c ∪ (b ∪ a): identical representation.
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut right = c.clone();
        right.merge(&ba);
        assert_eq!(left, right);
        assert_eq!(left.total(), 500);
        assert_eq!(left.len(), 64);
        // And equals the single-stream sketch.
        let whole = build(0..500);
        assert_eq!(left, whole);
    }

    #[test]
    fn sketch_bounded_memory_and_sane_estimates() {
        let mut sk = QuantileSketch::new(256);
        // Uniform grid on [0, 1]: q-quantile ≈ q.
        for i in 0..10_000u64 {
            sk.insert(i, (i as f64 + 0.5) / 10_000.0);
        }
        assert_eq!(sk.len(), 256);
        assert!(!sk.is_exact());
        let med = sk.quantile(0.5).unwrap();
        assert!((med - 0.5).abs() < 0.1, "median {med}");
    }

    #[test]
    fn sketch_rejects_bad_quantile() {
        let mut sk = QuantileSketch::new(8);
        assert!(sk.quantile(0.5).is_err());
        sk.insert(0, 1.0);
        assert!(sk.quantile(1.5).is_err());
        assert_eq!(sk.quantile(0.5).unwrap(), 1.0);
    }

    fn rec(link: LinkId, treated: bool, tput: f64) -> SessionRecord {
        SessionRecord {
            link,
            day: 0,
            hour: 12,
            weekend: false,
            arrival_s: 0.0,
            treated,
            throughput_bps: tput,
            min_rtt_s: 0.02,
            play_delay_s: 1.0,
            bitrate_bps: 3e6,
            quality: 70.0,
            rebuffer_count: 0,
            rebuffered: false,
            cancelled: false,
            bytes: 1e8,
            retx_bytes: 1e5,
            switches: 1,
            duration_s: 100.0,
        }
    }

    fn synthetic() -> Dataset {
        let mut recs = Vec::new();
        for i in 0..200 {
            let spread = (i % 40) as f64;
            // Link 1 (treated world) uniformly 20% faster; within links
            // treated and control identical.
            recs.push(rec(LinkId::One, true, 120.0 + spread));
            recs.push(rec(LinkId::One, false, 120.0 + spread));
            recs.push(rec(LinkId::Two, true, 100.0 + spread));
            recs.push(rec(LinkId::Two, false, 100.0 + spread));
        }
        Dataset::new(recs)
    }

    #[test]
    fn median_effects_match_construction() {
        let data = synthetic();
        let e = paired_link_quantile_effects(&data, Metric::Throughput, 0.5, 1).unwrap();
        // Within-link contrasts are zero at every quantile.
        assert!(e.naive_lo.relative.abs() < 1e-9, "{}", e.naive_lo.relative);
        assert!(e.naive_hi.relative.abs() < 1e-9);
        // Cross-link median effect ≈ 20/119.5 ≈ +16.7%.
        assert!(
            (e.tte.relative - 20.0 / 119.5).abs() < 0.02,
            "{}",
            e.tte.relative
        );
        assert!((e.spillover.relative - e.tte.relative).abs() < 1e-9);
    }

    #[test]
    fn tail_quantile_effects_estimable() {
        let data = synthetic();
        let e = paired_link_quantile_effects(&data, Metric::Throughput, 0.95, 2).unwrap();
        assert!(e.tte.relative > 0.05);
        assert!(e.tte.ci95.0 <= e.tte.relative && e.tte.relative <= e.tte.ci95.1);
    }

    #[test]
    fn invalid_quantile_rejected() {
        let data = synthetic();
        assert!(paired_link_quantile_effects(&data, Metric::Throughput, 1.5, 3).is_err());
    }

    #[test]
    fn nan_session_metric_does_not_panic() {
        // Regression: cancelled sessions report NaN play delay; the
        // quantile path used to panic inside expstats' sort. The NaN is
        // filtered by `Dataset::values`, and a NaN reaching expstats
        // directly now returns an error instead of panicking.
        let mut recs = Vec::new();
        for i in 0..50 {
            let spread = (i % 10) as f64;
            for link in [LinkId::One, LinkId::Two] {
                for treated in [true, false] {
                    let mut r = rec(link, treated, 100.0 + spread);
                    r.play_delay_s = 1.0 + spread * 0.1;
                    recs.push(r);
                }
            }
        }
        // One cancelled session per cell: play delay NaN.
        for link in [LinkId::One, LinkId::Two] {
            for treated in [true, false] {
                let mut r = rec(link, treated, 100.0);
                r.cancelled = true;
                r.play_delay_s = f64::NAN;
                recs.push(r);
            }
        }
        let data = Dataset::new(recs);
        let e = paired_link_quantile_effects(&data, Metric::PlayDelay, 0.5, 7).unwrap();
        assert!(e.naive_lo.relative.is_finite());
    }
}
