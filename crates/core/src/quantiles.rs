//! Quantile treatment effects for experiment data.
//!
//! §2, "Note on averages": *"Practitioners may also be interested in
//! quantile treatment effects, e.g. the difference in 99th percentile
//! latency between treatment and control … It is straightforward to
//! adapt our definitions to measure quantile treatment effects."* This
//! module is that adaptation: every estimand (naïve ATE, TTE, spillover)
//! evaluated at a quantile instead of the mean, with bootstrap CIs.

use crate::dataset::Dataset;
use expstats::quantiles::{quantile, quantile_effect};
use expstats::{Result, StatsError};
use streamsim::session::{LinkId, Metric, SessionRecord};

/// A quantile-level effect, normalized by the control-sample quantile.
#[derive(Debug, Clone)]
pub struct QuantileEstimate {
    /// Metric.
    pub metric: Metric,
    /// Quantile level in `[0, 1]`.
    pub q: f64,
    /// Relative effect: `(Q_q(T) − Q_q(C)) / Q_q(C)`.
    pub relative: f64,
    /// Bootstrap 95% CI for the relative effect.
    pub ci95: (f64, f64),
}

fn q_effect(
    metric: Metric,
    q: f64,
    treated: &[&SessionRecord],
    control: &[&SessionRecord],
    seed: u64,
) -> Result<QuantileEstimate> {
    let t = Dataset::values(treated, metric);
    let c = Dataset::values(control, metric);
    let e = quantile_effect(&t, &c, q, 300, seed)?;
    let base = quantile(&c, q)?;
    if base == 0.0 || !base.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "quantile effect: zero/non-finite control quantile",
        });
    }
    Ok(QuantileEstimate {
        metric,
        q,
        relative: e.effect / base,
        ci95: (e.ci95.0 / base, e.ci95.1 / base),
    })
}

/// The four paired-link estimands at a quantile level: naïve (both
/// links), TTE and spillover — the quantile analogue of
/// [`crate::designs::paired_link_effects`].
#[derive(Debug, Clone)]
pub struct QuantileEffects {
    /// Naïve within-link estimate at the low allocation.
    pub naive_lo: QuantileEstimate,
    /// Naïve within-link estimate at the high allocation.
    pub naive_hi: QuantileEstimate,
    /// Cross-link TTE analogue.
    pub tte: QuantileEstimate,
    /// Cross-link spillover analogue.
    pub spillover: QuantileEstimate,
}

/// Compute quantile effects from paired-link data at level `q`.
pub fn paired_link_quantile_effects(
    data: &Dataset,
    metric: Metric,
    q: f64,
    seed: u64,
) -> Result<QuantileEffects> {
    let l1_t = data.cell(LinkId::One, true);
    let l1_c = data.cell(LinkId::One, false);
    let l2_t = data.cell(LinkId::Two, true);
    let l2_c = data.cell(LinkId::Two, false);
    Ok(QuantileEffects {
        naive_lo: q_effect(metric, q, &l2_t, &l2_c, seed)?,
        naive_hi: q_effect(metric, q, &l1_t, &l1_c, seed.wrapping_add(1))?,
        tte: q_effect(metric, q, &l1_t, &l2_c, seed.wrapping_add(2))?,
        spillover: q_effect(metric, q, &l1_c, &l2_c, seed.wrapping_add(3))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(link: LinkId, treated: bool, tput: f64) -> SessionRecord {
        SessionRecord {
            link,
            day: 0,
            hour: 12,
            weekend: false,
            arrival_s: 0.0,
            treated,
            throughput_bps: tput,
            min_rtt_s: 0.02,
            play_delay_s: 1.0,
            bitrate_bps: 3e6,
            quality: 70.0,
            rebuffer_count: 0,
            rebuffered: false,
            cancelled: false,
            bytes: 1e8,
            retx_bytes: 1e5,
            switches: 1,
            duration_s: 100.0,
        }
    }

    fn synthetic() -> Dataset {
        let mut recs = Vec::new();
        for i in 0..200 {
            let spread = (i % 40) as f64;
            // Link 1 (treated world) uniformly 20% faster; within links
            // treated and control identical.
            recs.push(rec(LinkId::One, true, 120.0 + spread));
            recs.push(rec(LinkId::One, false, 120.0 + spread));
            recs.push(rec(LinkId::Two, true, 100.0 + spread));
            recs.push(rec(LinkId::Two, false, 100.0 + spread));
        }
        Dataset::new(recs)
    }

    #[test]
    fn median_effects_match_construction() {
        let data = synthetic();
        let e = paired_link_quantile_effects(&data, Metric::Throughput, 0.5, 1).unwrap();
        // Within-link contrasts are zero at every quantile.
        assert!(e.naive_lo.relative.abs() < 1e-9, "{}", e.naive_lo.relative);
        assert!(e.naive_hi.relative.abs() < 1e-9);
        // Cross-link median effect ≈ 20/119.5 ≈ +16.7%.
        assert!(
            (e.tte.relative - 20.0 / 119.5).abs() < 0.02,
            "{}",
            e.tte.relative
        );
        assert!((e.spillover.relative - e.tte.relative).abs() < 1e-9);
    }

    #[test]
    fn tail_quantile_effects_estimable() {
        let data = synthetic();
        let e = paired_link_quantile_effects(&data, Metric::Throughput, 0.95, 2).unwrap();
        assert!(e.tte.relative > 0.05);
        assert!(e.tte.ci95.0 <= e.tte.relative && e.tte.relative <= e.tte.ci95.1);
    }

    #[test]
    fn invalid_quantile_rejected() {
        let data = synthetic();
        assert!(paired_link_quantile_effects(&data, Metric::Throughput, 1.5, 3).is_err());
    }
}
