//! Session-level experimental data: a thin, queryable wrapper over
//! `streamsim` session records.

use streamsim::session::{LinkId, Metric, SessionRecord};

/// One `(day, hour)` aggregation cell (`Z_t(A)` of Appendix B) with the
/// calendar context needed for day-of-week controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HourlyCell {
    /// Simulation day.
    pub day: usize,
    /// Local hour of day.
    pub hour: usize,
    /// Whether the day is a weekend day.
    pub weekend: bool,
    /// Mean of the metric over the cell's sessions.
    pub mean: f64,
}

/// A collection of session records with the selectors the §4/§5 analyses
/// need.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    records: Vec<SessionRecord>,
}

impl Dataset {
    /// Wrap records.
    pub fn new(records: Vec<SessionRecord>) -> Dataset {
        Dataset { records }
    }

    /// All records.
    pub fn records(&self) -> &[SessionRecord] {
        &self.records
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Subset by predicate.
    pub fn filter<'a>(
        &'a self,
        pred: impl Fn(&SessionRecord) -> bool + 'a,
    ) -> Vec<&'a SessionRecord> {
        self.records.iter().filter(|r| pred(r)).collect()
    }

    /// The four cells of the paired experiment:
    /// (link, arm) → records.
    pub fn cell(&self, link: LinkId, treated: bool) -> Vec<&SessionRecord> {
        self.filter(move |r| r.link == link && r.treated == treated)
    }

    /// Metric values for a set of records, dropping NaNs (e.g. bitrate of
    /// cancelled sessions).
    pub fn values(records: &[&SessionRecord], metric: Metric) -> Vec<f64> {
        records
            .iter()
            .map(|r| metric.of(r))
            .filter(|v| v.is_finite())
            .collect()
    }

    /// Mean of a metric over records (NaN-filtered).
    pub fn mean(records: &[&SessionRecord], metric: Metric) -> f64 {
        let vals = Self::values(records, metric);
        expstats::mean(&vals)
    }

    /// Hourly cell rows `(day, hour, mean)` of a metric over the given
    /// records — the `Z_t(A)` aggregation of Appendix B.
    pub fn hourly_means(records: &[&SessionRecord], metric: Metric) -> Vec<(usize, usize, f64)> {
        Self::hourly_cells(records, metric)
            .into_iter()
            .map(|c| (c.day, c.hour, c.mean))
            .collect()
    }

    /// Hourly cells with calendar context (weekend flag), for analyses
    /// that control for day-of-week demand shifts.
    pub fn hourly_cells(records: &[&SessionRecord], metric: Metric) -> Vec<HourlyCell> {
        use std::collections::BTreeMap;
        let mut cells: BTreeMap<(usize, usize), (f64, usize, bool)> = BTreeMap::new();
        for r in records {
            let v = metric.of(r);
            if v.is_finite() {
                let e = cells.entry((r.day, r.hour)).or_insert((0.0, 0, r.weekend));
                e.0 += v;
                e.1 += 1;
            }
        }
        cells
            .into_iter()
            .map(|((day, hour), (sum, n, weekend))| HourlyCell {
                day,
                hour,
                weekend,
                mean: sum / n as f64,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(link: LinkId, treated: bool, day: usize, hour: usize, tput: f64) -> SessionRecord {
        SessionRecord {
            link,
            day,
            hour,
            weekend: false,
            arrival_s: (day * 86_400 + hour * 3600) as f64,
            treated,
            throughput_bps: tput,
            min_rtt_s: 0.02,
            play_delay_s: 1.0,
            bitrate_bps: 3e6,
            quality: 70.0,
            rebuffer_count: 0,
            rebuffered: false,
            cancelled: false,
            bytes: 1e8,
            retx_bytes: 1e5,
            switches: 1,
            duration_s: 100.0,
        }
    }

    #[test]
    fn cells_partition_by_link_and_arm() {
        let ds = Dataset::new(vec![
            rec(LinkId::One, true, 0, 0, 1.0),
            rec(LinkId::One, false, 0, 0, 2.0),
            rec(LinkId::Two, true, 0, 0, 3.0),
            rec(LinkId::Two, false, 0, 0, 4.0),
        ]);
        assert_eq!(ds.cell(LinkId::One, true).len(), 1);
        assert_eq!(ds.cell(LinkId::Two, false).len(), 1);
        assert_eq!(ds.len(), 4);
    }

    #[test]
    fn values_drop_nan() {
        let mut r = rec(LinkId::One, false, 0, 0, 5.0);
        r.bitrate_bps = f64::NAN;
        let ds = Dataset::new(vec![r, rec(LinkId::One, false, 0, 0, 7.0)]);
        let all = ds.filter(|_| true);
        let vals = Dataset::values(&all, Metric::Bitrate);
        assert_eq!(vals.len(), 1);
        let tputs = Dataset::values(&all, Metric::Throughput);
        assert_eq!(tputs, vec![5.0, 7.0]);
    }

    #[test]
    fn hourly_means_aggregate() {
        let ds = Dataset::new(vec![
            rec(LinkId::One, false, 0, 10, 2.0),
            rec(LinkId::One, false, 0, 10, 4.0),
            rec(LinkId::One, false, 1, 10, 6.0),
        ]);
        let all = ds.filter(|_| true);
        let cells = Dataset::hourly_means(&all, Metric::Throughput);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0], (0, 10, 3.0));
        assert_eq!(cells[1], (1, 10, 6.0));
    }
}
