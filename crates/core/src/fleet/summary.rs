//! Streaming fleet aggregation: mergeable per-link sufficient statistics
//! and summary-based twins of the record-level fleet estimators.
//!
//! [`super::user_level_effect`] and friends need every `SessionRecord`
//! of every link in memory, so fleet sweeps grow with links × seeds ×
//! sessions. This module is the bounded-memory path: the moment a link
//! job finishes, [`FleetLinkSummary::from_run`] folds its sessions into
//! per-arm Welford cells (one per metric) plus bounded quantile
//! sketches, and the records are dropped. Per-link state is a few
//! hundred bytes, so a whole [`FleetSummary`] scales with the number of
//! *links*, not sessions.
//!
//! Every estimator here is the exact summary-space rewrite of its
//! record-based twin (same formulas, shared `expstats` kernels), and the
//! record path is kept as the equivalence oracle — the
//! `fleet_streaming` integration tests require agreement to ≤1e-9
//! relative on user-level, link-level, paired and CRV1 outputs.
//!
//! Determinism under work stealing: a link's cells are accumulated
//! entirely inside one job (fixed session order), cross-link merges only
//! concatenate links (sorted at finalize) and union sketches (set
//! semantics, canonical order), so results are bit-identical regardless
//! of how the scheduler interleaved jobs.

use expstats::accum::{ClusterOlsAccum, WelfordCell};
use expstats::dist::t_critical;
use expstats::{diff_in_means, diff_in_means_cells, mean_ci, Result, StatsError};
use streamsim::fleet::FleetLinkRun;
use streamsim::session::Metric;
use streamsim::telemetry::TelemetryStats;

use super::{AggregationComparison, FleetEffect};
use crate::quantiles::QuantileSketch;
use causal::estimators::BetweenWithin;

/// Default kept-sample size for the per-metric quantile sketches.
pub const DEFAULT_SKETCH_CAP: usize = 1024;

/// Index of a metric in [`Metric::ALL`] (the cell storage order).
fn metric_index(metric: Metric) -> usize {
    Metric::ALL
        .iter()
        .position(|&m| m == metric)
        .expect("metric listed in Metric::ALL")
}

/// Sufficient statistics of one link's run: per-metric, per-arm Welford
/// cells and quantile sketches, plus the covariates the designs and
/// estimators need. Built once per finished job; the session records can
/// be dropped immediately afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetLinkSummary {
    /// Link index in the fleet.
    pub link: usize,
    /// Cluster arm, if the design assigned one.
    pub treated_cluster: Option<bool>,
    /// Baseline offered-load covariate (stratification key).
    pub offered_load: f64,
    /// Expected treated fraction under this link's schedule (from
    /// [`FleetLinkRun::expected_allocation`]) — what a sample-ratio test
    /// compares delivered arm counts against.
    pub expected_allocation: f64,
    /// Per-arm telemetry accounting for this link (pass-through when the
    /// run carried no faults).
    pub telemetry: TelemetryStats,
    /// Total sessions *delivered* for this link (including ones whose
    /// value is NaN for some metric).
    pub n_sessions: usize,
    /// `cells[metric_index][arm]` with arm 0 = control, 1 = treated;
    /// only finite metric values are folded in, mirroring the record
    /// path's NaN filtering.
    cells: Vec<[WelfordCell; 2]>,
    /// Per-metric per-arm sketches; drained when the link is folded into
    /// a [`FleetSummary`] (fleet-level sketches take over).
    sketches: Vec<[QuantileSketch; 2]>,
}

impl FleetLinkSummary {
    /// Fold a finished link run into summary state. `sketch_cap` bounds
    /// the per-sketch kept sample (see [`DEFAULT_SKETCH_CAP`]).
    pub fn from_run(run: &FleetLinkRun, sketch_cap: usize) -> FleetLinkSummary {
        let n_metrics = Metric::ALL.len();
        let mut cells = vec![[WelfordCell::new(); 2]; n_metrics];
        let mut sketches: Vec<[QuantileSketch; 2]> = (0..n_metrics)
            .map(|_| {
                [
                    QuantileSketch::new(sketch_cap),
                    QuantileSketch::new(sketch_cap),
                ]
            })
            .collect();
        for (idx, s) in run.sessions.iter().enumerate() {
            let arm = usize::from(s.treated);
            // Stable unique id: links are far below 2^32 and so are
            // sessions per link, so (link, session) packs losslessly.
            let id = ((run.link as u64) << 32) | idx as u64;
            for (m, metric) in Metric::ALL.iter().enumerate() {
                let v = metric.of(s);
                if v.is_finite() {
                    cells[m][arm].push(v);
                    sketches[m][arm].insert(id, v);
                }
            }
        }
        FleetLinkSummary {
            link: run.link,
            treated_cluster: run.treated_cluster,
            offered_load: run.offered_load,
            expected_allocation: run.expected_allocation,
            telemetry: run.telemetry,
            n_sessions: run.sessions.len(),
            cells,
            sketches,
        }
    }

    /// The Welford cell of one metric and arm.
    pub fn cell(&self, metric: Metric, treated: bool) -> &WelfordCell {
        &self.cells[metric_index(metric)][usize::from(treated)]
    }
}

/// One link a quarantining sweep gave up on: its job panicked, the
/// panic was caught, and the link's statistics are simply absent from
/// the summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedLink {
    /// Link index in the fleet.
    pub link: usize,
    /// The panic payload's message, best-effort stringified.
    pub reason: String,
}

/// What a fault-tolerant sweep had to give up on: the quarantined links
/// (sorted by link index after [`FleetSummary::finalize`]). A non-empty
/// report means every estimate from this summary describes the
/// *surviving* links only — the analysis layer turns that into a
/// `DegradedFleet` quality flag rather than reporting silently.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedReport {
    /// Links whose jobs panicked, with their panic messages.
    pub quarantined: Vec<QuarantinedLink>,
}

impl DegradedReport {
    /// Whether any link was lost.
    pub fn is_degraded(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Number of quarantined links.
    pub fn len(&self) -> usize {
        self.quarantined.len()
    }

    /// True when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Mergeable summary of a whole fleet replication: the per-link cells
/// (memory proportional to links) plus fleet-level quantile sketches
/// (constant memory) and the design's pair matching.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    sketch_cap: usize,
    /// One summary per link, sorted by link index after [`finalize`].
    ///
    /// [`finalize`]: FleetSummary::finalize
    pub links: Vec<FleetLinkSummary>,
    /// `(treated, control)` link-index pairs for the paired design.
    pub pairs: Vec<(usize, usize)>,
    /// `sketches[metric_index][arm]`, merged over all links.
    sketches: Vec<[QuantileSketch; 2]>,
    /// Total sessions folded in across links.
    pub n_sessions: usize,
    /// Fleet-wide telemetry ledger, accumulated over folded links.
    pub telemetry: TelemetryStats,
    /// Links a quarantining sweep lost (empty under `FailFast` or a
    /// clean run).
    pub degraded: DegradedReport,
}

impl FleetSummary {
    /// Empty summary whose sketches keep at most `sketch_cap` samples.
    pub fn new(sketch_cap: usize) -> FleetSummary {
        FleetSummary {
            sketch_cap,
            links: Vec::new(),
            pairs: Vec::new(),
            sketches: (0..Metric::ALL.len())
                .map(|_| {
                    [
                        QuantileSketch::new(sketch_cap),
                        QuantileSketch::new(sketch_cap),
                    ]
                })
                .collect(),
            n_sessions: 0,
            telemetry: TelemetryStats::default(),
            degraded: DegradedReport::default(),
        }
    }

    /// Fold one finished link in: its sketches are merged into the
    /// fleet-level sketches and drained, so retained per-link state is
    /// just the Welford cells.
    pub fn fold(&mut self, mut link: FleetLinkSummary) {
        for (fleet, mine) in self.sketches.iter_mut().zip(link.sketches.drain(..)) {
            fleet[0].merge(&mine[0]);
            fleet[1].merge(&mine[1]);
        }
        self.n_sessions += link.n_sessions;
        self.telemetry.merge(&link.telemetry);
        self.links.push(link);
    }

    /// Record a link whose job panicked under a quarantining sweep: the
    /// link contributes nothing to the statistics, only to the degraded
    /// report.
    pub fn fold_quarantined(&mut self, link: usize, reason: String) {
        self.degraded
            .quarantined
            .push(QuarantinedLink { link, reason });
    }

    /// Combine two partial summaries of the *same* replication
    /// (disjoint link sets). Associative and order-insensitive up to
    /// link order, which [`finalize`](FleetSummary::finalize) canonicalizes.
    pub fn merge(&mut self, mut other: FleetSummary) {
        assert_eq!(
            self.sketch_cap, other.sketch_cap,
            "FleetSummary::merge: sketch capacity mismatch"
        );
        debug_assert!(
            other.pairs.is_empty(),
            "merge partials before attaching pairs"
        );
        for (fleet, theirs) in self.sketches.iter_mut().zip(&other.sketches) {
            fleet[0].merge(&theirs[0]);
            fleet[1].merge(&theirs[1]);
        }
        self.n_sessions += other.n_sessions;
        self.telemetry.merge(&other.telemetry);
        self.degraded
            .quarantined
            .append(&mut other.degraded.quarantined);
        self.links.append(&mut other.links);
    }

    /// Canonicalize after all partials are merged: sort links (and the
    /// degraded report) by index, restoring determinism under work
    /// stealing, and attach the design's pair matching.
    pub fn finalize(&mut self, pairs: Vec<(usize, usize)>) {
        self.links.sort_by_key(|l| l.link);
        debug_assert!(
            self.links.windows(2).all(|w| w[0].link < w[1].link),
            "duplicate link folded into FleetSummary"
        );
        self.degraded.quarantined.sort_by_key(|q| q.link);
        self.pairs = pairs;
    }

    /// Fleet-level quantile sketch for one metric and arm.
    pub fn sketch(&self, metric: Metric, treated: bool) -> &QuantileSketch {
        &self.sketches[metric_index(metric)][usize::from(treated)]
    }

    /// Borrow all links (the shape the summary estimators take, mirroring
    /// the record-path `&[&FleetLinkRun]` convention).
    pub fn link_refs(&self) -> Vec<&FleetLinkSummary> {
        self.links.iter().collect()
    }
}

/// Summary twin of [`super::control_mean`]: control sessions on
/// control-cluster links when the design assigned cluster arms,
/// otherwise all control sessions.
pub fn control_mean_summary(links: &[&FleetLinkSummary], metric: Metric) -> f64 {
    let any_control_cluster = links.iter().any(|l| l.treated_cluster == Some(false));
    let mut cell = WelfordCell::new();
    for l in links {
        if !any_control_cluster || l.treated_cluster == Some(false) {
            cell.merge(l.cell(metric, false));
        }
    }
    if cell.n == 0 {
        f64::NAN
    } else {
        cell.mean
    }
}

fn check_baseline(baseline: f64, context: &'static str) -> Result<()> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter { context });
    }
    Ok(())
}

/// Per-link normal-equation block for the `[1, treated]` design, derived
/// in closed form from the two arm cells: with `n = n_c + n_t`,
/// `X'X = [[n, n_t], [n_t, n_t]]`, `X'y = [Σy, Σy_t]`,
/// `y'y = Σy²` (via `M2 + n·mean²`).
fn push_user_level_block(acc: &mut ClusterOlsAccum, link: usize, c: &WelfordCell, t: &WelfordCell) {
    let n = c.n + t.n;
    if n == 0 {
        return;
    }
    let nf = n as f64;
    let nt = t.n as f64;
    let xtx = [nf, nt, nt, nt];
    let xty = [c.sum() + t.sum(), t.sum()];
    let yty = c.sum_sq() + t.sum_sq();
    acc.push_block(link, &xtx, &xty, yty, n);
}

fn effect_from_clustered(
    metric: Metric,
    baseline: f64,
    est: f64,
    se: f64,
    n: usize,
    g: usize,
) -> FleetEffect {
    let tcrit = t_critical(0.95, (g as f64 - 1.0).max(1.0));
    FleetEffect {
        metric,
        absolute: est,
        relative: est / baseline,
        ci95: ((est - tcrit * se) / baseline, (est + tcrit * se) / baseline),
        se: se / baseline.abs(),
        n_sessions: n,
        n_clusters: g,
        quality: Vec::new(),
    }
}

/// Summary twin of [`super::user_level_effect`]: pooled session-level
/// contrast with CRV1 link-clustered standard errors, computed from
/// per-link cells alone.
pub fn user_level_effect_summary(
    links: &[&FleetLinkSummary],
    metric: Metric,
    baseline: f64,
) -> Result<FleetEffect> {
    check_baseline(baseline, "user_level_effect: bad baseline")?;
    let mut acc = ClusterOlsAccum::new(2);
    for l in links {
        push_user_level_block(
            &mut acc,
            l.link,
            l.cell(metric, false),
            l.cell(metric, true),
        );
    }
    let n = acc.n() as usize;
    let fit = acc.fit()?;
    Ok(effect_from_clustered(
        metric,
        baseline,
        fit.coef[1],
        fit.std_errors[1],
        n,
        fit.g,
    ))
}

/// Per-link normal-equation block for the `[1, treated, z]` design with
/// a covariate `z` constant within the link: one block per arm cell.
/// With arm dummy `d` and `m = n·mean(y)`, `S = Σy² = M2 + n·mean²`:
/// `X'X = n·[[1, d, z], [d, d, dz], [z, dz, z²]]`,
/// `X'y = [m, d·m, z·m]`, `y'y = S`.
fn push_adjusted_block(acc: &mut ClusterOlsAccum, link: usize, z: f64, d: f64, cell: &WelfordCell) {
    if cell.n == 0 {
        return;
    }
    let n = cell.n as f64;
    let m = cell.sum();
    let xtx = [
        n,
        n * d,
        n * z,
        n * d,
        n * d * d,
        n * d * z,
        n * z,
        n * d * z,
        n * z * z,
    ];
    let xty = [m, d * m, z * m];
    acc.push_block(link, &xtx, &xty, cell.sum_sq(), cell.n);
}

/// Summary twin of [`super::user_level_effect_adjusted`]: the
/// covariate-adjusted pooled contrast from closed-form per-arm blocks
/// (the offered-load covariate is constant within a link, so each arm
/// cell's contribution to the 3×3 normal equations is exact).
pub fn user_level_effect_adjusted_summary(
    links: &[&FleetLinkSummary],
    metric: Metric,
    baseline: f64,
) -> Result<FleetEffect> {
    check_baseline(baseline, "user_level_effect_adjusted: bad baseline")?;
    let mut acc = ClusterOlsAccum::new(3);
    for l in links {
        push_adjusted_block(&mut acc, l.link, l.offered_load, 0.0, l.cell(metric, false));
        push_adjusted_block(&mut acc, l.link, l.offered_load, 1.0, l.cell(metric, true));
    }
    let n = acc.n() as usize;
    let fit = acc.fit()?;
    Ok(effect_from_clustered(
        metric,
        baseline,
        fit.coef[1],
        fit.std_errors[1],
        n,
        fit.g,
    ))
}

/// Summary twin of [`super::link_level_effect_adjusted`]: the ANCOVA on
/// link means needs only each cluster-armed link's own-arm cell mean
/// and offered-load covariate, so it reduces to the same shared kernel
/// as the record path.
pub fn link_level_effect_adjusted_summary(
    links: &[&FleetLinkSummary],
    metric: Metric,
    baseline: f64,
) -> Result<FleetEffect> {
    check_baseline(baseline, "link_level_effect_adjusted: bad baseline")?;
    let mut rows = Vec::new();
    let mut n_sessions = 0usize;
    for l in links {
        let Some(arm) = l.treated_cluster else {
            continue;
        };
        let cell = l.cell(metric, arm);
        if cell.n == 0 {
            continue;
        }
        n_sessions += cell.n as usize;
        rows.push((f64::from(arm as u8), l.offered_load, cell.mean));
    }
    super::ancova_from_link_means(metric, baseline, &rows, n_sessions)
}

/// Summary twin of [`super::link_level_effect`]: one mean per link from
/// the cluster-arm cell, Welch interval across links.
pub fn link_level_effect_summary(
    links: &[&FleetLinkSummary],
    metric: Metric,
    baseline: f64,
) -> Result<FleetEffect> {
    check_baseline(baseline, "link_level_effect: bad baseline")?;
    let mut t_means = Vec::new();
    let mut c_means = Vec::new();
    let mut n_sessions = 0usize;
    for l in links {
        let Some(arm) = l.treated_cluster else {
            continue;
        };
        let cell = l.cell(metric, arm);
        if cell.n == 0 {
            continue;
        }
        n_sessions += cell.n as usize;
        if arm {
            t_means.push(cell.mean);
        } else {
            c_means.push(cell.mean);
        }
    }
    let d = diff_in_means(&t_means, &c_means, 0.95)?;
    let r = d.scaled(1.0 / baseline);
    Ok(FleetEffect {
        metric,
        absolute: d.estimate,
        relative: r.estimate,
        ci95: r.ci,
        se: r.se,
        n_sessions,
        n_clusters: t_means.len() + c_means.len(),
        quality: Vec::new(),
    })
}

/// Summary twin of [`super::paired_effect`]: per-pair treated-mean minus
/// control-mean contrasts with a Student-t CI over pairs.
pub fn paired_effect_summary(
    summary: &FleetSummary,
    metric: Metric,
    baseline: f64,
) -> Result<FleetEffect> {
    check_baseline(baseline, "paired_effect: bad baseline")?;
    if summary.pairs.is_empty() {
        return Err(StatsError::TooFewObservations { got: 0, need: 2 });
    }
    let find = |link: usize| -> &FleetLinkSummary {
        let at = summary
            .links
            .binary_search_by_key(&link, |l| l.link)
            .expect("paired link folded into summary");
        &summary.links[at]
    };
    let mut diffs = Vec::with_capacity(summary.pairs.len());
    let mut n_sessions = 0usize;
    for &(t, c) in &summary.pairs {
        let tc = find(t).cell(metric, true);
        let cc = find(c).cell(metric, false);
        if tc.n == 0 || cc.n == 0 {
            continue;
        }
        n_sessions += (tc.n + cc.n) as usize;
        diffs.push(tc.mean - cc.mean);
    }
    let d = mean_ci(&diffs, 0.95)?;
    let r = d.scaled(1.0 / baseline);
    Ok(FleetEffect {
        metric,
        absolute: d.estimate,
        relative: r.estimate,
        ci95: r.ci,
        se: r.se,
        n_sessions,
        n_clusters: diffs.len(),
        quality: Vec::new(),
    })
}

/// Summary twin of [`super::aggregation_comparison`]: the cluster
/// contrast under iid (Welch), CRV1-clustered and link-aggregated
/// uncertainty, restricted to sessions whose arm matches their link's
/// cluster arm.
pub fn aggregation_comparison_summary(
    links: &[&FleetLinkSummary],
    metric: Metric,
    baseline: f64,
) -> Result<AggregationComparison> {
    check_baseline(baseline, "aggregation_comparison: bad baseline")?;
    let mut pooled_t = WelfordCell::new();
    let mut pooled_c = WelfordCell::new();
    let mut acc = ClusterOlsAccum::new(2);
    for l in links {
        let Some(arm) = l.treated_cluster else {
            continue;
        };
        let cell = l.cell(metric, arm);
        if cell.n == 0 {
            continue;
        }
        let nf = cell.n as f64;
        // Matching-arm sessions only, so the link's block is one cell:
        // the treated dummy is constant (arm) within it.
        let (xtx, xty) = if arm {
            pooled_t.merge(cell);
            ([nf, nf, nf, nf], [cell.sum(), cell.sum()])
        } else {
            pooled_c.merge(cell);
            ([nf, 0.0, 0.0, 0.0], [cell.sum(), 0.0])
        };
        acc.push_block(l.link, &xtx, &xty, cell.sum_sq(), cell.n);
    }
    let n = (pooled_t.n + pooled_c.n) as usize;
    let d = diff_in_means_cells(&pooled_t, &pooled_c, 0.95)?;
    let fit = acc.fit()?;
    let g = fit.g;
    let to_effect = |est: f64, se: f64, ci: (f64, f64)| FleetEffect {
        metric,
        absolute: est,
        relative: est / baseline,
        ci95: (ci.0 / baseline, ci.1 / baseline),
        se: se / baseline.abs(),
        n_sessions: n,
        n_clusters: g,
        quality: Vec::new(),
    };
    let iid = to_effect(d.estimate, d.se, d.ci);
    let est = fit.coef[1];
    let se_cl = fit.std_errors[1];
    let tcrit = t_critical(0.95, (g as f64 - 1.0).max(1.0));
    let clustered = to_effect(est, se_cl, (est - tcrit * se_cl, est + tcrit * se_cl));
    let link_means = link_level_effect_summary(links, metric, baseline)?;
    Ok(AggregationComparison {
        iid,
        clustered,
        link_means,
    })
}

/// Summary twin of [`super::fleet_between_within`]: the between/within
/// decomposition from per-link cells. Within contrasts use links holding
/// both arms; between contrasts cluster overall means by majority arm
/// (strictly more treated than control sessions), exactly as
/// [`causal::estimators::between_within`] does on raw cells.
pub fn fleet_between_within_summary(
    links: &[&FleetLinkSummary],
    metric: Metric,
) -> Result<BetweenWithin> {
    if links.is_empty() {
        return Err(StatsError::TooFewObservations { got: 0, need: 1 });
    }
    let mut contrasts = Vec::new();
    let mut t_means = Vec::new();
    let mut c_means = Vec::new();
    for l in links {
        let t = l.cell(metric, true);
        let c = l.cell(metric, false);
        if t.n > 0 && c.n > 0 {
            contrasts.push(t.mean - c.mean);
        }
        let mut overall = *t;
        overall.merge(c);
        if overall.n > 0 {
            if t.n > c.n {
                t_means.push(overall.mean);
            } else {
                c_means.push(overall.mean);
            }
        }
    }
    Ok(BetweenWithin {
        within: mean_ci(&contrasts, 0.95).ok(),
        between: diff_in_means(&t_means, &c_means, 0.95).ok(),
        n_within: contrasts.len(),
        n_between: (t_means.len(), c_means.len()),
    })
}

/// Summary twin of [`super::strata`]: split links into `n_strata`
/// near-equal groups by ascending offered-load covariate.
pub fn strata_summary(summary: &FleetSummary, n_strata: usize) -> Vec<Vec<&FleetLinkSummary>> {
    assert!(n_strata > 0, "need at least one stratum");
    let mut order: Vec<&FleetLinkSummary> = summary.links.iter().collect();
    order.sort_by(|a, b| {
        a.offered_load
            .total_cmp(&b.offered_load)
            .then(a.link.cmp(&b.link))
    });
    let n = order.len();
    let k = n_strata.min(n.max(1));
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let end = start + n / k + usize::from(i < n % k);
        out.push(order[start..end].to_vec());
        start = end;
    }
    out
}

/// Summary twin of [`super::ground_truth_tte_from_runs`]: relative TTE
/// from the all-treated and all-control counterfactual summaries (same
/// specs and per-link seeds).
pub fn ground_truth_tte_from_summaries(
    all_treated: &FleetSummary,
    all_control: &FleetSummary,
    metric: Metric,
) -> Result<f64> {
    let overall = |s: &FleetSummary| {
        let mut cell = WelfordCell::new();
        for l in &s.links {
            cell.merge(l.cell(metric, false));
            cell.merge(l.cell(metric, true));
        }
        cell
    };
    let t = overall(all_treated);
    let c = overall(all_control);
    if t.n == 0 || c.n == 0 || c.mean == 0.0 || !c.mean.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "ground_truth_tte: degenerate counterfactual runs",
        });
    }
    Ok((t.mean - c.mean) / c.mean)
}

#[cfg(test)]
mod tests {
    use super::super::tests::small_base;
    use super::super::{
        aggregation_comparison, control_mean, fleet_between_within, link_level_effect,
        link_level_effect_adjusted, paired_effect, strata, user_level_effect,
        user_level_effect_adjusted,
    };
    use super::*;
    use streamsim::config::StreamConfig;
    use streamsim::fleet::{FleetDesign, FleetRun, FleetSim, LinkPopulation};

    fn rel_close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-300)
    }

    fn run_and_summarize(
        n: usize,
        design: &FleetDesign,
        seed: u64,
    ) -> (FleetRun, FleetSummary, StreamConfig) {
        let base = small_base();
        let specs = LinkPopulation::moderate(base.clone(), n, 7).sample();
        let run = FleetSim::new(&base, &specs, design, seed).run();
        let mut summary = FleetSummary::new(DEFAULT_SKETCH_CAP);
        for link in &run.links {
            summary.fold(FleetLinkSummary::from_run(link, DEFAULT_SKETCH_CAP));
        }
        summary.finalize(run.pairs.clone());
        (run, summary, base)
    }

    #[test]
    fn summary_estimators_match_record_oracle() {
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let (run, summary, _) = run_and_summarize(8, &design, 5);
        let links: Vec<_> = run.links.iter().collect();
        let slinks = summary.link_refs();
        for metric in [Metric::Bitrate, Metric::Throughput, Metric::PlayDelay] {
            let base = control_mean(&links, metric);
            let sbase = control_mean_summary(&slinks, metric);
            assert!(rel_close(base, sbase, 1e-12), "{metric:?} baseline");
            let u = user_level_effect(&links, metric, base).unwrap();
            let su = user_level_effect_summary(&slinks, metric, sbase).unwrap();
            assert!(rel_close(u.relative, su.relative, 1e-9), "{metric:?} user");
            assert!(rel_close(u.se, su.se, 1e-9), "{metric:?} user se");
            assert_eq!((u.n_sessions, u.n_clusters), (su.n_sessions, su.n_clusters));
            let l = link_level_effect(&links, metric, base).unwrap();
            let sl = link_level_effect_summary(&slinks, metric, sbase).unwrap();
            assert!(rel_close(l.relative, sl.relative, 1e-9), "{metric:?} link");
            assert!(rel_close(l.se, sl.se, 1e-9), "{metric:?} link se");
            let a = aggregation_comparison(&links, metric, base).unwrap();
            let sa = aggregation_comparison_summary(&slinks, metric, sbase).unwrap();
            assert!(rel_close(a.iid.se, sa.iid.se, 1e-9));
            assert!(rel_close(a.clustered.se, sa.clustered.se, 1e-9));
            assert!(rel_close(a.clustered.relative, sa.clustered.relative, 1e-9));
        }
    }

    #[test]
    fn summary_adjusted_estimators_match_record_oracle() {
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let (run, summary, _) = run_and_summarize(8, &design, 5);
        let links: Vec<_> = run.links.iter().collect();
        let slinks = summary.link_refs();
        for metric in [Metric::Bitrate, Metric::Throughput, Metric::PlayDelay] {
            let base = control_mean(&links, metric);
            let u = user_level_effect_adjusted(&links, metric, base).unwrap();
            let su = user_level_effect_adjusted_summary(&slinks, metric, base).unwrap();
            assert!(
                rel_close(u.relative, su.relative, 1e-9),
                "{metric:?} adjusted user: {} vs {}",
                u.relative,
                su.relative
            );
            assert!(rel_close(u.se, su.se, 1e-9), "{metric:?} adjusted user se");
            assert_eq!((u.n_sessions, u.n_clusters), (su.n_sessions, su.n_clusters));
            let l = link_level_effect_adjusted(&links, metric, base).unwrap();
            let sl = link_level_effect_adjusted_summary(&slinks, metric, base).unwrap();
            assert!(
                rel_close(l.relative, sl.relative, 1e-9),
                "{metric:?} ancova"
            );
            assert!(rel_close(l.se, sl.se, 1e-9), "{metric:?} ancova se");
            assert_eq!(l.n_clusters, sl.n_clusters);
        }
    }

    #[test]
    fn summary_paired_matches_record_oracle() {
        let design = FleetDesign::StratifiedPairs {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let (run, summary, _) = run_and_summarize(8, &design, 11);
        let links: Vec<_> = run.links.iter().collect();
        let base = control_mean(&links, Metric::Bitrate);
        let p = paired_effect(&run, Metric::Bitrate, base).unwrap();
        let sp = paired_effect_summary(&summary, Metric::Bitrate, base).unwrap();
        assert!(rel_close(p.relative, sp.relative, 1e-9));
        assert!(rel_close(p.se, sp.se, 1e-9));
        assert_eq!(p.n_clusters, sp.n_clusters);
    }

    #[test]
    fn summary_between_within_matches_record_oracle() {
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let (run, summary, _) = run_and_summarize(10, &design, 9);
        let links: Vec<_> = run.links.iter().collect();
        let bw = fleet_between_within(&links, Metric::Bitrate).unwrap();
        let sbw = fleet_between_within_summary(&summary.link_refs(), Metric::Bitrate).unwrap();
        assert_eq!(bw.n_within, sbw.n_within);
        assert_eq!(bw.n_between, sbw.n_between);
        let (w, sw) = (bw.within.unwrap(), sbw.within.unwrap());
        assert!(rel_close(w.estimate, sw.estimate, 1e-9));
        assert!(rel_close(w.se, sw.se, 1e-9));
        let (b, sb) = (bw.between.unwrap(), sbw.between.unwrap());
        assert!(rel_close(b.estimate, sb.estimate, 1e-9));
        assert!(rel_close(b.se, sb.se, 1e-9));
    }

    #[test]
    fn summary_strata_match_record_strata() {
        let (run, summary, _) = run_and_summarize(9, &FleetDesign::UserLevel { p: 0.5 }, 1);
        let groups = strata(&run, 3);
        let sgroups = strata_summary(&summary, 3);
        assert_eq!(groups.len(), sgroups.len());
        for (g, sg) in groups.iter().zip(&sgroups) {
            let ids: Vec<usize> = g.iter().map(|l| l.link).collect();
            let sids: Vec<usize> = sg.iter().map(|l| l.link).collect();
            assert_eq!(ids, sids);
        }
    }

    #[test]
    fn summary_merge_order_does_not_change_estimates() {
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let base = small_base();
        let specs = LinkPopulation::moderate(base.clone(), 6, 7).sample();
        let run = FleetSim::new(&base, &specs, &design, 3).run();
        let per_link: Vec<FleetLinkSummary> = run
            .links
            .iter()
            .map(|l| FleetLinkSummary::from_run(l, 128))
            .collect();
        let build = |order: &[usize]| {
            // Two partials split unevenly, merged partial-first.
            let mut a = FleetSummary::new(128);
            let mut b = FleetSummary::new(128);
            for (i, &at) in order.iter().enumerate() {
                if i % 2 == 0 {
                    a.fold(per_link[at].clone());
                } else {
                    b.fold(per_link[at].clone());
                }
            }
            b.merge(a);
            b.finalize(run.pairs.clone());
            b
        };
        let x = build(&[0, 1, 2, 3, 4, 5]);
        let y = build(&[5, 3, 1, 4, 2, 0]);
        let bx = control_mean_summary(&x.link_refs(), Metric::Bitrate);
        let by = control_mean_summary(&y.link_refs(), Metric::Bitrate);
        assert_eq!(bx.to_bits(), by.to_bits());
        let ex = user_level_effect_summary(&x.link_refs(), Metric::Bitrate, bx).unwrap();
        let ey = user_level_effect_summary(&y.link_refs(), Metric::Bitrate, by).unwrap();
        assert_eq!(ex.relative.to_bits(), ey.relative.to_bits());
        assert_eq!(ex.se.to_bits(), ey.se.to_bits());
        // Sketches are set-semantics: identical representation too.
        assert_eq!(
            x.sketch(Metric::Bitrate, true),
            y.sketch(Metric::Bitrate, true)
        );
    }

    #[test]
    fn ground_truth_from_summaries_matches_record_path() {
        let base = small_base();
        let specs = LinkPopulation::moderate(base.clone(), 3, 7).sample();
        let at = |p: f64| {
            let run = FleetSim::new(&base, &specs, &FleetDesign::UserLevel { p }, 21).run();
            let mut s = FleetSummary::new(64);
            for l in &run.links {
                s.fold(FleetLinkSummary::from_run(l, 64));
            }
            s.finalize(run.pairs.clone());
            (run, s)
        };
        let (rt, st) = at(1.0);
        let (rc, sc) = at(0.0);
        let record = super::super::ground_truth_tte_from_runs(&rt, &rc, Metric::Bitrate).unwrap();
        let summary = ground_truth_tte_from_summaries(&st, &sc, Metric::Bitrate).unwrap();
        assert!(rel_close(record, summary, 1e-9), "{record} vs {summary}");
    }

    #[test]
    fn fleet_sketch_tracks_arm_quantiles() {
        let design = FleetDesign::UserLevel { p: 0.5 };
        let (run, summary, _) = run_and_summarize(4, &design, 17);
        // Exact regime: capacity far above the session count.
        let mut vals: Vec<f64> = run
            .links
            .iter()
            .flat_map(|l| l.sessions.iter())
            .filter(|s| s.treated)
            .map(|s| Metric::Throughput.of(s))
            .filter(|v| v.is_finite())
            .collect();
        let sk = summary.sketch(Metric::Throughput, true);
        if sk.is_exact() {
            vals.sort_by(f64::total_cmp);
            let q = sk.quantile(0.5).unwrap();
            let want = expstats::quantiles::quantile_sorted(&vals, 0.5);
            assert_eq!(q.to_bits(), want.to_bits());
        } else {
            // Subsampled regime: the median is still in the right
            // neighborhood.
            let med = sk.quantile(0.5).unwrap();
            let want = expstats::quantiles::quantile(&vals, 0.5).unwrap();
            assert!(rel_close(med, want, 0.25), "{med} vs {want}");
        }
        assert_eq!(sk.total() as usize, vals.len());
    }
}
