//! Experiment designs: naïve A/B, paired-link, switchback, event-study
//! and gradual-deployment experiments over the streaming substrate.

use crate::analysis::{hourly_effect, hourly_effect_weekend_adjusted, unit_effect, EffectEstimate};
use crate::dataset::Dataset;
use causal::assignment::SwitchbackPlan;
use expstats::{Result, StatsError};
use streamsim::config::StreamConfig;
use streamsim::scenario::AllocationSchedule;
use streamsim::session::{LinkId, Metric, SessionRecord};
use streamsim::sim::{HourlyLinkStats, LinkSim, PairedSim};

/// The paired-link experiment of §4: link 1 runs a 95% A/B test, link 2 a
/// 5% A/B test, simultaneously.
#[derive(Debug, Clone)]
pub struct PairedLinkDesign {
    /// Streaming world configuration (shared by both links).
    pub cfg: StreamConfig,
    /// High allocation (link 1); the paper uses 0.95.
    pub p_hi: f64,
    /// Low allocation (link 2); the paper uses 0.05.
    pub p_lo: f64,
    /// Seed.
    pub seed: u64,
}

/// Output of a paired-link run.
pub struct PairedOutcome {
    /// All session records.
    pub data: Dataset,
    /// Hourly link statistics per link (time-series figures).
    pub hourly: [Vec<HourlyLinkStats>; 2],
}

impl PairedLinkDesign {
    /// The paper's configuration: 95% / 5%.
    pub fn paper(cfg: StreamConfig, seed: u64) -> PairedLinkDesign {
        PairedLinkDesign {
            cfg,
            p_hi: 0.95,
            p_lo: 0.05,
            seed,
        }
    }

    /// Run both links.
    pub fn run(&self) -> PairedOutcome {
        let paired = PairedSim::with_paper_biases(
            self.cfg.clone(),
            [
                AllocationSchedule::Constant(self.p_hi),
                AllocationSchedule::Constant(self.p_lo),
            ],
            self.seed,
        );
        let run = paired.run();
        PairedOutcome {
            data: Dataset::new(run.sessions),
            hourly: run.hourly,
        }
    }
}

/// The four estimates the paired design produces for one metric
/// (one row of the paper's Figure 5).
#[derive(Debug, Clone)]
pub struct MetricEffects {
    /// The metric.
    pub metric: Metric,
    /// Naïve A/B estimate within the low-allocation link (τ̂(0.05)).
    pub naive_lo: EffectEstimate,
    /// Naïve A/B estimate within the high-allocation link (τ̂(0.95)).
    pub naive_hi: EffectEstimate,
    /// Approximate total treatment effect (hourly regression across
    /// links: 95% treated on link 1 vs 95% control on link 2).
    pub tte: EffectEstimate,
    /// Spillover (hourly regression: control on link 1 vs control on
    /// link 2).
    pub spillover: EffectEstimate,
}

impl MetricEffects {
    /// Did naïve A/B testing get the *direction* wrong?
    pub fn sign_flip(&self) -> bool {
        let naive = 0.5 * (self.naive_lo.relative + self.naive_hi.relative);
        naive.signum() != self.tte.relative.signum()
            && naive.abs() > 1e-12
            && self.tte.relative.abs() > 1e-12
    }
}

/// Global control mean for normalization: the control sessions of the
/// mostly-control link (Appendix B: "all reported values are normalized
/// … against the same global control condition").
pub fn global_control_mean(data: &Dataset, metric: Metric) -> f64 {
    let cell = data.cell(LinkId::Two, false);
    Dataset::mean(&cell, metric)
}

/// Compute the Figure-5 row for one metric from paired-link data.
pub fn paired_link_effects(data: &Dataset, metric: Metric) -> Result<MetricEffects> {
    let baseline = global_control_mean(data, metric);
    if !baseline.is_finite() || baseline == 0.0 {
        return Err(StatsError::InvalidParameter {
            context: "paired_link_effects: undefined global control mean",
        });
    }
    let l1_t = data.cell(LinkId::One, true);
    let l1_c = data.cell(LinkId::One, false);
    let l2_t = data.cell(LinkId::Two, true);
    let l2_c = data.cell(LinkId::Two, false);

    // Naïve estimates: session-level within each link (standard A/B).
    let naive_hi = unit_effect(metric, &l1_t, &l1_c, baseline)?;
    let naive_lo = unit_effect(metric, &l2_t, &l2_c, baseline)?;
    // TTE and spillover: hourly regression across links.
    let tte = hourly_effect(metric, &l1_t, &l2_c, baseline)?;
    let spillover = hourly_effect(metric, &l1_c, &l2_c, baseline)?;
    Ok(MetricEffects {
        metric,
        naive_lo,
        naive_hi,
        tte,
        spillover,
    })
}

/// Emulated switchback (§5.3): on treatment days use the treated
/// sessions of link 1; on control days use the control sessions of
/// link 2; analyze with the hourly regression.
pub fn switchback_emulation(
    data: &Dataset,
    plan: &SwitchbackPlan,
    metric: Metric,
) -> Result<EffectEstimate> {
    switchback_emulation_with_burn_in(data, plan, metric, 0)
}

/// Switchback emulation with carryover mitigation (§5.2): exclude the
/// first `burn_in_hours` of every interval, so sessions straddling a
/// treatment boundary (whose initial conditions were set by the *other*
/// arm) do not contaminate the estimate.
pub fn switchback_emulation_with_burn_in(
    data: &Dataset,
    plan: &SwitchbackPlan,
    metric: Metric,
    burn_in_hours: usize,
) -> Result<EffectEstimate> {
    let baseline = global_control_mean(data, metric);
    let fresh = |r: &SessionRecord| {
        // A day is "fresh" after the burn-in, or if the previous day had
        // the same arm (no boundary was crossed).
        if r.hour >= burn_in_hours {
            return true;
        }
        r.day == 0 || plan.treated(r.day - 1) == plan.treated(r.day)
    };
    let treated: Vec<&SessionRecord> = data.filter(|r| {
        r.link == LinkId::One && r.treated && r.day < plan.len() && plan.treated(r.day) && fresh(r)
    });
    let control: Vec<&SessionRecord> = data.filter(|r| {
        r.link == LinkId::Two
            && !r.treated
            && r.day < plan.len()
            && !plan.treated(r.day)
            && fresh(r)
    });
    // Switchback arms live on different days, so difference out the
    // weekend demand shift (§5.3; the event-study emulation deliberately
    // does not, which is the bias the paper demonstrates).
    hourly_effect_weekend_adjusted(metric, &treated, &control, baseline)
}

/// Emulated event study (§5.3): control sessions of link 2 before the
/// switch day, treated sessions of link 1 from it onward.
pub fn event_study_emulation(
    data: &Dataset,
    switch_day: usize,
    metric: Metric,
) -> Result<EffectEstimate> {
    let baseline = global_control_mean(data, metric);
    let treated: Vec<&SessionRecord> =
        data.filter(|r| r.link == LinkId::One && r.treated && r.day >= switch_day);
    let control: Vec<&SessionRecord> =
        data.filter(|r| r.link == LinkId::Two && !r.treated && r.day < switch_day);
    hourly_effect(metric, &treated, &control, baseline)
}

/// A/A false-positive scan on baseline (0% allocation) data: apply a
/// design's labeling to data with no real treatment and count significant
/// results. §5.3 calibrates both alternate designs this way.
pub struct AaScan {
    /// Metrics with a significant (spurious) switchback effect.
    pub switchback_false_positives: Vec<Metric>,
    /// Metrics with a significant (spurious) event-study effect.
    pub event_study_false_positives: Vec<Metric>,
}

/// Run the A/A scan over the given metrics. `data` must come from a run
/// with no treated sessions; pseudo-arms are assigned by day.
pub fn aa_scan(
    data: &Dataset,
    plan: &SwitchbackPlan,
    switch_day: usize,
    metrics: &[Metric],
) -> AaScan {
    let mut sw = Vec::new();
    let mut ev = Vec::new();
    for &m in metrics {
        let baseline = global_control_mean(data, m);
        // Pseudo-switchback: link-1 sessions on plan-treated days vs
        // link-2 sessions on control days (nobody actually treated).
        let t: Vec<&SessionRecord> =
            data.filter(|r| r.link == LinkId::One && r.day < plan.len() && plan.treated(r.day));
        let c: Vec<&SessionRecord> =
            data.filter(|r| r.link == LinkId::Two && r.day < plan.len() && !plan.treated(r.day));
        if let Ok(e) = hourly_effect_weekend_adjusted(m, &t, &c, baseline) {
            if e.significant() {
                sw.push(m);
            }
        }
        // Pseudo-event-study.
        let t: Vec<&SessionRecord> = data.filter(|r| r.link == LinkId::One && r.day >= switch_day);
        let c: Vec<&SessionRecord> = data.filter(|r| r.link == LinkId::Two && r.day < switch_day);
        if let Ok(e) = hourly_effect(m, &t, &c, baseline) {
            if e.significant() {
                ev.push(m);
            }
        }
    }
    AaScan {
        switchback_false_positives: sw,
        event_study_false_positives: ev,
    }
}

/// A *real* (non-emulated) switchback experiment on a single link:
/// alternate the allocation by day per `plan`, then compare treated
/// sessions on treated days against control sessions on control days.
pub struct SwitchbackDesign {
    /// Streaming world configuration.
    pub cfg: StreamConfig,
    /// Day-level plan.
    pub plan: SwitchbackPlan,
    /// Allocation on treated days (paper recommends 0.90–0.99).
    pub p_hi: f64,
    /// Allocation on control days.
    pub p_lo: f64,
    /// Seed.
    pub seed: u64,
}

impl SwitchbackDesign {
    /// §5.2: "The allocation size should be large enough to give
    /// statistically significant results, and can be determined by a
    /// power calculation." Under the worst-case assumption that each
    /// interval is one observation, return the number of *days* needed to
    /// detect a relative effect of `effect` with the given power, given
    /// the day-level standard deviation `interval_sd` (both in relative
    /// units, e.g. from an A/A week).
    pub fn required_days(effect: f64, interval_sd: f64, power: f64) -> Result<usize> {
        expstats::power::required_switchback_intervals(effect, interval_sd, power, 0.05)
    }

    /// Run the experiment and estimate the TTE for `metric`.
    pub fn run_and_estimate(&self, metric: Metric) -> Result<(Dataset, EffectEstimate)> {
        let schedule = AllocationSchedule::switchback(self.plan.as_slice(), self.p_hi, self.p_lo);
        let sim = LinkSim::new(self.cfg.clone(), LinkId::One, schedule, self.seed);
        let (records, _) = sim.run();
        let data = Dataset::new(records);
        let treated: Vec<&SessionRecord> =
            data.filter(|r| r.treated && r.day < self.plan.len() && self.plan.treated(r.day));
        let control: Vec<&SessionRecord> =
            data.filter(|r| !r.treated && r.day < self.plan.len() && !self.plan.treated(r.day));
        let baseline = {
            let vals = Dataset::values(&control, metric);
            expstats::mean(&vals)
        };
        let e = hourly_effect_weekend_adjusted(metric, &treated, &control, baseline)?;
        Ok((data, e))
    }
}

/// A plain single-link A/B test at allocation `p` — the design the paper
/// argues is insufficient on its own. Provided so users can compare its
/// answer against the alternatives above on identical worlds.
pub struct AbTestDesign {
    /// Streaming world configuration.
    pub cfg: StreamConfig,
    /// Treatment allocation.
    pub p: f64,
    /// Seed.
    pub seed: u64,
}

impl AbTestDesign {
    /// Run the test and estimate the within-link (naïve) effect for
    /// `metric`, normalized by the control-arm mean.
    pub fn run_and_estimate(&self, metric: Metric) -> Result<(Dataset, EffectEstimate)> {
        let sim = LinkSim::new(
            self.cfg.clone(),
            LinkId::One,
            AllocationSchedule::Constant(self.p),
            self.seed,
        );
        let (records, _) = sim.run();
        let data = Dataset::new(records);
        let treated: Vec<&SessionRecord> = data.filter(|r| r.treated);
        let control: Vec<&SessionRecord> = data.filter(|r| !r.treated);
        let baseline = {
            let vals = Dataset::values(&control, metric);
            expstats::mean(&vals)
        };
        let e = unit_effect(metric, &treated, &control, baseline)?;
        Ok((data, e))
    }
}

/// One stage of a gradual deployment.
#[derive(Debug, Clone)]
pub struct StageEstimate {
    /// Allocation during the stage.
    pub allocation: f64,
    /// Within-stage naïve ATE (session level, relative units).
    pub ate: EffectEstimate,
}

/// A gradual deployment on one link: allocation rises day by day
/// (`stages[d]` on day `d`), instrumented as §5.1 recommends.
pub struct GradualDeployment {
    /// Streaming world configuration (needs `days >= stages.len()`).
    pub cfg: StreamConfig,
    /// Per-day allocations, e.g. `[0.01, 0.05, 0.25, 0.5, 0.75, 1.0]`.
    pub stages: Vec<f64>,
    /// Seed.
    pub seed: u64,
}

impl GradualDeployment {
    /// Run the deployment; estimate the per-stage ATE for `metric` and
    /// assemble an interference report.
    pub fn run_and_diagnose(
        &self,
        metric: Metric,
    ) -> Result<(Vec<StageEstimate>, causal::sutva::InterferenceReport)> {
        let schedule = AllocationSchedule::gradual(&self.stages);
        let sim = LinkSim::new(self.cfg.clone(), LinkId::One, schedule, self.seed);
        let (records, _) = sim.run();
        let data = Dataset::new(records);
        let mut estimates = Vec::new();
        let mut ates = Vec::new();
        let mut allocs = Vec::new();
        for (day, &p) in self.stages.iter().enumerate() {
            if p <= 0.0 || p >= 1.0 {
                continue; // no contrast within this stage
            }
            let t: Vec<&SessionRecord> = data.filter(|r| r.day == day && r.treated);
            let c: Vec<&SessionRecord> = data.filter(|r| r.day == day && !r.treated);
            if t.len() < 2 || c.len() < 2 {
                continue;
            }
            let baseline = {
                let vals = Dataset::values(&c, metric);
                expstats::mean(&vals)
            };
            let ate = unit_effect(metric, &t, &c, baseline)?;
            ates.push(expstats::DiffEstimate {
                estimate: ate.relative,
                se: ate.se,
                ci: ate.ci95,
                dof: ate.n as f64,
            });
            allocs.push(p);
            estimates.push(StageEstimate { allocation: p, ate });
        }
        let report = causal::sutva::InterferenceReport::from_stages(&allocs, &ates, &[], 0.05)?;
        Ok((estimates, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fast, small paired world (3 days, 200 Mb/s) in the default
    /// congestion regime.
    fn fast_cfg(days: usize) -> StreamConfig {
        StreamConfig {
            days,
            capacity_bps: 200e6,
            peak_arrivals_per_s: 0.24 * 0.2,
            ..Default::default()
        }
    }

    #[test]
    fn paired_design_produces_all_four_cells() {
        let design = PairedLinkDesign::paper(fast_cfg(2), 3);
        let out = design.run();
        assert!(out.data.cell(LinkId::One, true).len() > 100);
        assert!(out.data.cell(LinkId::One, false).len() > 5);
        assert!(out.data.cell(LinkId::Two, true).len() > 5);
        assert!(out.data.cell(LinkId::Two, false).len() > 100);
        assert_eq!(out.hourly[0].len(), 48);
    }

    #[test]
    fn capping_shows_interference_signature() {
        // The headline §4 result at small scale: the TTE for throughput
        // is clearly more positive than the naïve estimates, and video
        // bitrate drops by roughly the direct capping amount.
        let design = PairedLinkDesign::paper(fast_cfg(3), 11);
        let out = design.run();
        let tput = paired_link_effects(&out.data, Metric::Throughput).unwrap();
        assert!(
            tput.tte.relative > tput.naive_hi.relative.min(tput.naive_lo.relative),
            "TTE {} vs naive {}/{}",
            tput.tte.relative,
            tput.naive_lo.relative,
            tput.naive_hi.relative
        );
        let bitrate = paired_link_effects(&out.data, Metric::Bitrate).unwrap();
        assert!(
            bitrate.tte.relative < -0.15,
            "bitrate TTE {}",
            bitrate.tte.relative
        );
        // Min RTT improves (negative) under global capping.
        let rtt = paired_link_effects(&out.data, Metric::MinRtt).unwrap();
        assert!(rtt.tte.relative < 0.05, "min RTT TTE {}", rtt.tte.relative);
    }

    #[test]
    fn switchback_emulation_close_to_tte() {
        let design = PairedLinkDesign::paper(fast_cfg(4), 5);
        let out = design.run();
        let tte = paired_link_effects(&out.data, Metric::Bitrate).unwrap().tte;
        let plan = SwitchbackPlan::alternating(4, true);
        let sw = switchback_emulation(&out.data, &plan, Metric::Bitrate).unwrap();
        // Both should see the large direct capping effect.
        assert!(
            (sw.relative - tte.relative).abs() < 0.15,
            "switchback {} vs tte {}",
            sw.relative,
            tte.relative
        );
    }

    #[test]
    fn burn_in_excludes_boundary_hours_but_agrees_on_strong_effects() {
        let design = PairedLinkDesign::paper(fast_cfg(4), 5);
        let out = design.run();
        let plan = SwitchbackPlan::alternating(4, true);
        let plain = switchback_emulation(&out.data, &plan, Metric::Bitrate).unwrap();
        let burned =
            switchback_emulation_with_burn_in(&out.data, &plan, Metric::Bitrate, 3).unwrap();
        // Fewer cells used, same conclusion.
        assert!(burned.n <= plain.n);
        assert!((burned.relative - plain.relative).abs() < 0.1);
        assert!(burned.relative < -0.15);
    }

    #[test]
    fn event_study_emulation_runs() {
        let design = PairedLinkDesign::paper(fast_cfg(4), 7);
        let out = design.run();
        let ev = event_study_emulation(&out.data, 2, Metric::Bitrate).unwrap();
        assert!(
            ev.relative < -0.1,
            "event study misses capping? {}",
            ev.relative
        );
    }

    #[test]
    fn aa_scan_on_null_data_mostly_clean_switchback() {
        // No treatment anywhere: the switchback labeling should produce
        // (almost) no significant effects.
        let paired = PairedSim::with_paper_biases(
            fast_cfg(4),
            [AllocationSchedule::none(), AllocationSchedule::none()],
            13,
        );
        let run = paired.run();
        let data = Dataset::new(run.sessions);
        let plan = SwitchbackPlan::alternating(4, true);
        let metrics = [Metric::Throughput, Metric::Bitrate, Metric::PlayDelay];
        let scan = aa_scan(&data, &plan, 2, &metrics);
        assert!(
            scan.switchback_false_positives.len() <= 1,
            "switchback FPs: {:?}",
            scan.switchback_false_positives
        );
    }

    #[test]
    fn real_switchback_detects_capping() {
        let design = SwitchbackDesign {
            cfg: fast_cfg(4),
            plan: SwitchbackPlan::alternating(4, true),
            p_hi: 0.95,
            p_lo: 0.05,
            seed: 17,
        };
        let (_, est) = design.run_and_estimate(Metric::Bitrate).unwrap();
        assert!(
            est.relative < -0.15,
            "switchback bitrate effect {}",
            est.relative
        );
    }

    #[test]
    fn plain_ab_test_misses_what_switchback_sees() {
        // The paper's core claim, on identical worlds: a plain A/B test
        // at 5% reports a much smaller throughput change than a
        // switchback's TTE estimate.
        let ab = AbTestDesign {
            cfg: fast_cfg(2),
            p: 0.05,
            seed: 23,
        };
        let (_, naive) = ab.run_and_estimate(Metric::Throughput).unwrap();
        let sb = SwitchbackDesign {
            cfg: fast_cfg(4),
            plan: SwitchbackPlan::alternating(4, true),
            p_hi: 0.95,
            p_lo: 0.05,
            seed: 23,
        };
        let (_, tte) = sb.run_and_estimate(Metric::Throughput).unwrap();
        assert!(
            tte.relative > naive.relative + 0.05,
            "switchback TTE {:+.3} should exceed naive A/B {:+.3}",
            tte.relative,
            naive.relative
        );
    }

    #[test]
    fn switchback_power_calculation() {
        // A 10% effect with 5% day-level noise needs few days; a 1%
        // effect with the same noise needs many more.
        let easy = SwitchbackDesign::required_days(0.10, 0.05, 0.8).unwrap();
        let hard = SwitchbackDesign::required_days(0.01, 0.05, 0.8).unwrap();
        assert!(easy <= 10, "easy {easy}");
        assert!(hard > 10 * easy, "hard {hard}");
    }

    #[test]
    fn gradual_deployment_reports_stages() {
        let mut cfg = fast_cfg(5);
        cfg.days = 5;
        let dep = GradualDeployment {
            cfg,
            stages: vec![0.05, 0.25, 0.5, 0.75, 0.95],
            seed: 19,
        };
        let (stages, _report) = dep.run_and_diagnose(Metric::Bitrate).unwrap();
        assert!(stages.len() >= 3, "stages {}", stages.len());
        // Every stage sees the direct capping effect on bitrate.
        for s in &stages {
            assert!(
                s.ate.relative < -0.05,
                "stage {} ate {}",
                s.allocation,
                s.ate.relative
            );
        }
    }
}
