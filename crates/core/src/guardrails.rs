//! Data-quality guardrails: turn a fleet summary's telemetry ledger into
//! explicit flags on the estimates computed from it.
//!
//! The failure mode this defends against is *silent* degradation: a
//! sweep that lost links, or a record stream thinned by
//! congestion-correlated drop, still produces perfectly plausible-looking
//! point estimates — they're just computed on a selected sample. Each
//! check here is cheap (it reads only the per-link
//! [`TelemetryStats`](streamsim::telemetry::TelemetryStats) and the
//! [`DegradedReport`](crate::fleet::DegradedReport), never the records)
//! and produces a [`QualityFlag`] that rides on
//! [`EffectEstimate`](crate::EffectEstimate) / [`FleetEffect`](crate::FleetEffect)
//! and lands in the figure harness's warnings section:
//!
//! * **sample-ratio mismatch** — a chi-square test of delivered arm
//!   counts against the allocated treated share, per link (see
//!   [`expstats::quality`]); fires when loss is treatment-correlated;
//! * **missingness differential** — the per-arm loss fractions
//!   themselves, flagged when the arms diverge (MCAR loss thins both
//!   arms equally; MNAR loss doesn't);
//! * **duplication differential** — same comparison for duplicate-copy
//!   rates;
//! * **degraded fleet** — any quarantined links at all.

use expstats::quality::{sample_ratio_mismatch, SrmCell, SrmTest};

use crate::fleet::FleetSummary;

/// SRM p-value below which [`QualityFlag::SampleRatioMismatch`] is
/// raised. Stringent by convention: the test should never fire on
/// healthy data, so even weak evidence means the pipeline is suspect.
pub const SRM_P_THRESHOLD: f64 = 1e-3;

/// Absolute per-arm differential (in loss or duplication fraction)
/// above which the corresponding flag is raised: half a percent of one
/// arm's records going missing *more than the other's* is already
/// enough to move tail metrics.
pub const DIFFERENTIAL_THRESHOLD: f64 = 0.005;

/// One data-quality problem detected on the pipeline feeding an
/// estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum QualityFlag {
    /// Delivered arm counts are inconsistent with the allocation.
    SampleRatioMismatch {
        /// Upper-tail p-value of the chi-square SRM test.
        p_value: f64,
        /// Pooled delivered treated share.
        observed_share: f64,
        /// Pooled allocated treated share.
        expected_share: f64,
    },
    /// The arms lost records at different rates.
    MissingnessDifferential {
        /// Control-arm loss fraction.
        control: f64,
        /// Treated-arm loss fraction.
        treated: f64,
    },
    /// The arms were duplicated at different rates.
    DuplicationDifferential {
        /// Control-arm duplicate fraction.
        control: f64,
        /// Treated-arm duplicate fraction.
        treated: f64,
    },
    /// The sweep quarantined links; estimates describe the survivors.
    DegradedFleet {
        /// Links lost.
        quarantined: usize,
        /// Links the fleet started with.
        total: usize,
    },
}

impl std::fmt::Display for QualityFlag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QualityFlag::SampleRatioMismatch {
                p_value,
                observed_share,
                expected_share,
            } => write!(
                f,
                "sample-ratio mismatch (p={p_value:.2e}): delivered treated share {:.2}% vs allocated {:.2}%",
                100.0 * observed_share,
                100.0 * expected_share
            ),
            QualityFlag::MissingnessDifferential { control, treated } => write!(
                f,
                "arm-differential missingness: control loses {:.2}%, treated {:.2}%",
                100.0 * control,
                100.0 * treated
            ),
            QualityFlag::DuplicationDifferential { control, treated } => write!(
                f,
                "arm-differential duplication: control {:.2}%, treated {:.2}%",
                100.0 * control,
                100.0 * treated
            ),
            QualityFlag::DegradedFleet { quarantined, total } => write!(
                f,
                "degraded fleet: {quarantined}/{total} links quarantined; estimates cover survivors only"
            ),
        }
    }
}

/// Data-quality assessment of one fleet summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DataQuality {
    /// The per-link SRM test, when at least one link had a
    /// non-degenerate allocation (user-level designs qualify; a pure
    /// 0/1 cluster rollout has no within-link ratio to test).
    pub srm: Option<SrmTest>,
    /// Fleet-wide per-arm loss fraction `[control, treated]`.
    pub missingness: [f64; 2],
    /// Fleet-wide per-arm duplicate fraction `[control, treated]`.
    pub duplication: [f64; 2],
    /// Overall fraction of sent records never delivered.
    pub loss_fraction: f64,
    /// Links quarantined by the sweep.
    pub quarantined: usize,
    /// Flags raised by the thresholds above, in a fixed order (SRM,
    /// missingness, duplication, degraded).
    pub flags: Vec<QualityFlag>,
}

impl DataQuality {
    /// Whether any guardrail fired.
    pub fn is_compromised(&self) -> bool {
        !self.flags.is_empty()
    }
}

/// Assess a fleet summary's data quality from its telemetry ledger and
/// degraded report.
///
/// The SRM test uses one cell per surviving link: delivered arm counts
/// against the link's *expected allocation* (mean scheduled treated
/// share over the run). Summing per-link 1-df terms keeps the test
/// valid under cluster designs where different links run different
/// allocations; when every link shares one allocation (a fleet-wide
/// user-level design) the cells are pooled into a single 1-df test,
/// which is the same null but far more powerful against the common
/// alternative of a fleet-wide skew.
pub fn assess_fleet_quality(summary: &FleetSummary) -> DataQuality {
    let mut cells: Vec<SrmCell> = summary
        .links
        .iter()
        .map(|l| SrmCell {
            control: l.telemetry.delivered[0],
            treated: l.telemetry.delivered[1],
            expected_treated_share: l.expected_allocation,
        })
        .collect();
    let homogeneous = cells
        .windows(2)
        .all(|w| w[0].expected_treated_share == w[1].expected_treated_share);
    if homogeneous && cells.len() > 1 {
        cells = vec![SrmCell {
            control: cells.iter().map(|c| c.control).sum(),
            treated: cells.iter().map(|c| c.treated).sum(),
            expected_treated_share: cells[0].expected_treated_share,
        }];
    }
    let srm = sample_ratio_mismatch(&cells).ok();
    let t = &summary.telemetry;
    let missingness = [t.missing_fraction(0), t.missing_fraction(1)];
    let duplication = [t.duplicate_fraction(0), t.duplicate_fraction(1)];
    let quarantined = summary.degraded.len();
    let total = summary.links.len() + quarantined;

    let mut flags = Vec::new();
    if let Some(srm) = &srm {
        if srm.fires(SRM_P_THRESHOLD) {
            flags.push(QualityFlag::SampleRatioMismatch {
                p_value: srm.p_value,
                observed_share: srm.observed_treated_share,
                expected_share: srm.expected_treated_share,
            });
        }
    }
    if (missingness[0] - missingness[1]).abs() > DIFFERENTIAL_THRESHOLD {
        flags.push(QualityFlag::MissingnessDifferential {
            control: missingness[0],
            treated: missingness[1],
        });
    }
    if (duplication[0] - duplication[1]).abs() > DIFFERENTIAL_THRESHOLD {
        flags.push(QualityFlag::DuplicationDifferential {
            control: duplication[0],
            treated: duplication[1],
        });
    }
    if quarantined > 0 {
        flags.push(QualityFlag::DegradedFleet { quarantined, total });
    }
    DataQuality {
        srm,
        missingness,
        duplication,
        loss_fraction: t.loss_fraction(),
        quarantined,
        flags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetLinkSummary, FleetSummary, DEFAULT_SKETCH_CAP};
    use streamsim::config::StreamConfig;
    use streamsim::fleet::{run_fleet_link, FleetDesign, FleetSim, LinkPopulation};
    use streamsim::telemetry::TelemetryFaults;

    fn small_base() -> StreamConfig {
        StreamConfig {
            days: 1,
            capacity_bps: 30e6,
            peak_arrivals_per_s: 0.24 * 0.03,
            mean_watch_s: 1500.0,
            ..Default::default()
        }
    }

    fn summarize(faults: Option<&TelemetryFaults>, n_links: usize) -> FleetSummary {
        summarize_base(small_base(), faults, n_links)
    }

    fn summarize_base(
        base: StreamConfig,
        faults: Option<&TelemetryFaults>,
        n_links: usize,
    ) -> FleetSummary {
        let specs = LinkPopulation::moderate(base.clone(), n_links, 7).sample();
        let mut sim = FleetSim::new(&base, &specs, &FleetDesign::UserLevel { p: 0.5 }, 3);
        if let Some(f) = faults {
            sim = sim.with_faults(f);
        }
        let (jobs, pairs) = sim.into_parts();
        let mut summary = FleetSummary::new(DEFAULT_SKETCH_CAP);
        for job in &jobs {
            summary.fold(FleetLinkSummary::from_run(
                &run_fleet_link(job),
                DEFAULT_SKETCH_CAP,
            ));
        }
        summary.finalize(pairs);
        summary
    }

    #[test]
    fn clean_fleet_raises_no_flags() {
        let q = assess_fleet_quality(&summarize(None, 4));
        assert!(!q.is_compromised(), "flags: {:?}", q.flags);
        assert_eq!(q.loss_fraction, 0.0);
        assert_eq!(q.missingness, [0.0, 0.0]);
        let srm = q.srm.expect("user-level design has testable cells");
        assert!(!srm.fires(SRM_P_THRESHOLD), "p = {}", srm.p_value);
    }

    #[test]
    fn mcar_loss_thins_without_flags() {
        // Arm-blind loss: big loss fraction, but no differential and no
        // SRM — exactly the "widens CIs but doesn't bias" regime.
        let faults = TelemetryFaults {
            drop_mcar: 0.2,
            ..TelemetryFaults::none(5)
        };
        let q = assess_fleet_quality(&summarize(Some(&faults), 4));
        assert!(q.loss_fraction > 0.15);
        assert!(
            !q.flags
                .iter()
                .any(|f| matches!(f, QualityFlag::SampleRatioMismatch { .. })),
            "MCAR must not trip SRM: {:?}",
            q.flags
        );
    }

    #[test]
    fn congestion_correlated_loss_fires_srm() {
        // Heavy MNAR drop on an *uncongested* user-level fleet: control
        // sessions stream fast (severity ≈ 0) while capped treated
        // sessions sit below the slow-throughput threshold, so their
        // records are preferentially lost and the arm ratio skews. (On a
        // congested link both arms rebuffer and the differential washes
        // out — the bias mechanism is the treatment-coupled loss, not
        // congestion per se.)
        let base = StreamConfig {
            capacity_bps: 200e6,
            ..small_base()
        };
        let faults = TelemetryFaults {
            drop_congested: 0.9,
            ..TelemetryFaults::none(5)
        };
        let q = assess_fleet_quality(&summarize_base(base, Some(&faults), 6));
        assert!(q.loss_fraction > 0.02, "loss {}", q.loss_fraction);
        let srm = q.srm.expect("testable");
        assert!(
            srm.fires(SRM_P_THRESHOLD),
            "chi2 {} df {} p {} (loss c {:.3} t {:.3})",
            srm.chi2,
            srm.df,
            srm.p_value,
            q.missingness[0],
            q.missingness[1]
        );
        assert!(q
            .flags
            .iter()
            .any(|f| matches!(f, QualityFlag::SampleRatioMismatch { .. })));
        assert!(q
            .flags
            .iter()
            .any(|f| matches!(f, QualityFlag::MissingnessDifferential { .. })));
    }

    #[test]
    fn quarantine_raises_degraded_flag() {
        let mut summary = summarize(None, 4);
        summary.fold_quarantined(99, "boom".into());
        summary.finalize(Vec::new());
        let q = assess_fleet_quality(&summary);
        assert_eq!(q.quarantined, 1);
        assert!(q.flags.iter().any(|f| matches!(
            f,
            QualityFlag::DegradedFleet {
                quarantined: 1,
                total: 5
            }
        )));
    }

    #[test]
    fn flags_render_human_readable() {
        let f = QualityFlag::SampleRatioMismatch {
            p_value: 1.3e-7,
            observed_share: 0.4812,
            expected_share: 0.5,
        };
        let s = format!("{f}");
        assert!(s.contains("sample-ratio mismatch"), "{s}");
        assert!(s.contains("48.12%"), "{s}");
        let d = format!(
            "{}",
            QualityFlag::DegradedFleet {
                quarantined: 3,
                total: 200
            }
        );
        assert!(d.contains("3/200"), "{d}");
    }
}
