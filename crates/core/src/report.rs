//! Rendering of experiment results as the paper's tables and figures.

use crate::analysis::EffectEstimate;
use crate::designs::MetricEffects;
use expstats::table::{pct, pct_ci, Table};

/// Render a set of Figure-5 rows (one per metric).
pub fn render_effects_table(rows: &[MetricEffects]) -> String {
    let mut t = Table::new(vec![
        "metric",
        "naive 5% A/B",
        "naive 95% A/B",
        "TTE",
        "spillover",
        "sign flip",
    ]);
    for r in rows {
        t.row(vec![
            r.metric.name().to_string(),
            format!("{} {}", pct(r.naive_lo.relative), pct_ci(r.naive_lo.ci95)),
            format!("{} {}", pct(r.naive_hi.relative), pct_ci(r.naive_hi.ci95)),
            format!("{} {}", pct(r.tte.relative), pct_ci(r.tte.ci95)),
            format!("{} {}", pct(r.spillover.relative), pct_ci(r.spillover.ci95)),
            if r.sign_flip() {
                "YES".to_string()
            } else {
                String::new()
            },
        ]);
    }
    t.render()
}

/// Render a design-comparison table (Figure 10): TTE per metric under
/// several designs.
pub fn render_design_comparison(
    metric_names: &[&str],
    design_names: &[&str],
    estimates: &[Vec<EffectEstimate>],
) -> String {
    let mut header = vec!["metric".to_string()];
    header.extend(design_names.iter().map(|s| s.to_string()));
    let mut t = Table::new(header);
    for (i, name) in metric_names.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for design in estimates {
            let e = &design[i];
            row.push(format!("{} {}", pct(e.relative), pct_ci(e.ci95)));
        }
        t.row(row);
    }
    t.render()
}

/// Render an hourly time series (Figures 6/11/12) as aligned columns of
/// normalized values per link/arm.
pub fn render_time_series(label: &str, series: &[(String, Vec<f64>)]) -> String {
    let mut out = format!("{label}\n");
    let mut header = vec!["hour".to_string()];
    header.extend(series.iter().map(|(name, _)| name.clone()));
    let mut t = Table::new(header);
    let len = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for h in 0..len {
        let mut row = vec![format!("{h}")];
        for (_, vals) in series {
            row.push(vals.get(h).map(|v| format!("{v:.3}")).unwrap_or_default());
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim::session::Metric;

    fn est(rel: f64) -> EffectEstimate {
        EffectEstimate {
            metric: Metric::Throughput,
            absolute: rel * 100.0,
            relative: rel,
            ci95: (rel - 0.02, rel + 0.02),
            se: 0.01,
            n: 100,
            weekend_adjusted: false,
            quality: Vec::new(),
        }
    }

    #[test]
    fn effects_table_marks_sign_flips() {
        let row = MetricEffects {
            metric: Metric::Throughput,
            naive_lo: est(-0.05),
            naive_hi: est(-0.05),
            tte: est(0.12),
            spillover: est(0.16),
        };
        let s = render_effects_table(&[row]);
        assert!(s.contains("avg throughput"));
        assert!(s.contains("YES"));
        assert!(s.contains("+12.0%"));
    }

    #[test]
    fn design_comparison_renders_grid() {
        let s = render_design_comparison(
            &["throughput"],
            &["paired", "switchback"],
            &[vec![est(0.12)], vec![est(0.10)]],
        );
        assert!(s.contains("paired"));
        assert!(s.contains("+10.0%"));
    }

    #[test]
    fn time_series_renders_rows() {
        let s = render_time_series(
            "Figure 6",
            &[
                ("link1".into(), vec![0.5, 1.0]),
                ("link2".into(), vec![0.6, 0.9]),
            ],
        );
        assert!(s.contains("Figure 6"));
        assert!(s.lines().count() >= 4);
    }
}
