//! The Appendix-B analysis pipeline.
//!
//! Two estimators, exactly as the paper uses them:
//!
//! * **Unit-level** ([`unit_effect`]): Welch difference in means over
//!   sessions — "the standard account-level standard errors" used for
//!   naïve A/B estimates within a link.
//! * **Hourly-regression** ([`hourly_effect`]): outcomes aggregated to
//!   `Z_t(A)` per (day, hour, arm); OLS of `Z` on a treatment indicator
//!   plus hour-of-day fixed effects; Newey–West lag-2 standard errors.
//!   This deliberately worst-case treatment of within-hour correlation is
//!   what the paper uses for TTE and spillover in the paired design.

use expstats::dist::t_critical;
use expstats::ols::{DesignBuilder, Ols};
use expstats::{diff_in_means, CovEstimator, Result, StatsError};
use streamsim::session::{Metric, SessionRecord};

/// Newey–West lag used throughout (the paper: "a lag of two hours").
pub const NEWEY_WEST_LAG: usize = 2;

/// An effect estimate normalized to the global control mean.
#[derive(Debug, Clone)]
pub struct EffectEstimate {
    /// Metric the effect concerns.
    pub metric: Metric,
    /// Absolute effect (metric units).
    pub absolute: f64,
    /// Effect relative to the global control mean.
    pub relative: f64,
    /// 95% confidence interval for the relative effect.
    pub ci95: (f64, f64),
    /// Standard error (relative units).
    pub se: f64,
    /// Observations (sessions or hourly cells) used.
    pub n: usize,
    /// Whether a weekend fixed effect was actually included in the
    /// regression. [`hourly_effect_weekend_adjusted`] silently drops the
    /// dummy when it is degenerate or collinear with the arm (treated
    /// days ≡ weekend days) — this flag lets callers tell an adjusted
    /// estimate from a fallback to the plain contrast.
    pub weekend_adjusted: bool,
    /// Data-quality flags raised by the guardrails on the telemetry that
    /// fed this estimate (see [`crate::guardrails`]). Empty for clean
    /// pipelines; attached via [`EffectEstimate::with_quality`].
    pub quality: Vec<crate::guardrails::QualityFlag>,
}

impl EffectEstimate {
    /// Whether the CI excludes zero.
    pub fn significant(&self) -> bool {
        self.ci95.0 > 0.0 || self.ci95.1 < 0.0
    }

    /// Attach data-quality flags (builder-style).
    pub fn with_quality(mut self, flags: Vec<crate::guardrails::QualityFlag>) -> Self {
        self.quality = flags;
        self
    }

    /// Whether any data-quality guardrail fired on this estimate.
    pub fn flagged(&self) -> bool {
        !self.quality.is_empty()
    }
}

/// Unit-level (session-level) difference in means, normalized by
/// `baseline` (the global control mean).
pub fn unit_effect(
    metric: Metric,
    treated: &[&SessionRecord],
    control: &[&SessionRecord],
    baseline: f64,
) -> Result<EffectEstimate> {
    let t = crate::dataset::Dataset::values(treated, metric);
    let c = crate::dataset::Dataset::values(control, metric);
    let d = diff_in_means(&t, &c, 0.95)?;
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "unit_effect: bad baseline",
        });
    }
    let r = d.scaled(1.0 / baseline);
    Ok(EffectEstimate {
        metric,
        absolute: d.estimate,
        relative: r.estimate,
        ci95: r.ci,
        se: r.se,
        n: t.len() + c.len(),
        weekend_adjusted: false,
        quality: Vec::new(),
    })
}

/// Hourly-regression effect (Appendix B): aggregate each arm's sessions
/// to per-(day, hour) means, regress on the arm indicator with
/// hour-of-day fixed effects, and report the treatment coefficient with
/// Newey–West lag-2 standard errors, normalized by `baseline`.
pub fn hourly_effect(
    metric: Metric,
    treated: &[&SessionRecord],
    control: &[&SessionRecord],
    baseline: f64,
) -> Result<EffectEstimate> {
    hourly_effect_impl(metric, treated, control, baseline, false)
}

/// [`hourly_effect`] with a weekend fixed effect added to the
/// regression.
///
/// Comparisons whose arms live on *different days* (switchbacks and
/// their A/A calibrations) confound the treatment with day-of-week
/// demand shifts — e.g. an alternating plan over the paper's Wed→Sat
/// run puts the boosted-demand Saturday entirely in one arm. The
/// weekend dummy differences that shift out. Falls back to the plain
/// regression when the dummy is degenerate (all cells on the same kind
/// of day) or collinear with the arm (treated days ≡ weekend days).
pub fn hourly_effect_weekend_adjusted(
    metric: Metric,
    treated: &[&SessionRecord],
    control: &[&SessionRecord],
    baseline: f64,
) -> Result<EffectEstimate> {
    hourly_effect_impl(metric, treated, control, baseline, true)
}

fn hourly_effect_impl(
    metric: Metric,
    treated: &[&SessionRecord],
    control: &[&SessionRecord],
    baseline: f64,
    weekend_fe: bool,
) -> Result<EffectEstimate> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "hourly_effect: bad baseline",
        });
    }
    let cells_t = crate::dataset::Dataset::hourly_cells(treated, metric);
    let cells_c = crate::dataset::Dataset::hourly_cells(control, metric);
    if cells_t.len() < 3 || cells_c.len() < 3 {
        return Err(StatsError::TooFewObservations {
            got: cells_t.len().min(cells_c.len()),
            need: 3,
        });
    }

    // Interleave both arms in time order so the HAC window spans
    // neighbouring hours. Row: (day, hour, arm, weekend, z).
    let mut rows: Vec<(usize, usize, f64, f64, f64)> = Vec::new();
    for c in &cells_t {
        rows.push((c.day, c.hour, 1.0, c.weekend as u8 as f64, c.mean));
    }
    for c in &cells_c {
        rows.push((c.day, c.hour, 0.0, c.weekend as u8 as f64, c.mean));
    }
    rows.sort_by_key(|&(d, h, a, _, _)| (d, h, a as i64));

    let n = rows.len();
    let y: Vec<f64> = rows.iter().map(|r| r.4).collect();
    let arm: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let hours: Vec<usize> = rows.iter().map(|r| r.1).collect();
    let weekend: Vec<f64> = rows.iter().map(|r| r.3).collect();
    // The dummy only identifies when both kinds of day are present and
    // it is not an exact (anti-)copy of the arm indicator (treated days
    // ≡ weekend days) — checked explicitly, rather than trusting the
    // Cholesky pivot to detect the singular Gram matrix exactly in
    // floating point.
    let varies = weekend.iter().any(|&w| w != weekend[0]);
    let copies_arm = weekend.iter().zip(&arm).all(|(&w, &a)| w == a)
        || weekend.iter().zip(&arm).all(|(&w, &a)| w == 1.0 - a);
    let use_weekend = weekend_fe && varies && !copies_arm;

    let design = |with_weekend: bool| -> Result<_> {
        let mut b = DesignBuilder::new().intercept(n)?.column("treated", &arm)?;
        if with_weekend {
            b = b.column("weekend", &weekend)?;
        }
        b.dummies("hour", &hours)?.build()
    };
    let (fit, weekend_adjusted) = match Ols::fit(design(use_weekend)?, &y) {
        Ok(fit) => (fit, use_weekend),
        // Treated days ≡ weekend days makes the dummy collinear with the
        // arm; the adjustment is impossible, report the plain contrast
        // (and record that via `weekend_adjusted: false`).
        Err(StatsError::RankDeficient) if use_weekend => (Ols::fit(design(false)?, &y)?, false),
        Err(e) => return Err(e),
    };
    let est = fit.coef[1];
    let se = fit.std_errors(CovEstimator::NeweyWest {
        lag: NEWEY_WEST_LAG,
    })?[1];
    let tcrit = t_critical(0.95, fit.dof());
    Ok(EffectEstimate {
        metric,
        absolute: est,
        relative: est / baseline,
        ci95: ((est - tcrit * se) / baseline, (est + tcrit * se) / baseline),
        se: se / baseline.abs(),
        n,
        weekend_adjusted,
        quality: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim::session::LinkId;

    fn rec(treated: bool, day: usize, hour: usize, tput: f64) -> SessionRecord {
        SessionRecord {
            link: LinkId::One,
            day,
            hour,
            weekend: false,
            arrival_s: (day * 86_400 + hour * 3600) as f64,
            treated,
            throughput_bps: tput,
            min_rtt_s: 0.02,
            play_delay_s: 1.0,
            bitrate_bps: 3e6,
            quality: 70.0,
            rebuffer_count: 0,
            rebuffered: false,
            cancelled: false,
            bytes: 1e8,
            retx_bytes: 1e5,
            switches: 1,
            duration_s: 100.0,
        }
    }

    /// Build sessions with hour-of-day structure plus a constant
    /// treatment lift.
    fn structured(lift: f64) -> (Vec<SessionRecord>, Vec<SessionRecord>) {
        let mut t = Vec::new();
        let mut c = Vec::new();
        for day in 0..5 {
            for hour in 0..24 {
                // Strong diurnal cycle common to both arms.
                let base = 100.0 + 30.0 * ((hour as f64) * 0.26).sin();
                for k in 0..3 {
                    let jitter = (day * 7 + hour + k) % 5;
                    let noise = jitter as f64 * 0.5 - 1.0;
                    c.push(rec(false, day, hour, base + noise));
                    t.push(rec(true, day, hour, base + lift + noise));
                }
            }
        }
        (t, c)
    }

    #[test]
    fn hourly_effect_recovers_constant_lift() {
        let (t, c) = structured(10.0);
        let tr: Vec<&SessionRecord> = t.iter().collect();
        let cr: Vec<&SessionRecord> = c.iter().collect();
        let e = hourly_effect(Metric::Throughput, &tr, &cr, 100.0).unwrap();
        assert!((e.absolute - 10.0).abs() < 0.5, "abs {}", e.absolute);
        assert!((e.relative - 0.10).abs() < 0.005, "rel {}", e.relative);
        assert!(e.significant());
    }

    #[test]
    fn hourly_effect_null_is_insignificant() {
        let (t, c) = structured(0.0);
        let tr: Vec<&SessionRecord> = t.iter().collect();
        let cr: Vec<&SessionRecord> = c.iter().collect();
        let e = hourly_effect(Metric::Throughput, &tr, &cr, 100.0).unwrap();
        assert!(e.relative.abs() < 0.02, "rel {}", e.relative);
        assert!(!e.significant(), "{:?}", e.ci95);
    }

    #[test]
    fn fixed_effects_absorb_diurnal_cycle() {
        // Treated sessions concentrated in *good* hours must not inflate
        // the estimate once hour fixed effects are in (they would in a
        // raw difference of means).
        let mut t = Vec::new();
        let mut c = Vec::new();
        for day in 0..5 {
            for hour in 0..24 {
                let base = if (8..16).contains(&hour) {
                    200.0
                } else {
                    100.0
                };
                let nt = if (8..16).contains(&hour) { 4 } else { 1 };
                for k in 0..4 {
                    c.push(rec(false, day, hour, base + k as f64));
                }
                for k in 0..nt {
                    t.push(rec(true, day, hour, base + 5.0 + k as f64));
                }
            }
        }
        let tr: Vec<&SessionRecord> = t.iter().collect();
        let cr: Vec<&SessionRecord> = c.iter().collect();
        let e = hourly_effect(Metric::Throughput, &tr, &cr, 100.0).unwrap();
        // True lift is 5 (plus small composition noise), not ~60.
        assert!(
            (e.absolute - 5.0).abs() < 2.0,
            "hour FE should absorb diurnal composition: {}",
            e.absolute
        );
    }

    #[test]
    fn unit_effect_matches_simple_difference() {
        let t: Vec<SessionRecord> = (0..50)
            .map(|i| rec(true, 0, 0, 110.0 + (i % 3) as f64))
            .collect();
        let c: Vec<SessionRecord> = (0..50)
            .map(|i| rec(false, 0, 0, 100.0 + (i % 3) as f64))
            .collect();
        let tr: Vec<&SessionRecord> = t.iter().collect();
        let cr: Vec<&SessionRecord> = c.iter().collect();
        let e = unit_effect(Metric::Throughput, &tr, &cr, 100.0).unwrap();
        assert!((e.relative - 0.10).abs() < 1e-9);
        assert!(e.significant());
    }

    #[test]
    fn hourly_ci_wider_when_session_noise_dominates() {
        // Figure 13's point: aggregating to hours throws away the session
        // sample size, so when independent session noise dominates (no
        // common hourly shocks), the hourly-regression CI is much wider
        // than the session-level CI.
        let mut t = Vec::new();
        let mut c = Vec::new();
        let mut state = 12345u64;
        let mut noise = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64 / 100.0 - 5.0 // ±5
        };
        for day in 0..5 {
            for hour in 0..24 {
                for _ in 0..30 {
                    c.push(rec(false, day, hour, 100.0 + noise()));
                    t.push(rec(true, day, hour, 102.0 + noise()));
                }
            }
        }
        let tr: Vec<&SessionRecord> = t.iter().collect();
        let cr: Vec<&SessionRecord> = c.iter().collect();
        let hourly = hourly_effect(Metric::Throughput, &tr, &cr, 100.0).unwrap();
        let unit = unit_effect(Metric::Throughput, &tr, &cr, 100.0).unwrap();
        let w_h = hourly.ci95.1 - hourly.ci95.0;
        let w_u = unit.ci95.1 - unit.ci95.0;
        assert!(w_h > w_u, "hourly {w_h} should exceed unit {w_u}");
        // Both still cover the truth (+2%).
        assert!(hourly.ci95.0 <= 0.02 && 0.02 <= hourly.ci95.1);
        assert!(unit.ci95.0 <= 0.02 && 0.02 <= unit.ci95.1);
    }

    /// Sessions with hour structure where treated/control cells can be
    /// placed on arbitrary (day, weekend) combinations.
    fn rec_weekend(
        treated: bool,
        day: usize,
        hour: usize,
        weekend: bool,
        tput: f64,
    ) -> SessionRecord {
        SessionRecord {
            weekend,
            ..rec(treated, day, hour, tput)
        }
    }

    #[test]
    fn weekend_adjusted_flag_reports_what_the_regression_did() {
        // Both arms observed on both kinds of day: the dummy identifies
        // and the flag is set.
        let mut t = Vec::new();
        let mut c = Vec::new();
        for day in 0..4 {
            let weekend = day >= 2;
            let boost = if weekend { 20.0 } else { 0.0 };
            for hour in 0..24 {
                for k in 0..2 {
                    let noise = ((day + hour + k) % 3) as f64;
                    c.push(rec_weekend(
                        false,
                        day,
                        hour,
                        weekend,
                        100.0 + boost + noise,
                    ));
                    t.push(rec_weekend(true, day, hour, weekend, 110.0 + boost + noise));
                }
            }
        }
        let tr: Vec<&SessionRecord> = t.iter().collect();
        let cr: Vec<&SessionRecord> = c.iter().collect();
        let e = hourly_effect_weekend_adjusted(Metric::Throughput, &tr, &cr, 100.0).unwrap();
        assert!(e.weekend_adjusted, "dummy should be included");
        assert!((e.absolute - 10.0).abs() < 1.0, "abs {}", e.absolute);

        // Treated days ≡ weekend days: the dummy copies the arm, the
        // adjustment must fall back and say so.
        let mut t = Vec::new();
        let mut c = Vec::new();
        for day in 0..4 {
            let weekend = day >= 2;
            for hour in 0..24 {
                for k in 0..2 {
                    let noise = ((day + hour + k) % 3) as f64;
                    if weekend {
                        t.push(rec_weekend(true, day, hour, true, 110.0 + noise));
                    } else {
                        c.push(rec_weekend(false, day, hour, false, 100.0 + noise));
                    }
                }
            }
        }
        let tr: Vec<&SessionRecord> = t.iter().collect();
        let cr: Vec<&SessionRecord> = c.iter().collect();
        let e = hourly_effect_weekend_adjusted(Metric::Throughput, &tr, &cr, 100.0).unwrap();
        assert!(!e.weekend_adjusted, "collinear dummy must be dropped");

        // The plain hourly regression never claims adjustment.
        let (t, c) = structured(5.0);
        let tr: Vec<&SessionRecord> = t.iter().collect();
        let cr: Vec<&SessionRecord> = c.iter().collect();
        let e = hourly_effect(Metric::Throughput, &tr, &cr, 100.0).unwrap();
        assert!(!e.weekend_adjusted);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (t, c) = structured(1.0);
        let tr: Vec<&SessionRecord> = t.iter().collect();
        let cr: Vec<&SessionRecord> = c.iter().collect();
        assert!(hourly_effect(Metric::Throughput, &tr, &cr, 0.0).is_err());
        assert!(hourly_effect(Metric::Throughput, &tr[..1], &cr, 1.0).is_err());
    }
}
