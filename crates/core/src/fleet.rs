//! Fleet-level analysis: effect estimators over a
//! [`streamsim::fleet::FleetRun`].
//!
//! The single-pair analyses in [`crate::analysis`] assume the two-link
//! world of §4; this module generalizes them to a fleet of N links and
//! wires in the clustering machinery the fleet designs need:
//!
//! * [`user_level_effect`] — the pooled session-level contrast every
//!   naïve A/B test reports, but with **link-clustered standard errors**
//!   (`expstats::OlsFit::covariance_clustered`): sessions on one
//!   congested link share shocks, so iid SEs understate the noise;
//! * [`link_level_effect`] — the cluster-randomized estimator: treated
//!   sessions on treated links vs control sessions on control links,
//!   each link one observation, Welch CI across links;
//! * [`paired_effect`] — per-pair contrasts for the stratified paired
//!   design, averaged with a Student-t CI over pairs;
//! * [`fleet_between_within`] — the between/within-link decomposition
//!   ([`causal::between_within`]) that diagnoses interference: the two
//!   components diverge exactly when unit-level randomization is biased;
//! * [`ground_truth_tte`] — the simulator's privilege: rerun the same
//!   fleet all-treated and all-control and difference the means, the
//!   estimand both designs are trying to recover.
//!
//! Every estimator also has a streaming twin in [`summary`] that works
//! from mergeable per-link sufficient statistics instead of session
//! records; this record-based path is kept as its equivalence oracle.

pub mod summary;

pub use summary::{
    aggregation_comparison_summary, control_mean_summary, fleet_between_within_summary,
    ground_truth_tte_from_summaries, link_level_effect_adjusted_summary, link_level_effect_summary,
    paired_effect_summary, strata_summary, user_level_effect_adjusted_summary,
    user_level_effect_summary, DegradedReport, FleetLinkSummary, FleetSummary, QuarantinedLink,
    DEFAULT_SKETCH_CAP,
};

use causal::estimators::{between_within, BetweenWithin, ClusterCell};
use expstats::dist::t_critical;
use expstats::ols::{DesignBuilder, Ols};
use expstats::{diff_in_means, mean, mean_ci, Result, StatsError};
use streamsim::config::StreamConfig;
use streamsim::fleet::{FleetDesign, FleetLinkRun, FleetRun, FleetSim, LinkSpec};
use streamsim::scenario::AllocationSchedule;
use streamsim::session::Metric;

/// A fleet-level effect estimate, normalized by a baseline mean.
#[derive(Debug, Clone)]
pub struct FleetEffect {
    /// Metric the effect concerns.
    pub metric: Metric,
    /// Absolute effect (metric units).
    pub absolute: f64,
    /// Effect relative to the baseline mean.
    pub relative: f64,
    /// 95% confidence interval (relative units).
    pub ci95: (f64, f64),
    /// Standard error (relative units).
    pub se: f64,
    /// Sessions entering the estimate.
    pub n_sessions: usize,
    /// Clusters (links, or pairs for the paired estimator) behind the
    /// uncertainty quantification.
    pub n_clusters: usize,
    /// Data-quality flags raised by the guardrails on the telemetry that
    /// fed this estimate (see [`crate::guardrails`]). Empty for clean
    /// pipelines; attached via [`FleetEffect::with_quality`].
    pub quality: Vec<crate::guardrails::QualityFlag>,
}

impl FleetEffect {
    /// Whether the 95% CI excludes zero.
    pub fn significant(&self) -> bool {
        self.ci95.0 > 0.0 || self.ci95.1 < 0.0
    }

    /// Whether the 95% CI covers a hypothesized relative effect.
    pub fn covers(&self, truth: f64) -> bool {
        self.ci95.0 <= truth && truth <= self.ci95.1
    }

    /// Attach data-quality flags (builder-style).
    pub fn with_quality(mut self, flags: Vec<crate::guardrails::QualityFlag>) -> Self {
        self.quality = flags;
        self
    }

    /// Whether any data-quality guardrail fired on this estimate.
    pub fn flagged(&self) -> bool {
        !self.quality.is_empty()
    }
}

fn finite_values(links: &[&FleetLinkRun], metric: Metric, treated: Option<bool>) -> Vec<f64> {
    links
        .iter()
        .flat_map(|l| l.sessions.iter())
        .filter(|s| treated.is_none_or(|t| s.treated == t))
        .map(|s| metric.of(s))
        .filter(|v| v.is_finite())
        .collect()
}

/// Global control mean for normalization: control sessions on
/// control-cluster links when the design assigned cluster arms (the
/// fleet analogue of Appendix B's "same global control condition"),
/// otherwise all control sessions.
pub fn control_mean(links: &[&FleetLinkRun], metric: Metric) -> f64 {
    let control_links: Vec<&FleetLinkRun> = links
        .iter()
        .copied()
        .filter(|l| l.treated_cluster == Some(false))
        .collect();
    let vals = if control_links.is_empty() {
        finite_values(links, metric, Some(false))
    } else {
        finite_values(&control_links, metric, Some(false))
    };
    mean(&vals)
}

/// The pooled session-level (user-level) contrast with link-clustered
/// standard errors: OLS of the metric on a treatment indicator, CRV1
/// covariance clustered on the link, t interval on `G − 1` degrees of
/// freedom. This is what a fleet-wide Bernoulli A/B test reports —
/// unbiased for `τ(p)`, but `τ(p)` itself is the wrong target under
/// congestion interference.
pub fn user_level_effect(
    links: &[&FleetLinkRun],
    metric: Metric,
    baseline: f64,
) -> Result<FleetEffect> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "user_level_effect: bad baseline",
        });
    }
    let mut y = Vec::new();
    let mut arm = Vec::new();
    let mut clusters = Vec::new();
    for l in links {
        for s in &l.sessions {
            let v = metric.of(s);
            if v.is_finite() {
                y.push(v);
                arm.push(if s.treated { 1.0 } else { 0.0 });
                clusters.push(l.link);
            }
        }
    }
    let n = y.len();
    let design = DesignBuilder::new()
        .intercept(n)?
        .column("treated", &arm)?
        .build()?;
    let fit = Ols::fit(design, &y)?;
    let est = fit.coef[1];
    let se = fit.std_errors_clustered(&clusters)?[1];
    let mut sorted = clusters.clone();
    sorted.sort_unstable();
    sorted.dedup();
    let g = sorted.len();
    let tcrit = t_critical(0.95, (g as f64 - 1.0).max(1.0));
    Ok(FleetEffect {
        metric,
        absolute: est,
        relative: est / baseline,
        ci95: ((est - tcrit * se) / baseline, (est + tcrit * se) / baseline),
        se: se / baseline.abs(),
        n_sessions: n,
        n_clusters: g,
        quality: Vec::new(),
    })
}

/// The link-level (cluster-randomized) estimator: one observation per
/// link — the mean over treated sessions on treated-cluster links, the
/// mean over control sessions on control-cluster links — compared with
/// a Welch interval across links. Because a treated link is ~entirely
/// treated, its sessions already include the within-link spillover, so
/// this contrast targets the total treatment effect rather than `τ(p)`.
pub fn link_level_effect(
    links: &[&FleetLinkRun],
    metric: Metric,
    baseline: f64,
) -> Result<FleetEffect> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "link_level_effect: bad baseline",
        });
    }
    let mut t_means = Vec::new();
    let mut c_means = Vec::new();
    let mut n_sessions = 0usize;
    for l in links {
        let Some(arm) = l.treated_cluster else {
            continue;
        };
        let vals = finite_values(std::slice::from_ref(l), metric, Some(arm));
        if vals.is_empty() {
            continue;
        }
        n_sessions += vals.len();
        if arm {
            t_means.push(mean(&vals));
        } else {
            c_means.push(mean(&vals));
        }
    }
    let d = diff_in_means(&t_means, &c_means, 0.95)?;
    let r = d.scaled(1.0 / baseline);
    Ok(FleetEffect {
        metric,
        absolute: d.estimate,
        relative: r.estimate,
        ci95: r.ci,
        se: r.se,
        n_sessions,
        n_clusters: t_means.len() + c_means.len(),
        quality: Vec::new(),
    })
}

/// Covariate-adjusted user-level contrast: OLS of the metric on
/// `[1, treated, offered_load]` with CRV1 link-clustered standard
/// errors. The baseline offered-load index is constant within a link,
/// so adjusting for it soaks up the between-link heterogeneity that
/// inflates the unadjusted clustered interval — and, under routed
/// fleets, absorbs the part of the router's load-shifting that is
/// predictable from the link's size. It cannot fix the estimand: like
/// [`user_level_effect`] it targets `τ(p)`, which interference biases.
pub fn user_level_effect_adjusted(
    links: &[&FleetLinkRun],
    metric: Metric,
    baseline: f64,
) -> Result<FleetEffect> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "user_level_effect_adjusted: bad baseline",
        });
    }
    let mut y = Vec::new();
    let mut arm = Vec::new();
    let mut cov = Vec::new();
    let mut clusters = Vec::new();
    for l in links {
        for s in &l.sessions {
            let v = metric.of(s);
            if v.is_finite() {
                y.push(v);
                arm.push(if s.treated { 1.0 } else { 0.0 });
                cov.push(l.offered_load);
                clusters.push(l.link);
            }
        }
    }
    let n = y.len();
    let design = DesignBuilder::new()
        .intercept(n)?
        .column("treated", &arm)?
        .column("offered_load", &cov)?
        .build()?;
    let fit = Ols::fit(design, &y)?;
    let est = fit.coef[1];
    let se = fit.std_errors_clustered(&clusters)?[1];
    let mut sorted = clusters.clone();
    sorted.sort_unstable();
    sorted.dedup();
    let g = sorted.len();
    let tcrit = t_critical(0.95, (g as f64 - 1.0).max(1.0));
    Ok(FleetEffect {
        metric,
        absolute: est,
        relative: est / baseline,
        ci95: ((est - tcrit * se) / baseline, (est + tcrit * se) / baseline),
        se: se / baseline.abs(),
        n_sessions: n,
        n_clusters: g,
        quality: Vec::new(),
    })
}

/// Shared ANCOVA kernel for the adjusted link-level estimator: OLS of
/// per-link arm means on `[1, arm, offered_load]`, spherical standard
/// errors, t interval on `G − 3` degrees of freedom. `rows` holds one
/// `(arm, covariate, mean outcome)` triple per cluster-armed link. Both
/// the record path and the summary twin reduce to this, so they agree
/// to floating-point noise.
pub(crate) fn ancova_from_link_means(
    metric: Metric,
    baseline: f64,
    rows: &[(f64, f64, f64)],
    n_sessions: usize,
) -> Result<FleetEffect> {
    let g = rows.len();
    if g < 4 {
        return Err(StatsError::TooFewObservations { got: g, need: 4 });
    }
    let mut acc = expstats::accum::OlsAccum::new(3);
    for &(d, z, y) in rows {
        acc.push(&[1.0, d, z], y);
    }
    let fit = acc.solve()?;
    let est = fit.coef[1];
    let se = fit.std_errors()[1];
    let tcrit = t_critical(0.95, (g as f64 - 3.0).max(1.0));
    Ok(FleetEffect {
        metric,
        absolute: est,
        relative: est / baseline,
        ci95: ((est - tcrit * se) / baseline, (est + tcrit * se) / baseline),
        se: se / baseline.abs(),
        n_sessions,
        n_clusters: g,
        quality: Vec::new(),
    })
}

/// Covariate-adjusted link-level estimator (ANCOVA): regress each
/// cluster-armed link's own-arm mean on the arm indicator *and* the
/// baseline offered-load covariate. Adjusting the cluster contrast for
/// the pre-treatment covariate recovers most of the precision the
/// stratified paired design buys, without needing the pairing to have
/// been randomized in — the classic regression-adjustment move for
/// cluster trials (≥ 4 cluster-armed links required for the residual
/// degrees of freedom).
pub fn link_level_effect_adjusted(
    links: &[&FleetLinkRun],
    metric: Metric,
    baseline: f64,
) -> Result<FleetEffect> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "link_level_effect_adjusted: bad baseline",
        });
    }
    let mut rows = Vec::new();
    let mut n_sessions = 0usize;
    for l in links {
        let Some(arm) = l.treated_cluster else {
            continue;
        };
        let vals = finite_values(std::slice::from_ref(l), metric, Some(arm));
        if vals.is_empty() {
            continue;
        }
        n_sessions += vals.len();
        rows.push((f64::from(arm as u8), l.offered_load, mean(&vals)));
    }
    ancova_from_link_means(metric, baseline, &rows, n_sessions)
}

/// The staggered-switchback estimator with explicit carryover burn-in:
/// within each switchback link, contrast its high-allocation days
/// against its low-allocation days, dropping every session that arrives
/// in the first `burn_in_hours` hours after an arm flip (including the
/// cold-start hours of day 0) — the window in which the link's queue
/// and buffer state still reflect the *previous* day's arm. Per-link
/// day contrasts are averaged with a Student-t CI across links, so
/// between-link heterogeneity differences out entirely.
///
/// This is the design the routing-spillover figure shows surviving
/// cross-link interference: the router reacts to a link's *current*
/// load, so each link's own alternation keeps treated and control
/// exposure under (approximately) the same routed environment, while a
/// static link-level split lets the router systematically shift load
/// from treated to control clusters for the whole horizon.
pub fn switchback_effect(
    links: &[&FleetLinkRun],
    metric: Metric,
    baseline: f64,
    burn_in_hours: usize,
) -> Result<FleetEffect> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "switchback_effect: bad baseline",
        });
    }
    let mut diffs = Vec::new();
    let mut weights = Vec::new();
    let mut n_sessions = 0usize;
    for l in links {
        let AllocationSchedule::PerDay(plan) = &l.schedule else {
            continue; // not a switchback link
        };
        let (lo, hi) = plan
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &p| {
                (lo.min(p), hi.max(p))
            });
        if hi <= lo {
            continue; // constant plan: no within-link contrast
        }
        let mid = (lo + hi) / 2.0;
        let day_arm = |day: usize| l.schedule.allocation(day) >= mid;
        let mut hi_vals = Vec::new();
        let mut lo_vals = Vec::new();
        for s in &l.sessions {
            let arm = day_arm(s.day);
            // Carryover burn-in: the first hours after a flip (or after
            // cold start on day 0) are contaminated by the previous
            // arm's congestion state.
            let flipped = s.day == 0 || day_arm(s.day - 1) != arm;
            if flipped && s.hour < burn_in_hours {
                continue;
            }
            if s.treated != arm {
                continue; // off-arm sessions (95/5 leakage) are excluded
            }
            let v = metric.of(s);
            if !v.is_finite() {
                continue;
            }
            if arm {
                hi_vals.push(v);
            } else {
                lo_vals.push(v);
            }
        }
        if hi_vals.is_empty() || lo_vals.is_empty() {
            continue;
        }
        n_sessions += hi_vals.len() + lo_vals.len();
        diffs.push(mean(&hi_vals) - mean(&lo_vals));
        weights.push((hi_vals.len() + lo_vals.len()) as f64);
    }
    // Session-weighted average of the per-link contrasts: the total
    // treatment effect is a session-level estimand, so a link serving
    // 10x the sessions contributes 10x the weight (an equal-weight mean
    // over links systematically attenuates the fleet effect whenever
    // per-link effect size and traffic volume are correlated — which
    // they are: both scale with link capacity). The variance is the
    // cluster-robust form for a weighted mean over independent links.
    let g = diffs.len();
    if g < 2 {
        return Err(StatsError::TooFewObservations { got: g, need: 2 });
    }
    let w_total: f64 = weights.iter().sum();
    let est: f64 = diffs.iter().zip(&weights).map(|(d, w)| w * d).sum::<f64>() / w_total;
    let correction = g as f64 / (g as f64 - 1.0);
    let var: f64 = diffs
        .iter()
        .zip(&weights)
        .map(|(d, w)| {
            let share = w / w_total;
            share * share * (d - est) * (d - est)
        })
        .sum::<f64>()
        * correction;
    let se = var.sqrt();
    let t = t_critical(0.95, (g - 1) as f64);
    let rel = est / baseline;
    let rel_se = se / baseline.abs();
    Ok(FleetEffect {
        metric,
        absolute: est,
        relative: rel,
        ci95: (rel - t * rel_se, rel + t * rel_se),
        se: rel_se,
        n_sessions,
        n_clusters: g,
        quality: Vec::new(),
    })
}

/// The stratified paired estimator: for every matched `(treated,
/// control)` pair, difference the treated link's treated-session mean
/// against the control link's control-session mean, then average with a
/// Student-t CI over pairs. Matching on the baseline covariate removes
/// the between-link heterogeneity the unpaired cluster contrast pays
/// for, so its CIs are typically far tighter at the same fleet size.
pub fn paired_effect(run: &FleetRun, metric: Metric, baseline: f64) -> Result<FleetEffect> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "paired_effect: bad baseline",
        });
    }
    if run.pairs.is_empty() {
        return Err(StatsError::TooFewObservations { got: 0, need: 2 });
    }
    let mut diffs = Vec::with_capacity(run.pairs.len());
    let mut n_sessions = 0usize;
    for &(t, c) in &run.pairs {
        let tv = finite_values(&[&run.links[t]], metric, Some(true));
        let cv = finite_values(&[&run.links[c]], metric, Some(false));
        if tv.is_empty() || cv.is_empty() {
            continue;
        }
        n_sessions += tv.len() + cv.len();
        diffs.push(mean(&tv) - mean(&cv));
    }
    let d = mean_ci(&diffs, 0.95)?;
    let r = d.scaled(1.0 / baseline);
    Ok(FleetEffect {
        metric,
        absolute: d.estimate,
        relative: r.estimate,
        ci95: r.ci,
        se: r.se,
        n_sessions,
        n_clusters: diffs.len(),
        quality: Vec::new(),
    })
}

/// The same cluster contrast under three uncertainty treatments — the
/// fleet-scale generalization of the paper's Figure 13 (hourly vs
/// session aggregation): pooled sessions with iid (Welch) standard
/// errors, pooled sessions with link-clustered (CRV1) standard errors,
/// and full aggregation to one observation per link.
///
/// All three share the estimand — treated sessions on treated-cluster
/// links vs control sessions on control-cluster links — so the point
/// estimates are close and only the intervals differ: iid SEs pretend
/// every session is independent and collapse as sessions accumulate,
/// while the clustered and link-aggregated intervals stay honest about
/// the number of *links*, which is the real replication unit.
#[derive(Debug, Clone)]
pub struct AggregationComparison {
    /// Welch over pooled sessions (the anti-conservative default).
    pub iid: FleetEffect,
    /// Pooled sessions, link-clustered CRV1 standard errors.
    pub clustered: FleetEffect,
    /// One mean per link (see [`link_level_effect`]).
    pub link_means: FleetEffect,
}

/// Compute the [`AggregationComparison`] for a cluster-randomized fleet
/// run (links without a cluster arm are skipped).
pub fn aggregation_comparison(
    links: &[&FleetLinkRun],
    metric: Metric,
    baseline: f64,
) -> Result<AggregationComparison> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "aggregation_comparison: bad baseline",
        });
    }
    // Pooled arm samples plus their cluster labels.
    let mut y = Vec::new();
    let mut arm_col = Vec::new();
    let mut clusters = Vec::new();
    let mut pooled_t = Vec::new();
    let mut pooled_c = Vec::new();
    for l in links {
        let Some(arm) = l.treated_cluster else {
            continue;
        };
        for s in &l.sessions {
            if s.treated != arm {
                continue;
            }
            let v = metric.of(s);
            if !v.is_finite() {
                continue;
            }
            y.push(v);
            arm_col.push(if arm { 1.0 } else { 0.0 });
            clusters.push(l.link);
            if arm {
                pooled_t.push(v);
            } else {
                pooled_c.push(v);
            }
        }
    }
    let n = y.len();
    // (a) iid Welch over sessions.
    let d = diff_in_means(&pooled_t, &pooled_c, 0.95)?;
    let mut sorted = clusters.clone();
    sorted.sort_unstable();
    sorted.dedup();
    let g = sorted.len();
    let to_effect = |est: f64, se: f64, ci: (f64, f64), n_clusters: usize| FleetEffect {
        metric,
        absolute: est,
        relative: est / baseline,
        ci95: (ci.0 / baseline, ci.1 / baseline),
        se: se / baseline.abs(),
        n_sessions: n,
        n_clusters,
        quality: Vec::new(),
    };
    let iid = to_effect(d.estimate, d.se, d.ci, g);
    // (b) same contrast, link-clustered SEs via OLS on the arm dummy.
    let design = DesignBuilder::new()
        .intercept(n)?
        .column("treated", &arm_col)?
        .build()?;
    let fit = Ols::fit(design, &y)?;
    let se_cl = fit.std_errors_clustered(&clusters)?[1];
    let tcrit = t_critical(0.95, (g as f64 - 1.0).max(1.0));
    let est = fit.coef[1];
    let clustered = to_effect(est, se_cl, (est - tcrit * se_cl, est + tcrit * se_cl), g);
    // (c) one observation per link.
    let link_means = link_level_effect(links, metric, baseline)?;
    Ok(AggregationComparison {
        iid,
        clustered,
        link_means,
    })
}

/// Build one [`ClusterCell`] per link for the between/within
/// decomposition.
pub fn cluster_cells(links: &[&FleetLinkRun], metric: Metric) -> Vec<ClusterCell> {
    links
        .iter()
        .map(|l| ClusterCell {
            treated: finite_values(std::slice::from_ref(l), metric, Some(true)),
            control: finite_values(std::slice::from_ref(l), metric, Some(false)),
        })
        .collect()
}

/// The between/within-link decomposition of a fleet experiment's effect
/// (see [`causal::BetweenWithin`]): `within` is what user-level
/// randomization estimates, `between` what link-level randomization
/// estimates; divergence is the congestion-interference signature.
pub fn fleet_between_within(links: &[&FleetLinkRun], metric: Metric) -> Result<BetweenWithin> {
    between_within(&cluster_cells(links, metric), 0.95)
}

/// Split a fleet's links into `n_strata` groups by ascending baseline
/// offered-load covariate (near-equal sizes; later strata are the more
/// congested links). Strata with fewer links than `n_strata` collapse
/// gracefully — chunks are never empty.
pub fn strata(run: &FleetRun, n_strata: usize) -> Vec<Vec<&FleetLinkRun>> {
    assert!(n_strata > 0, "need at least one stratum");
    let mut order: Vec<&FleetLinkRun> = run.links.iter().collect();
    order.sort_by(|a, b| {
        a.offered_load
            .total_cmp(&b.offered_load)
            .then(a.link.cmp(&b.link))
    });
    let n = order.len();
    let k = n_strata.min(n.max(1));
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let end = start + n / k + usize::from(i < n % k);
        out.push(order[start..end].to_vec());
        start = end;
    }
    out
}

/// The estimand both designs chase, measured directly: rerun the *same*
/// fleet (same specs, same per-link seeds) under global treatment
/// (`p = 1`) and global control (`p = 0`) and difference the
/// session-mean outcomes, normalized by the global-control mean.
/// Returns the relative total treatment effect.
pub fn ground_truth_tte(
    base: &StreamConfig,
    specs: &[LinkSpec],
    metric: Metric,
    seed: u64,
) -> Result<f64> {
    let run_at = |p: f64| FleetSim::new(base, specs, &FleetDesign::UserLevel { p }, seed).run();
    ground_truth_tte_from_runs(&run_at(1.0), &run_at(0.0), metric)
}

/// [`ground_truth_tte`] on counterfactual runs the caller already holds
/// — the all-treated and all-control fleets must share specs and
/// per-link seeds (i.e. the same replication seed under
/// `FleetDesign::UserLevel { p: 1.0 }` / `{ p: 0.0 }`). Exposed so
/// parallel sweeps (e.g. the fleet figures running both counterfactuals
/// through `sweep_fleet`) use the same estimand definition instead of
/// reimplementing the reduction.
pub fn ground_truth_tte_from_runs(
    all_treated: &FleetRun,
    all_control: &FleetRun,
    metric: Metric,
) -> Result<f64> {
    let values = |run: &FleetRun| -> Vec<f64> {
        let links: Vec<&FleetLinkRun> = run.links.iter().collect();
        finite_values(&links, metric, None)
    };
    let treated = values(all_treated);
    let control = values(all_control);
    let mc = mean(&control);
    if treated.is_empty() || control.is_empty() || mc == 0.0 || !mc.is_finite() {
        return Err(StatsError::InvalidParameter {
            context: "ground_truth_tte: degenerate counterfactual runs",
        });
    }
    Ok((mean(&treated) - mc) / mc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamsim::fleet::LinkPopulation;

    pub(crate) fn small_base() -> StreamConfig {
        StreamConfig {
            days: 1,
            capacity_bps: 30e6,
            peak_arrivals_per_s: 0.24 * 0.03,
            mean_watch_s: 1500.0,
            ..Default::default()
        }
    }

    fn fleet_run(n: usize, design: &FleetDesign, seed: u64) -> FleetRun {
        let specs = LinkPopulation::moderate(small_base(), n, 7).sample();
        FleetSim::new(&small_base(), &specs, design, seed).run()
    }

    #[test]
    fn user_level_estimator_reports_clustered_uncertainty() {
        let run = fleet_run(6, &FleetDesign::UserLevel { p: 0.5 }, 3);
        let links: Vec<&FleetLinkRun> = run.links.iter().collect();
        let base = control_mean(&links, Metric::Bitrate);
        assert!(base > 0.0);
        let e = user_level_effect(&links, Metric::Bitrate, base).unwrap();
        assert_eq!(e.n_clusters, 6);
        assert!(e.n_sessions > 1000);
        // Direct capping effect: bitrate drops markedly.
        assert!(e.relative < -0.1, "bitrate effect {}", e.relative);
        assert!(e.ci95.0 < e.relative && e.relative < e.ci95.1);
    }

    #[test]
    fn link_level_estimator_contrasts_cluster_arms() {
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let run = fleet_run(10, &design, 5);
        let links: Vec<&FleetLinkRun> = run.links.iter().collect();
        let base = control_mean(&links, Metric::Bitrate);
        let e = link_level_effect(&links, Metric::Bitrate, base).unwrap();
        assert!(e.n_clusters >= 4, "clusters {}", e.n_clusters);
        assert!(e.relative < -0.1, "bitrate TTE {}", e.relative);
    }

    #[test]
    fn paired_estimator_uses_matched_pairs() {
        let design = FleetDesign::StratifiedPairs {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let run = fleet_run(8, &design, 11);
        assert_eq!(run.pairs.len(), 4);
        let links: Vec<&FleetLinkRun> = run.links.iter().collect();
        let base = control_mean(&links, Metric::Bitrate);
        let e = paired_effect(&run, Metric::Bitrate, base).unwrap();
        assert_eq!(e.n_clusters, 4);
        assert!(e.relative < -0.1, "paired bitrate TTE {}", e.relative);
    }

    #[test]
    fn adjusted_estimators_tighten_and_agree_on_sign() {
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let run = fleet_run(10, &design, 5);
        let links: Vec<&FleetLinkRun> = run.links.iter().collect();
        let base = control_mean(&links, Metric::Bitrate);
        let raw = link_level_effect(&links, Metric::Bitrate, base).unwrap();
        let adj = link_level_effect_adjusted(&links, Metric::Bitrate, base).unwrap();
        // Same estimand, same sign; adjustment only reshapes the
        // uncertainty (usually tighter — offered load predicts the link
        // means — but not guaranteed on every draw, so only sanity-check
        // the interval here).
        assert!(adj.relative < -0.1, "ancova bitrate TTE {}", adj.relative);
        assert!(adj.ci95.0 < adj.relative && adj.relative < adj.ci95.1);
        assert_eq!(adj.n_clusters, raw.n_clusters);
        let uadj = user_level_effect_adjusted(&links, Metric::Bitrate, base).unwrap();
        assert!(uadj.relative < -0.1, "adjusted τ(p) {}", uadj.relative);
        assert_eq!(uadj.n_clusters, 10);
    }

    #[test]
    fn adjusted_link_estimator_needs_four_clusters() {
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let run = fleet_run(3, &design, 5);
        let links: Vec<&FleetLinkRun> = run.links.iter().collect();
        let base = control_mean(&links, Metric::Bitrate);
        assert!(link_level_effect_adjusted(&links, Metric::Bitrate, base).is_err());
    }

    #[test]
    fn switchback_estimator_detects_effect_and_burns_flip_hours() {
        let design = FleetDesign::StaggeredSwitchback {
            p_hi: 0.95,
            p_lo: 0.05,
            period_days: 1,
        };
        let base_cfg = StreamConfig {
            days: 4,
            ..small_base()
        };
        let specs = LinkPopulation::moderate(base_cfg.clone(), 6, 7).sample();
        let run = FleetSim::new(&base_cfg, &specs, &design, 17).run();
        let links: Vec<&FleetLinkRun> = run.links.iter().collect();
        let base = control_mean(&links, Metric::Bitrate);
        let e = switchback_effect(&links, Metric::Bitrate, base, 2).unwrap();
        assert_eq!(e.n_clusters, 6, "every link alternates");
        assert!(e.relative < -0.1, "switchback bitrate TTE {}", e.relative);
        // Burn-in strictly removes sessions relative to no burn-in.
        let e0 = switchback_effect(&links, Metric::Bitrate, base, 0).unwrap();
        assert!(e.n_sessions < e0.n_sessions);
        // Non-switchback links contribute nothing.
        let flat = fleet_run(4, &FleetDesign::UserLevel { p: 0.5 }, 3);
        let flat_links: Vec<&FleetLinkRun> = flat.links.iter().collect();
        assert!(switchback_effect(&flat_links, Metric::Bitrate, base, 2).is_err());
    }

    #[test]
    fn strata_partition_links_by_covariate() {
        let run = fleet_run(9, &FleetDesign::UserLevel { p: 0.5 }, 1);
        let groups = strata(&run, 3);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 9);
        // Ascending covariate across strata boundaries.
        for w in groups.windows(2) {
            let hi_of_lo = w[0].last().unwrap().offered_load;
            let lo_of_hi = w[1].first().unwrap().offered_load;
            assert!(hi_of_lo <= lo_of_hi);
        }
        // More strata than links collapses without panicking.
        let tiny = fleet_run(2, &FleetDesign::UserLevel { p: 0.5 }, 1);
        let g = strata(&tiny, 5);
        assert_eq!(g.iter().map(Vec::len).sum::<usize>(), 2);
        assert!(g.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn between_within_runs_on_fleet_data() {
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let run = fleet_run(10, &design, 9);
        let links: Vec<&FleetLinkRun> = run.links.iter().collect();
        let bw = fleet_between_within(&links, Metric::Bitrate).unwrap();
        assert_eq!(bw.n_within, 10, "every link has a few of each arm at 95/5");
        let between = bw.between.expect("both cluster arms present");
        // The direct capping effect dominates bitrate; both components
        // see it.
        assert!(between.estimate < 0.0);
        assert!(bw.within.unwrap().estimate < 0.0);
    }

    #[test]
    fn aggregation_comparison_orders_interval_widths() {
        let design = FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        };
        let run = fleet_run(12, &design, 13);
        let links: Vec<&FleetLinkRun> = run.links.iter().collect();
        let base = control_mean(&links, Metric::Throughput);
        let cmp = aggregation_comparison(&links, Metric::Throughput, base).unwrap();
        // All three target the same contrast.
        assert!((cmp.iid.relative - cmp.clustered.relative).abs() < 1e-9);
        let width = |e: &FleetEffect| e.ci95.1 - e.ci95.0;
        // Session-iid intervals are the anti-conservative outlier:
        // clustered and link-aggregated intervals respect the link count
        // and come out wider.
        assert!(
            width(&cmp.clustered) > width(&cmp.iid),
            "clustered {} vs iid {}",
            width(&cmp.clustered),
            width(&cmp.iid)
        );
        assert!(width(&cmp.link_means) > width(&cmp.iid));
        assert_eq!(cmp.clustered.n_clusters, 12);
    }

    #[test]
    fn ground_truth_tte_detects_direct_bitrate_effect() {
        let specs = LinkPopulation::moderate(small_base(), 3, 7).sample();
        let tte = ground_truth_tte(&small_base(), &specs, Metric::Bitrate, 21).unwrap();
        assert!(tte < -0.15, "global capping must cut bitrate: {tte}");
    }
}
