//! **unbiased** — experiment designs for congested networks.
//!
//! The primary contribution of *Unbiased Experiments in Congested
//! Networks* (IMC '21) as a reusable library:
//!
//! * the Appendix-B analysis pipeline — hourly aggregation `Z_t(A)`,
//!   OLS with hour-of-day fixed effects, Newey–West (lag 2) robust
//!   standard errors, normalization by the global control mean —
//!   in [`analysis`];
//! * experiment designs in [`designs`]: naïve A/B tests, the
//!   **paired-link** design of §4 (simultaneous 95%/5% tests on twin
//!   links, yielding naïve estimates, approximate TTE and spillover),
//!   **switchback** experiments and **event studies** (§5), and
//!   **gradual deployments** instrumented for interference detection;
//! * A/A calibration and false-positive scans in
//!   `aa_scan`-style helpers (see [`designs`]);
//! * fleet-scale estimators in [`fleet`]: link-clustered standard
//!   errors, the link-level (cluster) and stratified-paired contrasts,
//!   the between/within-link decomposition, and the simulator's
//!   ground-truth TTE;
//! * data-quality guardrails in [`guardrails`]: sample-ratio-mismatch
//!   and arm-differential missingness/duplication checks over the
//!   telemetry ledger, surfaced as [`guardrails::QualityFlag`]s on
//!   [`EffectEstimate`]/[`FleetEffect`];
//! * report rendering for every table/figure of the paper in [`report`].
//!
//! The designs run against the `streamsim` paired-link world (and the
//! emulation helpers reuse paired-link data exactly as §5.3 does), while
//! the estimators come from `causal`/`expstats`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dataset;
pub mod designs;
pub mod fleet;
pub mod guardrails;
pub mod quantiles;
pub mod report;

pub use analysis::{hourly_effect, unit_effect, EffectEstimate};
pub use dataset::Dataset;
pub use fleet::FleetEffect;
pub use guardrails::{assess_fleet_quality, DataQuality, QualityFlag};
