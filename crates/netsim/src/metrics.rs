//! Per-flow and per-application measurement.
//!
//! The lab experiments measure **long-term average throughput** and the
//! **retransmitted-byte fraction** per application (the experimental
//! unit), excluding a warm-up period. Counters accumulate over the whole
//! run; a snapshot at the end of warm-up lets the harness compute
//! measurement-window deltas.

use crate::config::CcKind;
use crate::packet::{AppId, FlowId};

/// Raw counters accumulated by one flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowCounters {
    /// Segments transmitted (including retransmissions).
    pub segs_sent: u64,
    /// Retransmitted segments.
    pub segs_retx: u64,
    /// Segments cumulatively acknowledged (unique deliveries).
    pub segs_delivered: u64,
    /// Fast-retransmit loss events (once per window).
    pub loss_events: u64,
    /// Retransmission timeouts.
    pub rtos: u64,
    /// Packets dropped at the bottleneck belonging to this flow.
    pub drops: u64,
    /// Sum of RTT samples (seconds) since the window started.
    pub rtt_sum_s: f64,
    /// Number of RTT samples since the window started.
    pub rtt_samples: u64,
    /// Minimum RTT sample (seconds) since the window started.
    pub rtt_min_s: f64,
}

impl Default for FlowCounters {
    fn default() -> Self {
        FlowCounters {
            segs_sent: 0,
            segs_retx: 0,
            segs_delivered: 0,
            loss_events: 0,
            rtos: 0,
            drops: 0,
            rtt_sum_s: 0.0,
            rtt_samples: 0,
            rtt_min_s: f64::INFINITY,
        }
    }
}

impl FlowCounters {
    /// Record an RTT sample.
    pub fn record_rtt(&mut self, rtt_s: f64) {
        self.rtt_sum_s += rtt_s;
        self.rtt_samples += 1;
        if rtt_s < self.rtt_min_s {
            self.rtt_min_s = rtt_s;
        }
    }

    /// Reset the RTT window statistics (done at the warm-up snapshot so
    /// min/mean RTT describe only the measurement window).
    pub fn reset_rtt_window(&mut self) {
        self.rtt_sum_s = 0.0;
        self.rtt_samples = 0;
        self.rtt_min_s = f64::INFINITY;
    }
}

/// Final per-flow metrics over the measurement window.
#[derive(Debug, Clone)]
pub struct FlowMetrics {
    /// Flow identifier.
    pub flow: FlowId,
    /// Owning application.
    pub app: AppId,
    /// Goodput in bits/s (unique delivered bytes over the window).
    pub throughput_bps: f64,
    /// Bytes sent (including retransmissions).
    pub sent_bytes: u64,
    /// Bytes retransmitted.
    pub retx_bytes: u64,
    /// Retransmitted fraction of sent bytes (the paper's "% retransmits").
    pub retx_fraction: f64,
    /// Mean RTT over the window in seconds (NaN if no samples).
    pub mean_rtt_s: f64,
    /// Minimum RTT over the window in seconds (NaN if no samples).
    pub min_rtt_s: f64,
    /// Fast-retransmit loss events in the window.
    pub loss_events: u64,
    /// Timeouts in the window.
    pub rtos: u64,
    /// Bottleneck drops attributed to this flow in the window.
    pub drops: u64,
}

impl FlowMetrics {
    /// Compute window metrics from a start snapshot and final counters.
    pub fn from_window(
        flow: FlowId,
        app: AppId,
        start: &FlowCounters,
        end: &FlowCounters,
        mss_bytes: u32,
        window_secs: f64,
    ) -> FlowMetrics {
        let delivered = end.segs_delivered - start.segs_delivered;
        let sent = end.segs_sent - start.segs_sent;
        let retx = end.segs_retx - start.segs_retx;
        let mss = mss_bytes as u64;
        FlowMetrics {
            flow,
            app,
            throughput_bps: delivered as f64 * mss as f64 * 8.0 / window_secs,
            sent_bytes: sent * mss,
            retx_bytes: retx * mss,
            retx_fraction: if sent == 0 {
                0.0
            } else {
                retx as f64 / sent as f64
            },
            mean_rtt_s: if end.rtt_samples == 0 {
                f64::NAN
            } else {
                end.rtt_sum_s / end.rtt_samples as f64
            },
            min_rtt_s: if end.rtt_min_s.is_finite() {
                end.rtt_min_s
            } else {
                f64::NAN
            },
            loss_events: end.loss_events - start.loss_events,
            rtos: end.rtos - start.rtos,
            drops: end.drops - start.drops,
        }
    }
}

/// Metrics aggregated to the application (the unit of the experiments).
#[derive(Debug, Clone)]
pub struct AppMetrics {
    /// Application identifier.
    pub app: AppId,
    /// Number of connections the application used.
    pub connections: usize,
    /// Congestion control its connections ran.
    pub cc: CcKind,
    /// Whether its connections paced.
    pub paced: bool,
    /// Total goodput across its connections, bits/s.
    pub throughput_bps: f64,
    /// Retransmitted fraction of bytes across its connections.
    pub retx_fraction: f64,
    /// Mean RTT across its connections' samples (seconds).
    pub mean_rtt_s: f64,
    /// Minimum RTT across its connections (seconds).
    pub min_rtt_s: f64,
    /// Per-flow breakdown.
    pub flows: Vec<FlowMetrics>,
}

impl AppMetrics {
    /// Aggregate the flows belonging to one application.
    pub fn aggregate(
        app: AppId,
        cfg: &crate::config::AppConfig,
        flows: Vec<FlowMetrics>,
    ) -> AppMetrics {
        let throughput = flows.iter().map(|f| f.throughput_bps).sum();
        let sent: u64 = flows.iter().map(|f| f.sent_bytes).sum();
        let retx: u64 = flows.iter().map(|f| f.retx_bytes).sum();
        let rtt_pairs: Vec<(f64, f64)> = flows
            .iter()
            .filter(|f| f.mean_rtt_s.is_finite())
            .map(|f| (f.mean_rtt_s, 1.0))
            .collect();
        let mean_rtt = if rtt_pairs.is_empty() {
            f64::NAN
        } else {
            rtt_pairs.iter().map(|(m, _)| m).sum::<f64>() / rtt_pairs.len() as f64
        };
        let min_rtt = flows
            .iter()
            .map(|f| f.min_rtt_s)
            .filter(|m| m.is_finite())
            .fold(f64::INFINITY, f64::min);
        AppMetrics {
            app,
            connections: cfg.connections,
            cc: cfg.cc,
            paced: cfg.paced,
            throughput_bps: throughput,
            retx_fraction: if sent == 0 {
                0.0
            } else {
                retx as f64 / sent as f64
            },
            mean_rtt_s: mean_rtt,
            min_rtt_s: if min_rtt.is_finite() {
                min_rtt
            } else {
                f64::NAN
            },
            flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AppConfig;

    fn counters(sent: u64, retx: u64, delivered: u64) -> FlowCounters {
        FlowCounters {
            segs_sent: sent,
            segs_retx: retx,
            segs_delivered: delivered,
            ..Default::default()
        }
    }

    #[test]
    fn window_delta_math() {
        let start = counters(100, 10, 90);
        let mut end = counters(300, 30, 260);
        end.record_rtt(0.02);
        end.record_rtt(0.04);
        let m = FlowMetrics::from_window(FlowId(0), AppId(0), &start, &end, 1500, 10.0);
        // Delivered delta 170 segs * 1500 B * 8 / 10 s.
        assert!((m.throughput_bps - 170.0 * 1500.0 * 8.0 / 10.0).abs() < 1e-9);
        assert_eq!(m.sent_bytes, 200 * 1500);
        assert_eq!(m.retx_bytes, 20 * 1500);
        assert!((m.retx_fraction - 0.1).abs() < 1e-12);
        assert!((m.mean_rtt_s - 0.03).abs() < 1e-12);
        assert!((m.min_rtt_s - 0.02).abs() < 1e-12);
    }

    #[test]
    fn rtt_window_reset() {
        let mut c = FlowCounters::default();
        c.record_rtt(0.5);
        c.reset_rtt_window();
        assert_eq!(c.rtt_samples, 0);
        assert!(c.rtt_min_s.is_infinite());
        c.record_rtt(0.1);
        assert_eq!(c.rtt_min_s, 0.1);
    }

    #[test]
    fn zero_sends_give_zero_retx_fraction() {
        let m = FlowMetrics::from_window(
            FlowId(0),
            AppId(0),
            &FlowCounters::default(),
            &FlowCounters::default(),
            1500,
            10.0,
        );
        assert_eq!(m.retx_fraction, 0.0);
        assert!(m.mean_rtt_s.is_nan());
    }

    #[test]
    fn app_aggregation_sums_throughput() {
        let mk = |tput: f64, sent: u64, retx: u64| FlowMetrics {
            flow: FlowId(0),
            app: AppId(0),
            throughput_bps: tput,
            sent_bytes: sent,
            retx_bytes: retx,
            retx_fraction: 0.0,
            mean_rtt_s: 0.02,
            min_rtt_s: 0.01,
            loss_events: 0,
            rtos: 0,
            drops: 0,
        };
        let cfg = AppConfig {
            connections: 2,
            cc: CcKind::Reno,
            paced: false,
            pacing_ca_factor: 1.2,
        };
        let m = AppMetrics::aggregate(AppId(0), &cfg, vec![mk(1e6, 1000, 100), mk(2e6, 1000, 0)]);
        assert!((m.throughput_bps - 3e6).abs() < 1e-9);
        assert!((m.retx_fraction - 0.05).abs() < 1e-12);
        assert_eq!(m.connections, 2);
    }
}
