//! Configuration for the dumbbell lab topology.

use dessim::SimDuration;

/// Which congestion control algorithm a flow runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcKind {
    /// TCP Reno (AIMD, NewReno loss recovery).
    Reno,
    /// TCP Cubic (the Linux default).
    Cubic,
    /// BBR v1 (model-based: bandwidth/RTT probing).
    Bbr,
}

impl CcKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CcKind::Reno => "reno",
            CcKind::Cubic => "cubic",
            CcKind::Bbr => "bbr",
        }
    }
}

/// One application: the experimental *unit* of the lab tests.
///
/// In the parallel-connections experiment an application owns one or two
/// connections; in the pacing and CC experiments it owns exactly one.
#[derive(Debug, Clone, Copy)]
pub struct AppConfig {
    /// Number of parallel bulk-transfer connections.
    pub connections: usize,
    /// Congestion control algorithm for all its connections.
    pub cc: CcKind,
    /// Whether its connections pace outgoing packets.
    pub paced: bool,
    /// Congestion-avoidance pacing factor (`factor × cwnd / sRTT`).
    /// Linux uses 1.2; Aggarwal et al.'s classic `(cwnd+1)/RTT` is 1.0.
    pub pacing_ca_factor: f64,
}

impl AppConfig {
    /// A plain single-connection unpaced application.
    pub fn plain(cc: CcKind) -> AppConfig {
        AppConfig {
            connections: 1,
            cc,
            paced: false,
            pacing_ca_factor: 1.2,
        }
    }

    /// A single-connection paced application at the given CA factor.
    pub fn paced(cc: CcKind, pacing_ca_factor: f64) -> AppConfig {
        AppConfig {
            connections: 1,
            cc,
            paced: true,
            pacing_ca_factor,
        }
    }
}

/// Errors from validating a [`DumbbellConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A numeric field was non-positive or otherwise out of range.
    OutOfRange {
        /// Field name.
        field: &'static str,
    },
    /// The application list was empty or an app had zero connections.
    NoTraffic,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::OutOfRange { field } => write!(f, "config field out of range: {field}"),
            ConfigError::NoTraffic => write!(f, "config defines no traffic"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full description of a dumbbell experiment.
#[derive(Debug, Clone)]
pub struct DumbbellConfig {
    /// Bottleneck rate in bits per second.
    pub bottleneck_bps: f64,
    /// Access-link rate as a multiple of the bottleneck rate (the paper's
    /// sender had 2×10 G bonded NICs feeding a 10 G bottleneck ⇒ 2.0).
    pub access_multiple: f64,
    /// Two-way propagation delay excluding queueing.
    pub base_rtt: SimDuration,
    /// Relative jitter applied to each flow's base RTT (breaks phase
    /// locking between otherwise identical flows). 0.1 = ±10%.
    pub rtt_jitter: f64,
    /// Bottleneck buffer size in bandwidth-delay products.
    pub buffer_bdp: f64,
    /// Segment size in bytes (the paper uses 9000-byte jumbo frames).
    pub mss_bytes: u32,
    /// The applications sharing the bottleneck.
    pub apps: Vec<AppConfig>,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Warm-up excluded from measurement.
    pub warmup: SimDuration,
    /// Receiver ACK aggregation: one ACK per this many in-order segments.
    /// 1 disables aggregation; 2 is classic delayed ACKs (the default);
    /// larger values model GRO coalescing at high rates, which makes
    /// unpaced senders bursty.
    pub ack_aggregation: u32,
    /// Delayed-ACK flush timeout for a partially filled aggregate.
    pub ack_flush_delay: SimDuration,
    /// Root RNG seed.
    pub seed: u64,
    /// Independent random loss probability at the bottleneck egress
    /// (fault injection for tests; 0 in all paper experiments).
    pub random_loss: f64,
}

impl Default for DumbbellConfig {
    fn default() -> Self {
        DumbbellConfig {
            bottleneck_bps: 1e9,
            access_multiple: 2.0,
            base_rtt: SimDuration::from_millis(20),
            rtt_jitter: 0.1,
            buffer_bdp: 1.0,
            mss_bytes: 1500,
            apps: Vec::new(),
            duration: SimDuration::from_secs(30),
            warmup: SimDuration::from_secs(10),
            ack_aggregation: 2,
            ack_flush_delay: SimDuration::from_millis(1),
            seed: 1,
            random_loss: 0.0,
        }
    }
}

impl DumbbellConfig {
    /// Bandwidth-delay product in bytes.
    pub fn bdp_bytes(&self) -> u64 {
        (self.bottleneck_bps * self.base_rtt.as_secs_f64() / 8.0) as u64
    }

    /// Bottleneck buffer in bytes (at least two segments, so a window can
    /// always make progress).
    pub fn buffer_bytes(&self) -> u64 {
        ((self.bdp_bytes() as f64 * self.buffer_bdp) as u64).max(2 * self.mss_bytes as u64)
    }

    /// Total number of flows across all applications.
    pub fn total_flows(&self) -> usize {
        self.apps.iter().map(|a| a.connections).sum()
    }

    /// Validate all fields.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.bottleneck_bps.is_nan() || self.bottleneck_bps <= 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "bottleneck_bps",
            });
        }
        if self.access_multiple.is_nan() || self.access_multiple < 1.0 {
            return Err(ConfigError::OutOfRange {
                field: "access_multiple",
            });
        }
        if self.base_rtt == SimDuration::ZERO {
            return Err(ConfigError::OutOfRange { field: "base_rtt" });
        }
        if !(0.0..0.9).contains(&self.rtt_jitter) {
            return Err(ConfigError::OutOfRange {
                field: "rtt_jitter",
            });
        }
        if self.buffer_bdp.is_nan() || self.buffer_bdp <= 0.0 {
            return Err(ConfigError::OutOfRange {
                field: "buffer_bdp",
            });
        }
        if self.mss_bytes < 64 {
            return Err(ConfigError::OutOfRange { field: "mss_bytes" });
        }
        if self.apps.is_empty() || self.apps.iter().any(|a| a.connections == 0) {
            return Err(ConfigError::NoTraffic);
        }
        if self.duration <= self.warmup {
            return Err(ConfigError::OutOfRange { field: "duration" });
        }
        if !(0.0..1.0).contains(&self.random_loss) {
            return Err(ConfigError::OutOfRange {
                field: "random_loss",
            });
        }
        if self.ack_aggregation == 0 {
            return Err(ConfigError::OutOfRange {
                field: "ack_aggregation",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> DumbbellConfig {
        DumbbellConfig {
            apps: vec![AppConfig::plain(CcKind::Reno)],
            ..Default::default()
        }
    }

    #[test]
    fn default_with_apps_is_valid() {
        assert!(valid().validate().is_ok());
    }

    #[test]
    fn bdp_math() {
        let c = valid();
        // 1 Gb/s * 20 ms / 8 = 2.5 MB.
        assert_eq!(c.bdp_bytes(), 2_500_000);
        assert_eq!(c.buffer_bytes(), 2_500_000);
    }

    #[test]
    fn buffer_floor_is_two_segments() {
        let c = DumbbellConfig {
            bottleneck_bps: 1e6,
            base_rtt: SimDuration::from_micros(100),
            buffer_bdp: 0.01,
            ..valid()
        };
        assert_eq!(c.buffer_bytes(), 2 * 1500);
    }

    #[test]
    fn rejects_bad_fields() {
        let mut c = valid();
        c.bottleneck_bps = 0.0;
        assert!(c.validate().is_err());

        let mut c = valid();
        c.apps.clear();
        assert_eq!(c.validate(), Err(ConfigError::NoTraffic));

        let mut c = valid();
        c.apps[0].connections = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoTraffic));

        let mut c = valid();
        c.warmup = c.duration;
        assert!(c.validate().is_err());

        let mut c = valid();
        c.random_loss = 1.0;
        assert!(c.validate().is_err());

        let mut c = valid();
        c.access_multiple = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn total_flows_sums_connections() {
        let c = DumbbellConfig {
            apps: vec![
                AppConfig {
                    connections: 2,
                    cc: CcKind::Reno,
                    paced: false,
                    pacing_ca_factor: 1.2,
                },
                AppConfig {
                    connections: 3,
                    cc: CcKind::Cubic,
                    paced: true,
                    pacing_ca_factor: 1.2,
                },
            ],
            ..Default::default()
        };
        assert_eq!(c.total_flows(), 5);
    }
}
