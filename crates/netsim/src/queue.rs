//! DropTail (FIFO, byte-bounded) queue — the bottleneck buffer.
//!
//! The paper's switch has a buffer of one bandwidth-delay product; the
//! experiments in §3 all hinge on how competing flows share this queue.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Statistics accumulated by a queue over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets dropped because the buffer was full.
    pub dropped: u64,
    /// Bytes dropped.
    pub dropped_bytes: u64,
    /// High-water mark of queue occupancy in bytes.
    pub max_occupancy_bytes: u64,
}

impl QueueStats {
    /// Fraction of arriving packets that were dropped.
    pub fn drop_rate(&self) -> f64 {
        let arrivals = self.enqueued + self.dropped;
        if arrivals == 0 {
            0.0
        } else {
            self.dropped as f64 / arrivals as f64
        }
    }
}

/// A byte-capacity DropTail queue.
#[derive(Debug)]
pub struct DropTailQueue {
    capacity_bytes: u64,
    occupancy_bytes: u64,
    packets: VecDeque<Packet>,
    stats: QueueStats,
}

impl DropTailQueue {
    /// Create a queue holding at most `capacity_bytes` of packets.
    pub fn new(capacity_bytes: u64) -> DropTailQueue {
        DropTailQueue {
            capacity_bytes,
            occupancy_bytes: 0,
            packets: VecDeque::new(),
            stats: QueueStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Current occupancy in bytes.
    pub fn occupancy_bytes(&self) -> u64 {
        self.occupancy_bytes
    }

    /// Current length in packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the queue holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Offer a packet. Returns `true` if accepted, `false` if dropped.
    ///
    /// A packet is accepted if it fits entirely within the remaining
    /// capacity (tail drop).
    pub fn offer(&mut self, pkt: Packet) -> bool {
        let size = pkt.size_bytes as u64;
        if self.occupancy_bytes + size > self.capacity_bytes {
            self.stats.dropped += 1;
            self.stats.dropped_bytes += size;
            false
        } else {
            self.occupancy_bytes += size;
            self.stats.enqueued += 1;
            self.stats.max_occupancy_bytes =
                self.stats.max_occupancy_bytes.max(self.occupancy_bytes);
            self.packets.push_back(pkt);
            true
        }
    }

    /// Dequeue the head packet.
    pub fn take(&mut self) -> Option<Packet> {
        let pkt = self.packets.pop_front()?;
        self.occupancy_bytes -= pkt.size_bytes as u64;
        Some(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use dessim::SimTime;

    fn pkt(seq: u64, size: u32) -> Packet {
        Packet {
            flow: FlowId(0),
            seq,
            size_bytes: size,
            is_retx: false,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(10_000);
        for i in 0..5 {
            assert!(q.offer(pkt(i, 1000)));
        }
        for i in 0..5 {
            assert_eq!(q.take().unwrap().seq, i);
        }
        assert!(q.take().is_none());
    }

    #[test]
    fn drops_when_full() {
        let mut q = DropTailQueue::new(2_500);
        assert!(q.offer(pkt(0, 1000)));
        assert!(q.offer(pkt(1, 1000)));
        assert!(!q.offer(pkt(2, 1000))); // 3000 > 2500
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().enqueued, 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn occupancy_conservation() {
        // Invariant: occupancy equals the sum of the sizes of held packets.
        let mut q = DropTailQueue::new(100_000);
        let mut expected = 0u64;
        for i in 0..50 {
            let size = 100 + (i as u32 * 37) % 1400;
            if q.offer(pkt(i, size)) {
                expected += size as u64;
            }
            if i % 3 == 0 {
                if let Some(p) = q.take() {
                    expected -= p.size_bytes as u64;
                }
            }
            assert_eq!(q.occupancy_bytes(), expected);
        }
    }

    #[test]
    fn drop_rate_computation() {
        let mut q = DropTailQueue::new(1_000);
        assert!(q.offer(pkt(0, 1000)));
        assert!(!q.offer(pkt(1, 1000)));
        assert!((q.stats().drop_rate() - 0.5).abs() < 1e-12);
        assert_eq!(q.stats().dropped_bytes, 1000);
    }

    #[test]
    fn high_water_mark_tracks_peak() {
        let mut q = DropTailQueue::new(10_000);
        q.offer(pkt(0, 4000));
        q.offer(pkt(1, 4000));
        q.take();
        q.take();
        q.offer(pkt(2, 1000));
        assert_eq!(q.stats().max_occupancy_bytes, 8000);
    }

    #[test]
    fn empty_queue_drop_rate_zero() {
        let q = DropTailQueue::new(100);
        assert_eq!(q.stats().drop_rate(), 0.0);
    }
}
