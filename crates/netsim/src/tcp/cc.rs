//! The congestion-control interface and shared helpers.

use crate::config::CcKind;
use dessim::{SimDuration, SimTime};

/// Everything a congestion controller may want to know about an ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Arrival time of the ACK.
    pub now: SimTime,
    /// Fresh RTT sample, when the triggering segment was not retransmitted.
    pub rtt_sample: Option<SimDuration>,
    /// Smoothed RTT after incorporating this sample.
    pub srtt: SimDuration,
    /// Minimum RTT observed on the connection.
    pub min_rtt: SimDuration,
    /// Segments newly acknowledged cumulatively by this ACK.
    pub newly_acked: u64,
    /// Total segments delivered over the connection's lifetime.
    pub delivered_total: u64,
    /// Delivery-rate sample in bits/s (BBR-style: delivered over the
    /// interval since the acked segment was sent), when computable.
    pub delivery_rate_bps: Option<f64>,
    /// Whether the sender is currently in fast recovery.
    pub in_recovery: bool,
    /// Segments still in flight after this ACK.
    pub inflight_pkts: u64,
}

/// A congestion control algorithm.
///
/// The sender owns loss detection and recovery bookkeeping; the algorithm
/// only decides the congestion window and (optionally) a pacing rate.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;

    /// Process an acknowledgment.
    fn on_ack(&mut self, ev: &AckEvent);

    /// A loss event was detected via duplicate ACKs (once per window).
    fn on_loss_event(&mut self, now: SimTime, inflight_pkts: u64);

    /// The retransmission timer fired.
    fn on_rto(&mut self, now: SimTime);

    /// Current congestion window in segments (fractional).
    fn cwnd_pkts(&self) -> f64;

    /// Pacing rate dictated by the algorithm itself (BBR), in bits/s.
    /// `None` means the algorithm does not pace; the flow may still be
    /// paced at the Linux cwnd-based rates if configured.
    fn pacing_rate_bps(&self, mss_bytes: u32) -> Option<f64>;

    /// Whether the algorithm considers itself in slow start (used to pick
    /// the Linux pacing factor).
    fn in_slow_start(&self) -> bool;
}

/// Instantiate a congestion controller.
pub fn build_cc(kind: CcKind, initial_cwnd: f64, mss_bytes: u32) -> Box<dyn CongestionControl> {
    match kind {
        CcKind::Reno => Box::new(super::reno::Reno::new(initial_cwnd)),
        CcKind::Cubic => Box::new(super::cubic::Cubic::new(initial_cwnd)),
        CcKind::Bbr => Box::new(super::bbr::Bbr::new(initial_cwnd, mss_bytes)),
    }
}

/// A max filter over a sliding window of "rounds" (used by BBR's
/// bottleneck-bandwidth estimator).
#[derive(Debug, Clone, Default)]
pub struct WindowedMax {
    entries: Vec<(u64, f64)>,
    window: u64,
}

impl WindowedMax {
    /// Filter keeping the max over the last `window` rounds.
    pub fn new(window: u64) -> WindowedMax {
        WindowedMax {
            entries: Vec::new(),
            window,
        }
    }

    /// Insert a sample observed in `round`.
    pub fn update(&mut self, round: u64, value: f64) {
        self.entries.retain(|&(r, _)| r + self.window > round);
        self.entries.push((round, value));
    }

    /// Current windowed max given the current round.
    pub fn max(&self, current_round: u64) -> Option<f64> {
        self.entries
            .iter()
            .filter(|&&(r, _)| r + self.window > current_round)
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_each_kind() {
        for kind in [CcKind::Reno, CcKind::Cubic, CcKind::Bbr] {
            let cc = build_cc(kind, 10.0, 1500);
            assert_eq!(cc.name(), kind.name());
            assert!(cc.cwnd_pkts() > 0.0);
        }
    }

    #[test]
    fn windowed_max_expires_old_samples() {
        let mut f = WindowedMax::new(3);
        f.update(0, 100.0);
        f.update(1, 50.0);
        assert_eq!(f.max(1), Some(100.0));
        // Round 3: sample from round 0 has aged out (0 + 3 !> 3).
        f.update(3, 60.0);
        assert_eq!(f.max(3), Some(60.0));
    }

    #[test]
    fn windowed_max_tracks_maximum() {
        let mut f = WindowedMax::new(10);
        for (r, v) in [(0, 5.0), (1, 9.0), (2, 3.0)] {
            f.update(r, v);
        }
        assert_eq!(f.max(2), Some(9.0));
    }

    #[test]
    fn empty_filter_returns_none() {
        let f = WindowedMax::new(5);
        assert_eq!(f.max(0), None);
    }
}
