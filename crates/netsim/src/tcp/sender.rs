//! The send-side TCP state machine: sliding window, SACK scoreboard
//! (RFC 6675-style pipe accounting), fast retransmit, RTO with go-back-N,
//! pacing hooks and BBR-style delivery-rate samples.
//!
//! Loss detection: an unSACKed segment is deemed lost once the highest
//! SACKed sequence is at least `DUP_ACK_THRESHOLD` (3) segments above it
//! (the sequence-based approximation of "three duplicate ACKs"). Lost
//! segments are queued for retransmission; the send loop services the
//! retransmission queue before new data, gated by `pipe < cwnd`.

use super::cc::{build_cc, AckEvent, CongestionControl};
use super::pacing::{cwnd_pacing_rate_bps, Pacer, LINUX_SS_FACTOR};
use super::rtt::RttEstimator;
use crate::config::CcKind;
use crate::metrics::FlowCounters;
use crate::packet::{Ack, AppId, FlowId, Packet};
use dessim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Segment-gap threshold for deeming a segment lost (mirrors the
/// classic three-duplicate-ACK rule).
const DUP_ACK_THRESHOLD: u64 = 3;
/// Initial congestion window in segments (Linux IW10).
const INITIAL_CWND: f64 = 10.0;
/// Maximum RTO backoff exponent.
const MAX_BACKOFF: u32 = 6;

/// Metadata retained per in-flight segment for RTT/rate sampling.
///
/// The extra timestamps implement the delivery-rate estimator of
/// draft-cheng-iccrg-delivery-rate-estimation: a sample's interval is the
/// *maximum* of the send-side and ack-side elapsed times, which prevents
/// overestimation when sending was bursty.
#[derive(Debug, Clone, Copy)]
struct PktMeta {
    sent_at: SimTime,
    delivered_at_send: u64,
    delivered_time_at_send: SimTime,
    first_sent_at_send: SimTime,
    is_retx: bool,
}

/// A bulk-transfer TCP sender (always has data to send).
pub struct Sender {
    flow: FlowId,
    app: AppId,
    mss: u32,
    paced: bool,
    pacing_ca_factor: f64,

    next_seq: u64,
    high_ack: u64,
    max_sent_seq: u64,

    /// SACKed segments above `high_ack`.
    sacked: BTreeSet<u64>,
    /// Segments deemed lost and awaiting retransmission.
    retx_queue: BTreeSet<u64>,
    /// Retransmitted segments not yet (S)ACKed, with retransmission time.
    /// Used to detect *lost retransmissions* (RACK-style reordering
    /// window), without which a dropped retransmission stalls until RTO.
    retx_inflight: BTreeMap<u64, SimTime>,
    /// Highest sequence already scanned for loss marking.
    loss_scan_frontier: u64,
    /// While `Some(p)`, in fast recovery until `high_ack >= p`.
    recovery_point: Option<u64>,

    cc: Box<dyn CongestionControl>,
    pacer: Pacer,
    rtt: RttEstimator,
    rtt_hint: SimDuration,

    rto_deadline: Option<SimTime>,
    rto_backoff: u32,
    pace_wake: Option<SimTime>,

    delivered: u64,
    /// Delivered count *including* SACKed segments (Linux `tp->delivered`),
    /// used for rate samples and round counting; smoother than the
    /// cumulative count under loss.
    delivered_rate_ctr: u64,
    /// Time of the most recent delivery (rate-sample bookkeeping).
    delivered_time: SimTime,
    /// Send time of the packet that started the current send window.
    first_sent_time: SimTime,
    meta: HashMap<u64, PktMeta>,

    /// Measurement counters (public: the harness snapshots them).
    pub counters: FlowCounters,
}

impl std::fmt::Debug for Sender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("flow", &self.flow)
            .field("next_seq", &self.next_seq)
            .field("high_ack", &self.high_ack)
            .field("cwnd", &self.cc.cwnd_pkts())
            .field("pipe", &self.pipe())
            .finish()
    }
}

impl Sender {
    /// Create a sender.
    ///
    /// `rtt_hint` seeds pacing-rate computation before the first RTT
    /// sample (a real sender knows a ballpark RTT from the handshake).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        flow: FlowId,
        app: AppId,
        cc_kind: CcKind,
        paced: bool,
        pacing_ca_factor: f64,
        mss: u32,
        rtt_hint: SimDuration,
        min_rto: SimDuration,
    ) -> Sender {
        Sender {
            flow,
            app,
            mss,
            paced,
            pacing_ca_factor,
            next_seq: 0,
            high_ack: 0,
            max_sent_seq: 0,
            sacked: BTreeSet::new(),
            retx_queue: BTreeSet::new(),
            retx_inflight: BTreeMap::new(),
            loss_scan_frontier: 0,
            recovery_point: None,
            cc: build_cc(cc_kind, INITIAL_CWND, mss),
            pacer: Pacer::new(),
            rtt: RttEstimator::new(min_rto),
            rtt_hint,
            rto_deadline: None,
            rto_backoff: 0,
            pace_wake: None,
            delivered: 0,
            delivered_rate_ctr: 0,
            delivered_time: SimTime::ZERO,
            first_sent_time: SimTime::ZERO,
            meta: HashMap::new(),
            counters: FlowCounters::default(),
        }
    }

    /// Owning application.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// Flow id.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Whether the sender is in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// Sequence-space outstanding (sent, not cumulatively acked).
    pub fn outstanding(&self) -> u64 {
        self.next_seq - self.high_ack
    }

    /// RFC 6675 pipe estimate: segments believed to be in the network.
    pub fn pipe(&self) -> u64 {
        self.outstanding() - self.sacked.len() as u64 - self.retx_queue.len() as u64
    }

    /// Congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd_pkts()
    }

    /// Congestion controller name (reports).
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Current RTO deadline (the network arms a timer for it lazily).
    pub fn rto_deadline(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// Earliest time the pacer will release the next blocked packet,
    /// if the last send attempt was pacing-blocked.
    pub fn pace_wake(&self) -> Option<SimTime> {
        self.pace_wake
    }

    /// Smoothed RTT (or the configuration hint before any sample).
    pub fn srtt(&self) -> SimDuration {
        self.rtt.srtt().unwrap_or(self.rtt_hint)
    }

    fn pacing_rate_bps(&self) -> Option<f64> {
        if let Some(rate) = self.cc.pacing_rate_bps(self.mss) {
            return Some(rate); // algorithm-dictated (BBR)
        }
        if self.paced {
            let factor = if self.cc.in_slow_start() {
                LINUX_SS_FACTOR
            } else {
                self.pacing_ca_factor
            };
            Some(cwnd_pacing_rate_bps(
                self.cc.cwnd_pkts(),
                self.mss,
                self.srtt(),
                factor,
            ))
        } else {
            None
        }
    }

    fn arm_rto(&mut self, now: SimTime) {
        let backoff = 1u64 << self.rto_backoff.min(MAX_BACKOFF);
        self.rto_deadline = Some(now + self.rtt.rto().saturating_mul(backoff));
    }

    fn transmit(&mut self, now: SimTime, seq: u64) -> Packet {
        let is_retx = seq < self.max_sent_seq;
        self.max_sent_seq = self.max_sent_seq.max(seq + 1);
        self.counters.segs_sent += 1;
        if is_retx {
            self.counters.segs_retx += 1;
        }
        self.meta.insert(
            seq,
            PktMeta {
                sent_at: now,
                delivered_at_send: self.delivered_rate_ctr,
                delivered_time_at_send: self.delivered_time,
                first_sent_at_send: self.first_sent_time,
                is_retx,
            },
        );
        self.first_sent_time = now;
        if let Some(rate) = self.pacing_rate_bps() {
            self.pacer.on_send(now, self.mss, rate);
        }
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        Packet {
            flow: self.flow,
            seq,
            size_bytes: self.mss,
            is_retx,
            sent_at: now,
        }
    }

    fn try_send(&mut self, now: SimTime, out: &mut Vec<Packet>) {
        self.pace_wake = None;
        loop {
            let cwnd = self.cc.cwnd_pkts().floor().max(1.0);
            if (self.pipe() as f64) >= cwnd {
                break;
            }
            if self.pacing_rate_bps().is_some() && !self.pacer.ready(now) {
                self.pace_wake = Some(self.pacer.next_send());
                break;
            }
            // Retransmissions take priority over new data (RFC 6675).
            if let Some(&seq) = self.retx_queue.iter().next() {
                self.retx_queue.remove(&seq);
                self.retx_inflight.insert(seq, now);
                out.push(self.transmit(now, seq));
            } else {
                let seq = self.next_seq;
                out.push(self.transmit(now, seq));
                self.next_seq += 1;
            }
        }
    }

    /// Apply SACK blocks to the scoreboard and update loss marks.
    fn update_scoreboard(&mut self, ack: &Ack) {
        for block in ack.sacks.iter().flatten() {
            let start = block.start.max(self.high_ack);
            let end = block.end.min(self.next_seq);
            for q in start..end {
                if self.sacked.insert(q) {
                    self.delivered_rate_ctr += 1;
                    self.retx_queue.remove(&q);
                    self.retx_inflight.remove(&q);
                }
            }
        }
        // Loss marking: unSACKed segments sufficiently below the highest
        // SACKed sequence are lost. Scan each sequence once.
        if let Some(&high_sacked) = self.sacked.iter().next_back() {
            let limit = high_sacked.saturating_sub(DUP_ACK_THRESHOLD - 1);
            let from = self.loss_scan_frontier.max(self.high_ack);
            for s in from..limit {
                if !self.sacked.contains(&s) {
                    self.retx_queue.insert(s);
                }
            }
            self.loss_scan_frontier = self.loss_scan_frontier.max(limit);
        }
    }

    /// Re-mark retransmissions that have themselves been lost: if a
    /// retransmitted segment is still unSACKed one reordering window
    /// (1.25 × sRTT) after it was retransmitted, queue it again.
    fn check_lost_retransmissions(&mut self, now: SimTime) {
        if self.retx_inflight.is_empty() {
            return;
        }
        let reo_wnd = self.srtt().mul_f64(1.25);
        let mut expired = Vec::new();
        for (&seq, &sent) in &self.retx_inflight {
            if now.since(sent.min(now)) > reo_wnd {
                expired.push(seq);
            }
        }
        for seq in expired {
            self.retx_inflight.remove(&seq);
            self.retx_queue.insert(seq);
        }
    }

    /// Kick off the connection (initial window burst or paced trickle).
    pub fn start(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        self.try_send(now, &mut out);
        out
    }

    /// The pace timer fired: release whatever the window now allows.
    pub fn on_pace_timer(&mut self, now: SimTime) -> Vec<Packet> {
        let mut out = Vec::new();
        self.try_send(now, &mut out);
        out
    }

    /// Process an incoming cumulative ACK. Returns packets to transmit.
    pub fn on_ack(&mut self, now: SimTime, ack: Ack) -> Vec<Packet> {
        debug_assert_eq!(ack.flow, self.flow);
        let mut out = Vec::new();

        let mut newly = 0u64;
        let mut rtt_sample = None;
        let mut rate_sample = None;

        if ack.cum_ack > self.high_ack {
            // A stale incarnation can be outrun by in-flight ACKs after a
            // go-back-N reset; never let the ACK point pass the send point.
            self.next_seq = self.next_seq.max(ack.cum_ack);
            newly = ack.cum_ack - self.high_ack;

            // RTT sample (Karn-filtered by the receiver's echo).
            rtt_sample = ack.echo_sent_at.map(|sent| now.since(sent));
            if let Some(s) = rtt_sample {
                self.rtt.update(s);
                self.counters.record_rtt(s.as_secs_f64());
            }

            // Delivery-rate sample from the triggering segment's metadata.
            self.delivered += newly;
            self.counters.segs_delivered += newly;
            // Count only the segments not already credited via SACK.
            let sacked_in_range = self.sacked.range(self.high_ack..ack.cum_ack).count() as u64;
            self.delivered_rate_ctr += newly - sacked_in_range;
            rate_sample = self.meta.get(&ack.for_seq).and_then(|m| {
                if m.is_retx {
                    return None;
                }
                // interval = max(send_elapsed, ack_elapsed) guards against
                // overestimation from bursty sends (delivery-rate draft).
                let send_elapsed = m.sent_at.since(m.first_sent_at_send.min(m.sent_at));
                let ack_elapsed = now.since(m.delivered_time_at_send.min(now));
                let interval = send_elapsed.max(ack_elapsed).as_secs_f64();
                if interval <= 0.0 {
                    return None;
                }
                let delivered_delta = self.delivered_rate_ctr - m.delivered_at_send;
                Some(delivered_delta as f64 * self.mss as f64 * 8.0 / interval)
            });
            self.delivered_time = now;
            for s in self.high_ack..ack.cum_ack {
                self.meta.remove(&s);
            }
            self.high_ack = ack.cum_ack;
            self.rto_backoff = 0;

            // Prune scoreboard below the new cumulative point.
            self.sacked = self.sacked.split_off(&self.high_ack);
            self.retx_queue = self.retx_queue.split_off(&self.high_ack);
            self.retx_inflight = self.retx_inflight.split_off(&self.high_ack);
            self.loss_scan_frontier = self.loss_scan_frontier.max(self.high_ack);

            if let Some(rp) = self.recovery_point {
                if self.high_ack >= rp {
                    self.recovery_point = None;
                }
            }
        }

        self.update_scoreboard(&ack);
        self.check_lost_retransmissions(now);

        // Enter fast recovery when fresh losses appear outside recovery.
        if self.recovery_point.is_none() && !self.retx_queue.is_empty() {
            self.recovery_point = Some(self.next_seq);
            // Halve from the flight size (outstanding minus SACKed), the
            // quantity that was actually in the network at detection.
            let flight = self.outstanding() - self.sacked.len() as u64;
            self.cc.on_loss_event(now, flight.max(1));
            self.counters.loss_events += 1;
            // Fast retransmit: the first lost segment goes out immediately,
            // bypassing the pipe gate (this *is* the fast retransmission).
            if let Some(&seq) = self.retx_queue.iter().next() {
                self.retx_queue.remove(&seq);
                self.retx_inflight.insert(seq, now);
                out.push(self.transmit(now, seq));
            }
        }

        if newly > 0 {
            let ev = AckEvent {
                now,
                rtt_sample,
                srtt: self.srtt(),
                min_rtt: self.rtt.min_rtt().unwrap_or(self.rtt_hint),
                newly_acked: newly,
                delivered_total: self.delivered_rate_ctr,
                delivery_rate_bps: rate_sample,
                in_recovery: self.recovery_point.is_some(),
                inflight_pkts: self.pipe(),
            };
            self.cc.on_ack(&ev);
            if self.outstanding() == 0 {
                self.rto_deadline = None;
            } else {
                self.arm_rto(now);
            }
        }

        self.try_send(now, &mut out);
        out
    }

    /// The (lazily scheduled) RTO timer fired. Checks the live deadline;
    /// on a real expiry performs go-back-N and slow-start restart.
    pub fn on_rto_fire(&mut self, now: SimTime) -> Vec<Packet> {
        match self.rto_deadline {
            Some(d) if d <= now => {}
            _ => return Vec::new(),
        }
        if self.outstanding() == 0 {
            self.rto_deadline = None;
            return Vec::new();
        }
        self.counters.rtos += 1;
        self.cc.on_rto(now);
        // Keep the SACK scoreboard (RFC 6675 §5.1: retain state after a
        // timeout) and mark every unSACKed outstanding segment lost; the
        // head retransmits first and recovery proceeds SACK-driven rather
        // than by go-back-N duplication.
        self.recovery_point = Some(self.next_seq);
        self.retx_inflight.clear();
        for seq in self.high_ack..self.next_seq {
            if !self.sacked.contains(&seq) {
                self.retx_queue.insert(seq);
            }
        }
        self.loss_scan_frontier = self.next_seq;
        self.rto_backoff = (self.rto_backoff + 1).min(MAX_BACKOFF);
        self.rto_deadline = None;
        let mut out = Vec::new();
        self.try_send(now, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{SackBlock, MAX_SACK_BLOCKS};

    fn sender(cc: CcKind, paced: bool) -> Sender {
        Sender::new(
            FlowId(0),
            AppId(0),
            cc,
            paced,
            1.2,
            1500,
            SimDuration::from_millis(20),
            SimDuration::from_millis(200),
        )
    }

    fn no_sacks() -> [Option<SackBlock>; MAX_SACK_BLOCKS] {
        [None; MAX_SACK_BLOCKS]
    }

    fn ack(cum: u64, for_seq: u64, sent_at: SimTime) -> Ack {
        Ack {
            flow: FlowId(0),
            cum_ack: cum,
            for_seq,
            sacks: no_sacks(),
            echo_sent_at: Some(sent_at),
        }
    }

    /// Duplicate ACK carrying a SACK of `start..end`.
    fn sack_ack(cum: u64, start: u64, end: u64) -> Ack {
        let mut sacks = no_sacks();
        sacks[0] = Some(SackBlock { start, end });
        Ack {
            flow: FlowId(0),
            cum_ack: cum,
            for_seq: end - 1,
            sacks,
            echo_sent_at: None,
        }
    }

    #[test]
    fn initial_window_burst() {
        let mut s = sender(CcKind::Reno, false);
        let pkts = s.start(SimTime::ZERO);
        assert_eq!(pkts.len(), 10); // IW10
        assert_eq!(s.outstanding(), 10);
        assert_eq!(s.pipe(), 10);
        assert!(s.rto_deadline().is_some());
        assert!(pkts
            .iter()
            .enumerate()
            .all(|(i, p)| p.seq == i as u64 && !p.is_retx));
    }

    #[test]
    fn paced_start_releases_one_packet() {
        let mut s = sender(CcKind::Reno, true);
        let pkts = s.start(SimTime::ZERO);
        assert_eq!(pkts.len(), 1, "pacer releases one packet, then blocks");
        assert!(s.pace_wake().is_some());
        let wake = s.pace_wake().unwrap();
        let pkts = s.on_pace_timer(wake);
        assert_eq!(pkts.len(), 1);
    }

    #[test]
    fn acks_advance_window_and_grow_cwnd() {
        let mut s = sender(CcKind::Reno, false);
        let t0 = SimTime::ZERO;
        s.start(t0);
        let t1 = t0 + SimDuration::from_millis(20);
        let sent = s.on_ack(t1, ack(1, 0, t0));
        // Slow start: one ACK frees one slot and grows cwnd by 1 => 2 sends.
        assert_eq!(sent.len(), 2);
        assert_eq!(s.counters.segs_delivered, 1);
        assert!(s.srtt() == SimDuration::from_millis(20));
    }

    #[test]
    fn sack_gap_triggers_fast_retransmit() {
        let mut s = sender(CcKind::Reno, false);
        let t0 = SimTime::ZERO;
        s.start(t0); // 0..10 in flight
        let t = t0 + SimDuration::from_millis(25);
        // Seq 0 lost. SACKs for 1..2, then 1..3, then 1..4 arrive.
        assert!(!s.in_recovery());
        s.on_ack(t, sack_ack(0, 1, 2));
        s.on_ack(t, sack_ack(0, 1, 3));
        assert!(!s.in_recovery(), "gap below threshold");
        let pkts = s.on_ack(t, sack_ack(0, 1, 4));
        // Highest sacked = 3 >= 0 + 3 => seq 0 deemed lost and retransmitted.
        assert!(s.in_recovery());
        assert!(
            pkts.iter().any(|p| p.seq == 0 && p.is_retx),
            "pkts {pkts:?}"
        );
        assert_eq!(s.counters.loss_events, 1);
    }

    #[test]
    fn recovery_exits_on_full_ack_and_sending_resumes() {
        let mut s = sender(CcKind::Reno, false);
        let t0 = SimTime::ZERO;
        s.start(t0);
        let t = t0 + SimDuration::from_millis(25);
        s.on_ack(t, sack_ack(0, 1, 4));
        assert!(s.in_recovery());
        // Full cumulative ACK of everything sent so far.
        let t2 = t + SimDuration::from_millis(25);
        let high = s.next_seq;
        let pkts = s.on_ack(t2, ack(high, high - 1, t0));
        assert!(!s.in_recovery());
        // Bulk sender resumes with new data.
        assert!(pkts.iter().all(|p| p.seq >= high));
        assert!(!pkts.is_empty());
    }

    #[test]
    fn multiple_holes_all_retransmitted() {
        let mut s = sender(CcKind::Reno, false);
        let t0 = SimTime::ZERO;
        s.start(t0); // 0..10
        let t = t0 + SimDuration::from_millis(25);
        // Holes at 0,1,2; 3..10 sacked.
        let pkts = s.on_ack(t, sack_ack(0, 3, 10));
        let retx: Vec<u64> = pkts.iter().filter(|p| p.is_retx).map(|p| p.seq).collect();
        // The first hole is fast-retransmitted immediately; the others are
        // either sent now (pipe permitting) or queued for retransmission.
        assert!(retx.contains(&0), "retx {retx:?}");
        let pending: Vec<u64> = s.retx_queue.iter().copied().collect();
        for hole in [1u64, 2] {
            assert!(
                retx.contains(&hole) || pending.contains(&hole),
                "hole {hole} neither sent nor queued (retx {retx:?}, pending {pending:?})"
            );
        }
        // Only one loss event (one recovery episode).
        assert_eq!(s.counters.loss_events, 1);
        // Follow-up ACK progress releases the remaining holes.
        let t2 = t + SimDuration::from_millis(5);
        let pkts2 = s.on_ack(t2, ack(1, 0, t0));
        let all_retx: Vec<u64> = retx
            .into_iter()
            .chain(pkts2.iter().filter(|p| p.is_retx).map(|p| p.seq))
            .collect();
        assert!(
            all_retx.contains(&1) || s.retx_queue.is_empty(),
            "{all_retx:?}"
        );
    }

    #[test]
    fn pipe_accounts_for_sacked_and_lost() {
        let mut s = sender(CcKind::Reno, false);
        s.start(SimTime::ZERO);
        assert_eq!(s.pipe(), 10);
        let t = SimTime::ZERO + SimDuration::from_millis(25);
        // SACK 5..10 => 5 sacked; seqs 0..5 below 9-2 => lost.
        // (retransmissions go out immediately, so pipe partially refills)
        let pkts = s.on_ack(t, sack_ack(0, 5, 10));
        let retx_count = pkts.iter().filter(|p| p.is_retx).count() as u64;
        // outstanding = 10 (+ maybe new data), sacked = 5.
        assert!(s.pipe() <= s.outstanding() - 5 + retx_count);
    }

    #[test]
    fn rto_marks_all_outstanding_lost() {
        let mut s = sender(CcKind::Reno, false);
        let t0 = SimTime::ZERO;
        s.start(t0); // 0..10 in flight
        let deadline = s.rto_deadline().unwrap();
        let pkts = s.on_rto_fire(deadline);
        assert_eq!(s.counters.rtos, 1);
        // cwnd collapsed to 1 → exactly one retransmission, of the head.
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].seq, 0);
        assert!(pkts[0].is_retx);
        // The scoreboard is retained: remaining outstanding segments are
        // queued as lost rather than blindly re-sent (no go-back-N).
        assert_eq!(s.outstanding(), 10);
        assert_eq!(s.retx_queue.len(), 9);
        // RTO timer re-armed with backoff for the retransmission.
        assert!(s.rto_deadline().unwrap() > deadline);
    }

    #[test]
    fn rto_fire_before_deadline_is_noop() {
        let mut s = sender(CcKind::Reno, false);
        s.start(SimTime::ZERO);
        let early = SimTime::from_nanos(1);
        assert!(s.on_rto_fire(early).is_empty());
        assert_eq!(s.counters.rtos, 0);
    }

    #[test]
    fn rto_backoff_doubles_deadline() {
        let mut s = sender(CcKind::Reno, false);
        s.start(SimTime::ZERO);
        let d1 = s.rto_deadline().unwrap();
        s.on_rto_fire(d1);
        let d2 = s.rto_deadline().unwrap();
        let gap1 = d1.since(SimTime::ZERO).as_secs_f64();
        let gap2 = d2.since(d1).as_secs_f64();
        assert!(
            gap2 > 1.5 * gap1,
            "backoff should roughly double: {gap1} {gap2}"
        );
    }

    #[test]
    fn stale_ack_after_go_back_n_does_not_corrupt_state() {
        let mut s = sender(CcKind::Reno, false);
        let t0 = SimTime::ZERO;
        s.start(t0); // 0..10 in flight
        let deadline = s.rto_deadline().unwrap();
        s.on_rto_fire(deadline); // next_seq rolled back to 0, resends seq 0
                                 // A stale ACK for the pre-RTO flight arrives late.
        let t = deadline + SimDuration::from_millis(5);
        s.on_ack(t, ack(7, 6, t0));
        // The send point must never lag the cumulative ACK.
        assert!(s.next_seq >= s.high_ack);
        assert_eq!(s.high_ack, 7);
        // pipe() must not underflow.
        let _ = s.pipe();
    }

    #[test]
    fn delivery_counter_monotone() {
        let mut s = sender(CcKind::Cubic, false);
        let t0 = SimTime::ZERO;
        s.start(t0);
        let mut t = t0;
        for i in 0..10u64 {
            t += SimDuration::from_millis(2);
            s.on_ack(t, ack(i + 1, i, t0));
        }
        assert_eq!(s.counters.segs_delivered, 10);
        assert_eq!(s.outstanding() + 10, s.next_seq);
    }

    #[test]
    fn bbr_sender_is_always_paced() {
        let mut s = sender(CcKind::Bbr, false);
        let pkts = s.start(SimTime::ZERO);
        // BBR paces from the very first packet.
        assert_eq!(pkts.len(), 1);
        assert!(s.pace_wake().is_some());
    }

    #[test]
    fn stale_ack_ignored() {
        let mut s = sender(CcKind::Reno, false);
        let t0 = SimTime::ZERO;
        s.start(t0);
        let t1 = t0 + SimDuration::from_millis(20);
        s.on_ack(t1, ack(5, 4, t0));
        let before = s.counters.segs_delivered;
        s.on_ack(
            t1,
            Ack {
                flow: FlowId(0),
                cum_ack: 3,
                for_seq: 2,
                sacks: no_sacks(),
                echo_sent_at: None,
            },
        );
        assert_eq!(s.counters.segs_delivered, before);
        assert_eq!(s.high_ack, 5);
    }

    #[test]
    fn sack_of_everything_unblocks_new_data() {
        // SACKed-but-not-cum-acked segments free pipe for new data
        // (the "limited transmit" effect falls out of pipe accounting).
        let mut s = sender(CcKind::Reno, false);
        let t0 = SimTime::ZERO;
        s.start(t0);
        let t = t0 + SimDuration::from_millis(25);
        let pkts = s.on_ack(t, sack_ack(0, 1, 3)); // 2 sacked, gap below threshold
                                                   // pipe = 10 - 2 = 8 < cwnd 10 => 2 new segments go out.
        assert_eq!(pkts.len(), 2);
        assert!(pkts.iter().all(|p| !p.is_retx));
    }
}
