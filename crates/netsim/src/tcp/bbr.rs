//! BBR v1 congestion control (Cardwell et al., "BBR: Congestion-Based
//! Congestion Control", CACM 2017).
//!
//! Model-based control: estimate the bottleneck bandwidth (windowed max of
//! delivery-rate samples over 10 rounds) and the round-trip propagation
//! delay (windowed min over 10 s, refreshed by ProbeRTT), then pace at
//! `pacing_gain × BtlBw` with an in-flight cap of `cwnd_gain × BDP`.
//! Loss is not a congestion signal — which is exactly why BBR competes
//! unfairly against loss-based algorithms in shallow buffers (§3.3 of the
//! paper).

use super::cc::{AckEvent, CongestionControl, WindowedMax};
use dessim::{SimDuration, SimTime};

/// Startup/Drain gain: 2/ln(2).
const HIGH_GAIN: f64 = 2.885;
/// ProbeBW pacing-gain cycle.
const CYCLE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Window (in rounds) of the bandwidth max filter.
const BW_WINDOW_ROUNDS: u64 = 10;
/// Max age of the min-RTT estimate before ProbeRTT.
const RTPROP_MAX_AGE: SimDuration = SimDuration::from_secs(10);
/// Duration cwnd is held at minimum during ProbeRTT.
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// Minimal window in segments.
const MIN_CWND: f64 = 4.0;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// BBR v1 state.
#[derive(Debug)]
pub struct Bbr {
    state: State,
    cwnd: f64,
    pacing_gain: f64,
    cwnd_gain: f64,

    bw_filter: WindowedMax,
    /// Round-trip propagation estimate (seconds).
    rt_prop_s: f64,
    rt_prop_stamp: SimTime,

    round_count: u64,
    next_round_delivered: u64,

    full_bw: f64,
    full_bw_count: u32,
    filled_pipe: bool,

    cycle_index: usize,
    cycle_stamp: SimTime,

    probe_rtt_done_stamp: Option<SimTime>,
    prior_cwnd: f64,
    /// In packet-conservation mode (loss recovery): cwnd tracks inflight.
    packet_conservation: bool,

    /// Initial window, used before the model has any samples.
    initial_cwnd: f64,
    mss_bytes: u32,
    last_srtt_s: f64,
}

impl Bbr {
    /// Create with the given initial window (segments) and segment size.
    pub fn new(initial_cwnd: f64, mss_bytes: u32) -> Bbr {
        Bbr {
            state: State::Startup,
            cwnd: initial_cwnd,
            pacing_gain: HIGH_GAIN,
            cwnd_gain: HIGH_GAIN,
            bw_filter: WindowedMax::new(BW_WINDOW_ROUNDS),
            rt_prop_s: f64::INFINITY,
            rt_prop_stamp: SimTime::ZERO,
            round_count: 0,
            next_round_delivered: 0,
            full_bw: 0.0,
            full_bw_count: 0,
            filled_pipe: false,
            cycle_index: 0,
            cycle_stamp: SimTime::ZERO,
            probe_rtt_done_stamp: None,
            prior_cwnd: initial_cwnd,
            packet_conservation: false,
            initial_cwnd,
            mss_bytes,
            last_srtt_s: 0.0,
        }
    }

    /// Current bottleneck-bandwidth estimate in bits/s.
    pub fn btl_bw_bps(&self) -> Option<f64> {
        self.bw_filter.max(self.round_count)
    }

    /// BDP in segments for the current model.
    fn bdp_pkts(&self, mss: u32, gain: f64) -> Option<f64> {
        let bw = self.btl_bw_bps()?;
        if !self.rt_prop_s.is_finite() {
            return None;
        }
        Some(gain * bw * self.rt_prop_s / (mss as f64 * 8.0))
    }

    fn enter_probe_bw(&mut self, now: SimTime) {
        self.state = State::ProbeBw;
        self.pacing_gain = 1.0;
        self.cwnd_gain = 2.0;
        // Start just past the 1.25 phase so freshly converged flows do not
        // all probe in lockstep; v1 randomizes similarly.
        self.cycle_index = (2 + (now.as_nanos() % 6) as usize) % 8;
        self.cycle_stamp = now;
    }

    fn check_cycle_phase(&mut self, now: SimTime, inflight: u64, mss: u32) {
        if self.state != State::ProbeBw {
            return;
        }
        let phase_len = SimDuration::from_secs_f64(self.rt_prop_s.max(1e-4));
        let elapsed = now.since(self.cycle_stamp.min(now));
        let advance = if CYCLE_GAINS[self.cycle_index] == 0.75 {
            // Leave the drain phase as soon as the queue we built is gone.
            elapsed >= phase_len
                || self
                    .bdp_pkts(mss, 1.0)
                    .is_some_and(|bdp| (inflight as f64) <= bdp)
        } else {
            elapsed >= phase_len
        };
        if advance {
            self.cycle_index = (self.cycle_index + 1) % 8;
            self.cycle_stamp = now;
        }
        self.pacing_gain = CYCLE_GAINS[self.cycle_index];
    }

    fn check_full_pipe(&mut self, round_start: bool) {
        if self.filled_pipe || !round_start {
            return;
        }
        let bw = self.btl_bw_bps().unwrap_or(0.0);
        if bw >= self.full_bw * 1.25 {
            self.full_bw = bw;
            self.full_bw_count = 0;
        } else {
            self.full_bw_count += 1;
            if self.full_bw_count >= 3 {
                self.filled_pipe = true;
            }
        }
    }

    fn update_cwnd(&mut self, ev: &AckEvent, mss: u32) {
        if self.state == State::ProbeRtt {
            self.cwnd = MIN_CWND;
            return;
        }
        // Packet conservation throughout loss recovery (bbr_set_cwnd in
        // Linux): the window tracks what is actually in flight, which is
        // what makes BBRv1 yield ground to loss-based algorithms while
        // they are in their multiplicative-decrease phase.
        if ev.in_recovery {
            if self.packet_conservation {
                self.cwnd = (ev.inflight_pkts as f64 + ev.newly_acked as f64).max(MIN_CWND);
            }
            return;
        }
        if self.packet_conservation {
            // Recovery ended: resume normal growth from conserved state.
            // (We deliberately do not restore the pre-recovery window in
            // one jump; regrowing toward the BDP target avoids re-bursting
            // into a queue that just overflowed.)
            self.packet_conservation = false;
        }
        let target = match self.bdp_pkts(mss, self.cwnd_gain) {
            Some(t) => t.max(MIN_CWND),
            None => self.initial_cwnd.max(MIN_CWND),
        };
        if self.filled_pipe {
            self.cwnd = (self.cwnd + ev.newly_acked as f64).min(target);
        } else {
            // Startup: grow without the target cap so probing can continue.
            self.cwnd += ev.newly_acked as f64;
            if self.cwnd > target && self.btl_bw_bps().is_some() {
                self.cwnd = self.cwnd.min(target.max(self.initial_cwnd * 2.0));
            }
        }
        self.cwnd = self.cwnd.max(MIN_CWND);
    }
}

impl CongestionControl for Bbr {
    fn name(&self) -> &'static str {
        "bbr"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        let now = ev.now;
        let mss = self.mss_bytes;
        self.last_srtt_s = ev.srtt.as_secs_f64();

        // Round accounting.
        let round_start = ev.delivered_total >= self.next_round_delivered;
        if round_start {
            self.round_count += 1;
            self.next_round_delivered = ev.delivered_total + ev.inflight_pkts;
        }

        // Model updates.
        if let Some(rate) = ev.delivery_rate_bps {
            if rate > 0.0 {
                self.bw_filter.update(self.round_count, rate);
            }
        }
        // Compute staleness BEFORE refreshing the estimate: the same flag
        // both admits a higher sample and triggers ProbeRTT entry below
        // (mirrors BBRUpdateRTprop / BBRCheckProbeRTT ordering in the
        // reference pseudocode).
        let rt_prop_expired = now.since(self.rt_prop_stamp.min(now)) > RTPROP_MAX_AGE;
        if let Some(rtt) = ev.rtt_sample {
            let rtt_s = rtt.as_secs_f64();
            if rtt_s <= self.rt_prop_s || rt_prop_expired {
                self.rt_prop_s = rtt_s;
                self.rt_prop_stamp = now;
            }
        }

        // State machine.
        self.check_full_pipe(round_start);
        match self.state {
            State::Startup => {
                if self.filled_pipe {
                    self.state = State::Drain;
                    self.pacing_gain = 1.0 / HIGH_GAIN;
                    self.cwnd_gain = HIGH_GAIN;
                }
            }
            State::Drain => {
                if let Some(bdp) = self.bdp_pkts(mss, 1.0) {
                    if (ev.inflight_pkts as f64) <= bdp {
                        self.enter_probe_bw(now);
                    }
                }
            }
            State::ProbeBw => {}
            State::ProbeRtt => {
                if self.probe_rtt_done_stamp.is_none() && ev.inflight_pkts as f64 <= MIN_CWND {
                    self.probe_rtt_done_stamp = Some(
                        now + PROBE_RTT_DURATION.max(SimDuration::from_secs_f64(self.last_srtt_s)),
                    );
                }
                if let Some(done) = self.probe_rtt_done_stamp {
                    if now >= done {
                        self.rt_prop_stamp = now;
                        self.cwnd = self.prior_cwnd;
                        if self.filled_pipe {
                            self.enter_probe_bw(now);
                        } else {
                            self.state = State::Startup;
                            self.pacing_gain = HIGH_GAIN;
                            self.cwnd_gain = HIGH_GAIN;
                        }
                        self.probe_rtt_done_stamp = None;
                    }
                }
            }
        }

        // ProbeRTT entry: the min-RTT estimate had gone stale.
        if self.state != State::ProbeRtt && rt_prop_expired && ev.rtt_sample.is_some() {
            self.state = State::ProbeRtt;
            self.pacing_gain = 1.0;
            self.prior_cwnd = self.cwnd;
            self.probe_rtt_done_stamp = None;
        }

        self.check_cycle_phase(now, ev.inflight_pkts, mss);
        self.update_cwnd(ev, mss);
    }

    fn on_loss_event(&mut self, _now: SimTime, inflight_pkts: u64) {
        // BBR v1 does not reduce its *model* on loss, but Linux's
        // implementation applies packet conservation on recovery entry:
        // cwnd collapses to the data actually in flight and tracks it for
        // the rest of the recovery episode (bbr_save_cwnd / bbr_set_cwnd),
        // restoring the saved window afterwards.
        if !self.packet_conservation {
            self.prior_cwnd = self.cwnd;
        }
        self.packet_conservation = true;
        self.cwnd = (inflight_pkts as f64 + 1.0).max(MIN_CWND);
    }

    fn on_rto(&mut self, _now: SimTime) {
        // Conservative restart after a timeout.
        self.prior_cwnd = self.cwnd;
        self.cwnd = MIN_CWND;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }

    fn pacing_rate_bps(&self, mss_bytes: u32) -> Option<f64> {
        match self.btl_bw_bps() {
            Some(bw) => Some((self.pacing_gain * bw).max(1e3)),
            None => {
                // No samples yet: pace the initial window over the
                // smoothed RTT (or a 10 ms guess before any sample).
                let rtt = if self.last_srtt_s > 0.0 {
                    self.last_srtt_s
                } else {
                    0.01
                };
                Some(HIGH_GAIN * self.initial_cwnd * mss_bytes as f64 * 8.0 / rtt)
            }
        }
    }

    fn in_slow_start(&self) -> bool {
        self.state == State::Startup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(
        secs: f64,
        rtt_ms: u64,
        newly: u64,
        delivered: u64,
        rate: f64,
        inflight: u64,
    ) -> AckEvent {
        AckEvent {
            now: SimTime::from_nanos((secs * 1e9) as u64),
            rtt_sample: Some(SimDuration::from_millis(rtt_ms)),
            srtt: SimDuration::from_millis(rtt_ms),
            min_rtt: SimDuration::from_millis(rtt_ms),
            newly_acked: newly,
            delivered_total: delivered,
            delivery_rate_bps: Some(rate),
            in_recovery: false,
            inflight_pkts: inflight,
        }
    }

    /// Drive BBR with a steady 100 Mb/s delivery rate and 20 ms RTT.
    fn drive_steady(b: &mut Bbr, start: f64, steps: usize) -> f64 {
        let mut delivered = 0;
        let mut t = start;
        for _ in 0..steps {
            delivered += 10;
            t += 0.02;
            b.on_ack(&ack(t, 20, 10, delivered, 100e6, 20));
        }
        t
    }

    #[test]
    fn startup_exits_when_bandwidth_plateaus() {
        let mut b = Bbr::new(10.0, 1500);
        assert!(b.in_slow_start());
        drive_steady(&mut b, 0.0, 50);
        // Bandwidth stopped growing => pipe filled => left Startup.
        assert!(b.filled_pipe);
        assert!(!b.in_slow_start());
    }

    #[test]
    fn converges_to_probe_bw() {
        let mut b = Bbr::new(10.0, 1500);
        drive_steady(&mut b, 0.0, 200);
        assert_eq!(b.state, State::ProbeBw);
        // In ProbeBW the pacing gain cycles around 1.0.
        assert!(CYCLE_GAINS.contains(&b.pacing_gain));
    }

    #[test]
    fn bandwidth_estimate_tracks_delivery_rate() {
        let mut b = Bbr::new(10.0, 1500);
        drive_steady(&mut b, 0.0, 100);
        let bw = b.btl_bw_bps().unwrap();
        assert!((bw - 100e6).abs() / 100e6 < 0.01, "bw {bw}");
    }

    #[test]
    fn cwnd_capped_near_two_bdp_after_convergence() {
        let mut b = Bbr::new(10.0, 1500);
        drive_steady(&mut b, 0.0, 500);
        // BDP = 100 Mb/s * 20 ms / (1500*8) ≈ 167 pkts; cwnd_gain = 2.
        let cwnd = b.cwnd_pkts();
        assert!(cwnd > 150.0 && cwnd < 400.0, "cwnd {cwnd}");
    }

    #[test]
    fn loss_applies_packet_conservation_not_model_reduction() {
        let mut b = Bbr::new(10.0, 1500);
        drive_steady(&mut b, 0.0, 200);
        let bw_before = b.btl_bw_bps().unwrap();
        b.on_loss_event(SimTime::ZERO, 100);
        // cwnd collapses to inflight + 1 (packet conservation)...
        assert_eq!(b.cwnd_pkts(), 101.0);
        // ...but the bandwidth model is untouched.
        assert_eq!(b.btl_bw_bps().unwrap(), bw_before);
        // And the window regrows from conserved state on further acks.
        // Continue the ack clock where drive_steady left off so the
        // min-RTT estimate does not go stale mid-test.
        let mut delivered = 20_000;
        let mut t = 4.0;
        for _ in 0..50 {
            delivered += 10;
            t += 0.02;
            b.on_ack(&ack(t, 20, 10, delivered, 100e6, 20));
        }
        assert!(b.cwnd_pkts() > 100.0);
    }

    #[test]
    fn probe_rtt_entered_when_estimate_stale() {
        let mut b = Bbr::new(10.0, 1500);
        let t = drive_steady(&mut b, 0.0, 100);
        // Keep acking with *higher* RTTs for > 10 s so rt_prop goes stale.
        let mut delivered = 10_000;
        let mut now = t;
        let mut entered = false;
        for _ in 0..800 {
            delivered += 10;
            now += 0.02;
            b.on_ack(&ack(now, 40, 10, delivered, 100e6, 20));
            if b.state == State::ProbeRtt {
                entered = true;
                break;
            }
        }
        assert!(entered, "never entered ProbeRTT");
        assert_eq!(b.cwnd_pkts(), MIN_CWND);
    }

    #[test]
    fn pacing_rate_follows_gain() {
        let mut b = Bbr::new(10.0, 1500);
        drive_steady(&mut b, 0.0, 200);
        let rate = b.pacing_rate_bps(1500).unwrap();
        let bw = b.btl_bw_bps().unwrap();
        assert!((rate - b.pacing_gain * bw).abs() < 1.0);
    }

    #[test]
    fn pacing_defined_before_any_sample() {
        let b = Bbr::new(10.0, 1500);
        assert!(b.pacing_rate_bps(1500).unwrap() > 0.0);
    }

    #[test]
    fn rto_shrinks_window_to_minimum() {
        let mut b = Bbr::new(10.0, 1500);
        drive_steady(&mut b, 0.0, 200);
        b.on_rto(SimTime::ZERO);
        assert_eq!(b.cwnd_pkts(), MIN_CWND);
    }
}
