//! RTT estimation and retransmission-timeout computation (RFC 6298).

use dessim::SimDuration;

/// Smoothed RTT estimator with RTO calculation.
///
/// Follows RFC 6298: `srtt ← 7/8·srtt + 1/8·sample`,
/// `rttvar ← 3/4·rttvar + 1/4·|srtt − sample|`, `rto = srtt + 4·rttvar`,
/// clamped below by `min_rto` (Linux uses 200 ms) and above by `max_rto`.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: Option<SimDuration>,
    min_rto: SimDuration,
    max_rto: SimDuration,
    initial_rto: SimDuration,
}

impl RttEstimator {
    /// New estimator with the given RTO floor.
    pub fn new(min_rto: SimDuration) -> RttEstimator {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: None,
            min_rto,
            max_rto: SimDuration::from_secs(60),
            initial_rto: SimDuration::from_secs(1),
        }
    }

    /// Incorporate a new RTT sample (from a non-retransmitted segment).
    pub fn update(&mut self, sample: SimDuration) {
        self.min_rtt = Some(match self.min_rtt {
            None => sample,
            Some(m) => m.min(sample),
        });
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = SimDuration::from_nanos(sample.as_nanos() / 2);
            }
            Some(srtt) => {
                let sample_ns = sample.as_nanos() as i128;
                let srtt_ns = srtt.as_nanos() as i128;
                let err = (srtt_ns - sample_ns).unsigned_abs() as u64;
                self.rttvar = SimDuration::from_nanos((3 * self.rttvar.as_nanos() + err) / 4);
                self.srtt = Some(SimDuration::from_nanos(
                    ((7 * srtt_ns + sample_ns) / 8) as u64,
                ));
            }
        }
    }

    /// Smoothed RTT, if at least one sample has arrived.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Minimum RTT observed so far.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Current base RTO (before exponential backoff).
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => self.initial_rto,
            Some(srtt) => {
                let rto = srtt + self.rttvar.saturating_mul(4);
                rto.max(self.min_rto).min(self.max_rto)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new(ms(200));
        assert_eq!(e.rto(), SimDuration::from_secs(1)); // initial RTO
        e.update(ms(100));
        assert_eq!(e.srtt(), Some(ms(100)));
        assert_eq!(e.min_rtt(), Some(ms(100)));
        // rto = srtt + 4*rttvar = 100 + 4*50 = 300ms.
        assert_eq!(e.rto(), ms(300));
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = RttEstimator::new(ms(10));
        for _ in 0..100 {
            e.update(ms(50));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_secs_f64() - 0.05).abs() < 0.001);
        // With zero variance the RTO converges to srtt but is floored.
        assert!(e.rto() >= ms(10));
        assert!(e.rto() <= ms(60));
    }

    #[test]
    fn min_rtt_tracks_smallest() {
        let mut e = RttEstimator::new(ms(200));
        e.update(ms(80));
        e.update(ms(40));
        e.update(ms(120));
        assert_eq!(e.min_rtt(), Some(ms(40)));
    }

    #[test]
    fn rto_floor_applies() {
        let mut e = RttEstimator::new(ms(200));
        for _ in 0..50 {
            e.update(ms(1));
        }
        assert_eq!(e.rto(), ms(200));
    }

    #[test]
    fn variance_widens_rto() {
        let mut stable = RttEstimator::new(ms(1));
        let mut jittery = RttEstimator::new(ms(1));
        for i in 0..100 {
            stable.update(ms(50));
            jittery.update(if i % 2 == 0 { ms(20) } else { ms(80) });
        }
        assert!(jittery.rto() > stable.rto());
    }
}
