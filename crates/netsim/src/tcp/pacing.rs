//! Packet pacing.
//!
//! Linux has paced TCP since 2013 (`fq`/TSQ): packets are spread at
//! `2·cwnd/sRTT` during slow start and `1.2·cwnd/sRTT` during congestion
//! avoidance, per the `tcp_pacing_ss_ratio`/`tcp_pacing_ca_ratio` sysctls
//! the paper cites. BBR supplies its own rate (`pacing_gain × BtlBw`).

use dessim::{SimDuration, SimTime};

/// Pacing factor applied to `cwnd/sRTT` during slow start.
pub const LINUX_SS_FACTOR: f64 = 2.0;
/// Pacing factor applied to `cwnd/sRTT` during congestion avoidance.
pub const LINUX_CA_FACTOR: f64 = 1.2;

/// The Linux cwnd-based pacing rate in bits per second.
pub fn linux_pacing_rate_bps(
    cwnd_pkts: f64,
    mss_bytes: u32,
    srtt: SimDuration,
    slow_start: bool,
) -> f64 {
    cwnd_pacing_rate_bps(
        cwnd_pkts,
        mss_bytes,
        srtt,
        if slow_start {
            LINUX_SS_FACTOR
        } else {
            LINUX_CA_FACTOR
        },
    )
}

/// cwnd-based pacing at an explicit factor: `factor × cwnd / sRTT`.
///
/// Factor 1.0 reproduces the `(cwnd+1)/RTT` pacing of Aggarwal et al.
/// (the paper's §3.2 citation); because sRTT includes queueing delay, a
/// flow paced at ≤ 1.0 can never send faster than its recently *achieved*
/// rate, which is the mechanism that lets unpaced traffic outcompete it.
pub fn cwnd_pacing_rate_bps(cwnd_pkts: f64, mss_bytes: u32, srtt: SimDuration, factor: f64) -> f64 {
    let srtt_s = srtt.as_secs_f64().max(1e-6);
    factor * cwnd_pkts * mss_bytes as f64 * 8.0 / srtt_s
}

/// Token-less pacer: tracks the earliest time the next packet may leave.
#[derive(Debug, Clone)]
pub struct Pacer {
    next_send: SimTime,
}

impl Default for Pacer {
    fn default() -> Self {
        Pacer::new()
    }
}

impl Pacer {
    /// A pacer that allows an immediate first transmission.
    pub fn new() -> Pacer {
        Pacer {
            next_send: SimTime::ZERO,
        }
    }

    /// Whether a packet may be sent at `now`.
    pub fn ready(&self, now: SimTime) -> bool {
        now >= self.next_send
    }

    /// Earliest permitted send time.
    pub fn next_send(&self) -> SimTime {
        self.next_send
    }

    /// Account for a transmission of `bytes` at `now` with the given rate;
    /// the next packet is released one serialization time later.
    pub fn on_send(&mut self, now: SimTime, bytes: u32, rate_bps: f64) {
        let gap = SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate_bps.max(1.0));
        self.next_send = self.next_send.max(now) + gap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_first_send() {
        let p = Pacer::new();
        assert!(p.ready(SimTime::ZERO));
    }

    #[test]
    fn spaces_packets_at_rate() {
        let mut p = Pacer::new();
        let t0 = SimTime::ZERO;
        // 1500 B at 12 Mb/s = 1 ms per packet.
        p.on_send(t0, 1500, 12e6);
        assert!(!p.ready(t0));
        assert_eq!(p.next_send(), t0 + SimDuration::from_millis(1));
        p.on_send(p.next_send(), 1500, 12e6);
        assert_eq!(p.next_send(), t0 + SimDuration::from_millis(2));
    }

    #[test]
    fn idle_period_does_not_bank_credit() {
        let mut p = Pacer::new();
        let late = SimTime::ZERO + SimDuration::from_secs(5);
        p.on_send(late, 1500, 12e6);
        // Next send is relative to `late`, not to the epoch.
        assert_eq!(p.next_send(), late + SimDuration::from_millis(1));
    }

    #[test]
    fn linux_rates() {
        let srtt = SimDuration::from_millis(20);
        // cwnd 10, mss 1500: raw rate = 10*1500*8/0.02 = 6 Mb/s.
        let ss = linux_pacing_rate_bps(10.0, 1500, srtt, true);
        let ca = linux_pacing_rate_bps(10.0, 1500, srtt, false);
        assert!((ss - 12e6).abs() < 1.0);
        assert!((ca - 7.2e6).abs() < 1.0);
        assert!(ss > ca);
    }

    #[test]
    fn zero_rtt_guard() {
        let r = linux_pacing_rate_bps(10.0, 1500, SimDuration::ZERO, false);
        assert!(r.is_finite() && r > 0.0);
    }
}
