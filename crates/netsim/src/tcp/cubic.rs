//! TCP Cubic congestion control (RFC 8312).
//!
//! Window growth follows the cubic function
//! `W(t) = C·(t − K)³ + W_max` anchored at the last loss, with fast
//! convergence and a Reno-friendly lower bound.

use super::cc::{AckEvent, CongestionControl};
use dessim::SimTime;

const C: f64 = 0.4;
const BETA: f64 = 0.7;

/// Cubic congestion control state.
#[derive(Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    w_max: f64,
    /// Epoch start (seconds of sim time); `None` until the first ACK after
    /// a loss establishes a new cubic epoch.
    epoch_start: Option<f64>,
    k: f64,
}

impl Cubic {
    /// Create with the given initial window (segments).
    pub fn new(initial_cwnd: f64) -> Cubic {
        Cubic {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
        }
    }

    fn begin_epoch(&mut self, now_s: f64) {
        self.epoch_start = Some(now_s);
        if self.w_max > self.cwnd {
            self.k = ((self.w_max - self.cwnd) / C).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = self.cwnd;
        }
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.in_recovery {
            return;
        }
        let acked = ev.newly_acked as f64;
        if self.cwnd < self.ssthresh {
            self.cwnd += acked;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }
        let now_s = ev.now.as_secs_f64();
        if self.epoch_start.is_none() {
            self.begin_epoch(now_s);
        }
        let t = now_s - self.epoch_start.expect("epoch initialized above");
        let srtt = ev.srtt.as_secs_f64();
        // Target one RTT ahead, per RFC 8312 §4.1.
        let target = {
            let dt = t + srtt - self.k;
            C * dt * dt * dt + self.w_max
        };
        if target > self.cwnd {
            self.cwnd += (target - self.cwnd) / self.cwnd * acked;
        } else {
            // Minimal growth in the concave plateau.
            self.cwnd += 0.01 * acked / self.cwnd;
        }
        // TCP-friendly region (standard TCP's AIMD estimate).
        if srtt > 0.0 {
            let w_est = self.w_max * BETA + 3.0 * (1.0 - BETA) / (1.0 + BETA) * (t / srtt);
            if w_est > self.cwnd {
                self.cwnd = w_est;
            }
        }
    }

    fn on_loss_event(&mut self, _now: SimTime, inflight_pkts: u64) {
        let inflight = inflight_pkts as f64;
        // Fast convergence: release bandwidth when the window is shrinking.
        if inflight < self.w_max {
            self.w_max = inflight * (2.0 - BETA) / 2.0;
        } else {
            self.w_max = inflight;
        }
        self.cwnd = (inflight * BETA).max(2.0);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * BETA).max(2.0);
        self.cwnd = 1.0;
        self.epoch_start = None;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }

    fn pacing_rate_bps(&self, _mss: u32) -> Option<f64> {
        None
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dessim::SimDuration;

    fn ack_at(secs: f64, newly: u64) -> AckEvent {
        AckEvent {
            now: SimTime::from_nanos((secs * 1e9) as u64),
            rtt_sample: Some(SimDuration::from_millis(20)),
            srtt: SimDuration::from_millis(20),
            min_rtt: SimDuration::from_millis(20),
            newly_acked: newly,
            delivered_total: 0,
            delivery_rate_bps: None,
            in_recovery: false,
            inflight_pkts: 10,
        }
    }

    #[test]
    fn slow_start_grows_exponentially() {
        let mut c = Cubic::new(10.0);
        c.on_ack(&ack_at(0.0, 10));
        assert!((c.cwnd_pkts() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn loss_multiplies_by_beta() {
        let mut c = Cubic::new(100.0);
        c.ssthresh = 100.0;
        c.on_loss_event(SimTime::ZERO, 100);
        assert!((c.cwnd_pkts() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_recovers_toward_wmax() {
        // After a loss at w=100 the window should climb back toward ~100
        // over the K horizon rather than growing linearly like Reno.
        let mut c = Cubic::new(100.0);
        c.ssthresh = 100.0;
        c.on_loss_event(SimTime::ZERO, 100);
        let w_after_loss = c.cwnd_pkts();
        // Simulate steady ACK clock: 500 acks over 10 seconds.
        for i in 0..500 {
            let t = 0.02 * (i + 1) as f64;
            c.on_ack(&ack_at(t, 1));
        }
        assert!(
            c.cwnd_pkts() > w_after_loss,
            "window should grow after loss"
        );
        // Should have grown back near or past W_max.
        assert!(c.cwnd_pkts() > 90.0, "cwnd {}", c.cwnd_pkts());
    }

    fn ack_at_rtt(secs: f64, rtt_ms: u64, newly: u64) -> AckEvent {
        AckEvent {
            now: SimTime::from_nanos((secs * 1e9) as u64),
            rtt_sample: Some(SimDuration::from_millis(rtt_ms)),
            srtt: SimDuration::from_millis(rtt_ms),
            min_rtt: SimDuration::from_millis(rtt_ms),
            newly_acked: newly,
            delivered_total: 0,
            delivery_rate_bps: None,
            in_recovery: false,
            inflight_pkts: 10,
        }
    }

    #[test]
    fn growth_is_concave_then_convex() {
        // In the high-BDP regime (large window, 100 ms RTT) the cubic
        // curve dominates the TCP-friendly bound: growth is fast right
        // after loss, flattens near w_max (concave), then accelerates
        // past it (convex).
        let mut c = Cubic::new(1000.0);
        c.ssthresh = 1000.0;
        c.on_loss_event(SimTime::ZERO, 1000);
        // K = cbrt(300/0.4) ≈ 9.1 s for this drop.
        let mut deltas = Vec::new();
        let mut prev = c.cwnd_pkts();
        for i in 0..2000 {
            let t = 0.01 * (i + 1) as f64; // 20 s total
                                           // ~1000 segs/s ack clock so cwnd tracks the cubic target.
            c.on_ack(&ack_at_rtt(t, 100, 10));
            if i % 200 == 199 {
                deltas.push(c.cwnd_pkts() - prev);
                prev = c.cwnd_pkts();
            }
        }
        // Growth per 2 s interval should first shrink (concave approach
        // to the plateau)...
        assert!(deltas[1] < deltas[0], "deltas {deltas:?}");
        // ...and eventually accelerate (convex probing past w_max).
        let late = deltas[deltas.len() - 1];
        let mid = deltas[4]; // near the K plateau
        assert!(late > mid, "deltas {deltas:?}");
        assert!(
            c.cwnd_pkts() > 1000.0,
            "probed past w_max: {}",
            c.cwnd_pkts()
        );
    }

    #[test]
    fn fast_convergence_reduces_wmax() {
        let mut c = Cubic::new(100.0);
        c.ssthresh = 100.0;
        c.w_max = 200.0; // previous peak was higher
        c.on_loss_event(SimTime::ZERO, 100);
        // w_max should be reduced below the inflight at loss.
        assert!((c.w_max - 100.0 * (2.0 - BETA) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn rto_resets_window() {
        let mut c = Cubic::new(50.0);
        c.on_rto(SimTime::ZERO);
        assert_eq!(c.cwnd_pkts(), 1.0);
        assert!(c.in_slow_start());
    }

    #[test]
    fn tcp_friendly_floor_in_plateau() {
        // Deep in an epoch with tiny cubic growth, the Reno estimate must
        // take over eventually.
        let mut c = Cubic::new(10.0);
        c.ssthresh = 10.0;
        c.w_max = 10.2; // small gap => flat cubic curve
        c.begin_epoch(0.0);
        for i in 0..5000 {
            let t = 0.02 * (i + 1) as f64;
            c.on_ack(&ack_at(t, 1));
        }
        // After 100 seconds the Reno component alone is large.
        assert!(c.cwnd_pkts() > 20.0, "cwnd {}", c.cwnd_pkts());
    }
}
