//! The receive side: cumulative ACKs with SACK blocks.
//!
//! Out-of-order data is tracked as merged intervals, so the cumulative
//! point jumps as soon as a hole fills and every ACK carries up to
//! [`MAX_SACK_BLOCKS`] selective-acknowledgment ranges (the range
//! containing the segment that triggered the ACK first, then the
//! highest-sequence ranges — mirroring RFC 2018 receiver behaviour).

use crate::packet::{Ack, FlowId, Packet, SackBlock, MAX_SACK_BLOCKS};
use dessim::SimTime;
use std::collections::BTreeMap;

/// Outcome of processing one data segment.
#[derive(Debug)]
pub struct AckDecision {
    /// ACK to send now, if any.
    pub ack: Option<Ack>,
    /// Caller should ensure an ACK-flush timer is pending (aggregation
    /// in progress).
    pub want_flush_timer: bool,
}

/// Per-flow receiver state with GRO-style ACK aggregation.
///
/// At 10 G with jumbo frames, real receivers coalesce segments (GRO /
/// interrupt moderation) and emit roughly one ACK per aggregate. This is
/// the mechanism that makes *unpaced* senders bursty: a stretch ACK
/// releases many segments at once, which leave at line rate. Out-of-order
/// or duplicate segments are ACKed immediately (RFC 5681 requires
/// undelayed duplicate ACKs), so loss feedback stays prompt.
#[derive(Debug)]
pub struct Receiver {
    flow: FlowId,
    rcv_next: u64,
    /// Out-of-order data as disjoint, non-adjacent intervals
    /// `start → end` (end exclusive), all above `rcv_next`.
    ranges: BTreeMap<u64, u64>,
    /// ACK every `aggregation` in-order segments (1 = every segment).
    aggregation: u32,
    /// In-order segments received since the last ACK.
    pending: u32,
    /// Metadata of the most recent pending segment (for ACK echo fields).
    pending_last: Option<(u64, SimTime, bool)>,
    /// Segments received more than once (diagnostics).
    pub duplicate_segments: u64,
}

impl Receiver {
    /// New receiver for `flow`, expecting segment 0 first, ACKing every
    /// segment (no aggregation).
    pub fn new(flow: FlowId) -> Receiver {
        Receiver::with_aggregation(flow, 1)
    }

    /// New receiver ACKing every `aggregation` in-order segments.
    pub fn with_aggregation(flow: FlowId, aggregation: u32) -> Receiver {
        Receiver {
            flow,
            rcv_next: 0,
            ranges: BTreeMap::new(),
            aggregation: aggregation.max(1),
            pending: 0,
            pending_last: None,
            duplicate_segments: 0,
        }
    }

    /// Next expected segment (everything below is delivered).
    pub fn rcv_next(&self) -> u64 {
        self.rcv_next
    }

    /// Number of buffered out-of-order segments.
    pub fn buffered(&self) -> usize {
        self.ranges.iter().map(|(s, e)| (e - s) as usize).sum()
    }

    /// Insert `seq` into the out-of-order interval set.
    /// Returns `false` if it was already present.
    fn insert_ooo(&mut self, seq: u64) -> bool {
        // Find the closest range starting at or before seq.
        if let Some((&start, &end)) = self.ranges.range(..=seq).next_back() {
            if seq < end {
                return false; // duplicate
            }
            if seq == end {
                // Extend this range rightward, possibly merging the next.
                let mut new_end = end + 1;
                if let Some(&next_end) = self.ranges.get(&new_end) {
                    self.ranges.remove(&new_end);
                    new_end = next_end;
                }
                self.ranges.insert(start, new_end);
                return true;
            }
        }
        // seq starts a new range or prepends the following one.
        let mut new_end = seq + 1;
        if let Some(&next_end) = self.ranges.get(&new_end) {
            self.ranges.remove(&new_end);
            new_end = next_end;
        }
        self.ranges.insert(seq, new_end);
        true
    }

    /// Build SACK blocks: the range containing `for_seq` first, then the
    /// highest ranges.
    fn sack_blocks(&self, for_seq: u64) -> [Option<SackBlock>; MAX_SACK_BLOCKS] {
        let mut blocks: [Option<SackBlock>; MAX_SACK_BLOCKS] = [None; MAX_SACK_BLOCKS];
        let mut n = 0;
        // Triggering range first (RFC 2018: most recent info first).
        let trigger = self
            .ranges
            .range(..=for_seq)
            .next_back()
            .filter(|&(_, &end)| for_seq < end)
            .map(|(&s, &e)| SackBlock { start: s, end: e });
        if let Some(b) = trigger {
            blocks[n] = Some(b);
            n += 1;
        }
        for (&s, &e) in self.ranges.iter().rev() {
            if n == MAX_SACK_BLOCKS {
                break;
            }
            if trigger.is_some_and(|t| t.start == s) {
                continue;
            }
            blocks[n] = Some(SackBlock { start: s, end: e });
            n += 1;
        }
        blocks
    }

    fn build_ack(&self, for_seq: u64, sent_at: SimTime, is_retx: bool) -> Ack {
        Ack {
            flow: self.flow,
            cum_ack: self.rcv_next,
            for_seq,
            sacks: self.sack_blocks(for_seq),
            // Karn's rule: never sample RTT from retransmitted segments.
            echo_sent_at: if is_retx { None } else { Some(sent_at) },
        }
    }

    /// Process an arriving data segment.
    pub fn on_segment(&mut self, pkt: &Packet) -> AckDecision {
        debug_assert_eq!(pkt.flow, self.flow, "segment routed to wrong receiver");
        let mut out_of_order = false;
        if pkt.seq == self.rcv_next {
            self.rcv_next += 1;
            // Swallow a now-contiguous buffered range, if any.
            if let Some(&end) = self.ranges.get(&self.rcv_next) {
                self.ranges.remove(&self.rcv_next);
                self.rcv_next = end;
            }
        } else if pkt.seq > self.rcv_next {
            out_of_order = true;
            if !self.insert_ooo(pkt.seq) {
                self.duplicate_segments += 1;
            }
        } else {
            // Below the cumulative point: a spurious retransmission.
            out_of_order = true;
            self.duplicate_segments += 1;
        }

        // Immediate ACK when: feedback is urgent (out-of-order data or
        // open holes), or the aggregation quota is reached.
        self.pending += 1;
        let urgent = out_of_order || !self.ranges.is_empty();
        if urgent || self.pending >= self.aggregation {
            self.pending = 0;
            self.pending_last = None;
            AckDecision {
                ack: Some(self.build_ack(pkt.seq, pkt.sent_at, pkt.is_retx)),
                want_flush_timer: false,
            }
        } else {
            self.pending_last = Some((pkt.seq, pkt.sent_at, pkt.is_retx));
            AckDecision {
                ack: None,
                want_flush_timer: true,
            }
        }
    }

    /// Flush a withheld aggregated ACK (delayed-ACK timer fired).
    pub fn flush(&mut self) -> Option<Ack> {
        if self.pending == 0 {
            return None;
        }
        let (seq, sent_at, is_retx) = self.pending_last.take()?;
        self.pending = 0;
        Some(self.build_ack(seq, sent_at, is_retx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwrap the immediate ACK (valid for aggregation = 1 receivers).
    fn ack_of(r: &mut Receiver, p: &Packet) -> Ack {
        r.on_segment(p)
            .ack
            .expect("aggregation=1 receivers ack every segment")
    }

    fn pkt(seq: u64, retx: bool) -> Packet {
        Packet {
            flow: FlowId(0),
            seq,
            size_bytes: 1500,
            is_retx: retx,
            sent_at: SimTime::from_nanos(123),
        }
    }

    #[test]
    fn in_order_delivery_advances_cum_ack() {
        let mut r = Receiver::new(FlowId(0));
        for i in 0..5 {
            let ack = ack_of(&mut r, &pkt(i, false));
            assert_eq!(ack.cum_ack, i + 1);
            assert!(ack.sacks[0].is_none(), "no SACKs without holes");
        }
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn hole_generates_dup_acks_with_sacks() {
        let mut r = Receiver::new(FlowId(0));
        ack_of(&mut r, &pkt(0, false));
        // Segment 1 lost; 2, 3, 4 arrive.
        for seq in [2, 3, 4] {
            let ack = ack_of(&mut r, &pkt(seq, false));
            assert_eq!(ack.cum_ack, 1, "dup ack while hole open");
            let sack = ack.sacks[0].expect("sack block present");
            assert_eq!(sack.start, 2);
            assert_eq!(sack.end, seq + 1);
        }
        assert_eq!(r.buffered(), 3);
        // Retransmission of 1 fills the hole; cumulative point jumps to 5.
        let ack = ack_of(&mut r, &pkt(1, true));
        assert_eq!(ack.cum_ack, 5);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn multiple_holes_produce_multiple_blocks() {
        let mut r = Receiver::new(FlowId(0));
        ack_of(&mut r, &pkt(0, false));
        // Holes at 1, 4, 7: received 2-3, 5-6, 8.
        for seq in [2, 3, 5, 6] {
            ack_of(&mut r, &pkt(seq, false));
        }
        let ack = ack_of(&mut r, &pkt(8, false));
        let blocks: Vec<SackBlock> = ack.sacks.iter().flatten().copied().collect();
        assert_eq!(blocks.len(), 3);
        // Triggering range (containing 8) first.
        assert_eq!(blocks[0], SackBlock { start: 8, end: 9 });
        // Then the highest remaining ranges.
        assert!(blocks.contains(&SackBlock { start: 5, end: 7 }));
        assert!(blocks.contains(&SackBlock { start: 2, end: 4 }));
    }

    #[test]
    fn block_limit_respected() {
        let mut r = Receiver::new(FlowId(0));
        // Four disjoint ranges: 2, 4, 6, 8.
        for seq in [2, 4, 6, 8] {
            ack_of(&mut r, &pkt(seq, false));
        }
        let ack = ack_of(&mut r, &pkt(10, false));
        let blocks: Vec<SackBlock> = ack.sacks.iter().flatten().copied().collect();
        assert_eq!(blocks.len(), MAX_SACK_BLOCKS);
        assert_eq!(blocks[0], SackBlock { start: 10, end: 11 });
    }

    #[test]
    fn adjacent_ranges_merge() {
        let mut r = Receiver::new(FlowId(0));
        // Build 2..5 out of order: 4, 2, 3.
        ack_of(&mut r, &pkt(4, false));
        ack_of(&mut r, &pkt(2, false));
        let ack = ack_of(&mut r, &pkt(3, false));
        let blocks: Vec<SackBlock> = ack.sacks.iter().flatten().copied().collect();
        assert_eq!(blocks.len(), 1, "ranges must merge: {blocks:?}");
        assert_eq!(blocks[0], SackBlock { start: 2, end: 5 });
    }

    #[test]
    fn karn_rule_suppresses_echo_for_retx() {
        let mut r = Receiver::new(FlowId(0));
        assert!(ack_of(&mut r, &pkt(0, false)).echo_sent_at.is_some());
        assert!(ack_of(&mut r, &pkt(1, true)).echo_sent_at.is_none());
    }

    #[test]
    fn duplicates_counted_not_redelivered() {
        let mut r = Receiver::new(FlowId(0));
        ack_of(&mut r, &pkt(0, false));
        let ack = ack_of(&mut r, &pkt(0, true));
        assert_eq!(ack.cum_ack, 1);
        assert_eq!(r.duplicate_segments, 1);
        ack_of(&mut r, &pkt(5, false));
        ack_of(&mut r, &pkt(5, false));
        assert_eq!(r.duplicate_segments, 2);
    }

    #[test]
    fn interleaved_holes() {
        let mut r = Receiver::new(FlowId(0));
        for seq in [0, 2, 4, 6] {
            ack_of(&mut r, &pkt(seq, false));
        }
        assert_eq!(r.rcv_next(), 1);
        ack_of(&mut r, &pkt(1, false));
        assert_eq!(r.rcv_next(), 3);
        ack_of(&mut r, &pkt(3, false));
        assert_eq!(r.rcv_next(), 5);
        ack_of(&mut r, &pkt(5, false));
        assert_eq!(r.rcv_next(), 7);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn buffered_counts_bytes_in_ranges() {
        let mut r = Receiver::new(FlowId(0));
        for seq in [5, 6, 7, 20, 21, 40] {
            ack_of(&mut r, &pkt(seq, false));
        }
        assert_eq!(r.buffered(), 6);
    }
}
