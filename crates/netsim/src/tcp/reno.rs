//! TCP Reno congestion control: slow start + AIMD congestion avoidance.

use super::cc::{AckEvent, CongestionControl};
use dessim::SimTime;

/// Classic Reno: slow start doubles the window each RTT; congestion
/// avoidance adds one segment per RTT; a loss event halves the window.
#[derive(Debug)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
}

impl Reno {
    /// Create with the given initial window (segments).
    pub fn new(initial_cwnd: f64) -> Reno {
        Reno {
            cwnd: initial_cwnd,
            ssthresh: f64::INFINITY,
        }
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.in_recovery {
            // Window inflation during recovery is the sender's job.
            return;
        }
        let acked = ev.newly_acked as f64;
        if self.cwnd < self.ssthresh {
            // Slow start: +1 segment per ACKed segment.
            self.cwnd += acked;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: +1/cwnd per ACKed segment.
            self.cwnd += acked / self.cwnd;
        }
    }

    fn on_loss_event(&mut self, _now: SimTime, inflight_pkts: u64) {
        self.ssthresh = (inflight_pkts as f64 / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }

    fn pacing_rate_bps(&self, _mss: u32) -> Option<f64> {
        None
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dessim::SimDuration;

    fn ack(newly: u64, in_recovery: bool) -> AckEvent {
        AckEvent {
            now: SimTime::ZERO,
            rtt_sample: Some(SimDuration::from_millis(20)),
            srtt: SimDuration::from_millis(20),
            min_rtt: SimDuration::from_millis(20),
            newly_acked: newly,
            delivered_total: 0,
            delivery_rate_bps: None,
            in_recovery,
            inflight_pkts: 10,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = Reno::new(10.0);
        // Acking a full window in slow start doubles cwnd.
        r.on_ack(&ack(10, false));
        assert!((r.cwnd_pkts() - 20.0).abs() < 1e-9);
        assert!(r.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_linear() {
        let mut r = Reno::new(10.0);
        r.ssthresh = 10.0; // force CA
        assert!(!r.in_slow_start());
        // One full window of ACKs adds ~1 segment.
        let before = r.cwnd_pkts();
        for _ in 0..10 {
            r.on_ack(&ack(1, false));
        }
        assert!((r.cwnd_pkts() - before - 1.0).abs() < 0.06);
    }

    #[test]
    fn loss_halves_inflight() {
        let mut r = Reno::new(64.0);
        r.on_loss_event(SimTime::ZERO, 64);
        assert!((r.cwnd_pkts() - 32.0).abs() < 1e-9);
        assert!(!r.in_slow_start());
    }

    #[test]
    fn loss_floor_two_segments() {
        let mut r = Reno::new(2.0);
        r.on_loss_event(SimTime::ZERO, 2);
        assert_eq!(r.cwnd_pkts(), 2.0);
    }

    #[test]
    fn rto_collapses_to_one() {
        let mut r = Reno::new(40.0);
        r.on_rto(SimTime::ZERO);
        assert_eq!(r.cwnd_pkts(), 1.0);
        assert_eq!(r.ssthresh, 20.0);
        assert!(r.in_slow_start());
    }

    #[test]
    fn recovery_acks_do_not_grow_window() {
        let mut r = Reno::new(10.0);
        r.on_ack(&ack(5, true));
        assert_eq!(r.cwnd_pkts(), 10.0);
    }

    #[test]
    fn slow_start_exit_clamps_to_ssthresh() {
        let mut r = Reno::new(10.0);
        r.ssthresh = 12.0;
        r.on_ack(&ack(10, false));
        assert_eq!(r.cwnd_pkts(), 12.0);
    }
}
