//! The TCP model: sender/receiver state machines, congestion control
//! algorithms, RTT estimation and pacing.
//!
//! The transport model is deliberately scoped to what bulk transfers over
//! a congested bottleneck exercise: MSS-sized segments, cumulative ACKs,
//! duplicate-ACK fast retransmit, NewReno partial-ACK recovery, RTO with
//! exponential backoff (go-back-N on timeout), Karn's rule for RTT
//! sampling. SACK, delayed ACKs, ECN and flow control are out of scope —
//! none of the paper's lab effects depend on them.

pub mod bbr;
pub mod cc;
pub mod cubic;
pub mod pacing;
pub mod receiver;
pub mod reno;
pub mod rtt;
pub mod sender;

pub use cc::{AckEvent, CongestionControl};
pub use receiver::Receiver;
pub use sender::Sender;
