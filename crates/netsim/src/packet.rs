//! Packets and identifiers.

use dessim::SimTime;

/// Index of a flow (TCP connection) within the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub usize);

/// Index of an application (a unit that owns one or more flows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppId(pub usize);

/// A data segment in flight.
///
/// Sequence numbers count whole segments, not bytes: every data packet
/// carries exactly `mss` payload bytes, which is accurate for bulk
/// transfers and keeps arithmetic exact.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Segment sequence number (0-based, in segments).
    pub seq: u64,
    /// Wire size in bytes (payload + header overhead).
    pub size_bytes: u32,
    /// Whether this transmission is a retransmission.
    pub is_retx: bool,
    /// Time the segment entered the network (set at send).
    pub sent_at: SimTime,
}

/// Maximum number of SACK blocks carried per ACK (as in real TCP, where
/// option space limits blocks to 3 when timestamps are in use).
pub const MAX_SACK_BLOCKS: usize = 3;

/// One selective-acknowledgment range: segments `start..end` received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SackBlock {
    /// First segment of the range.
    pub start: u64,
    /// One past the last segment of the range.
    pub end: u64,
}

/// Cumulative acknowledgment travelling back to a sender.
#[derive(Debug, Clone, Copy)]
pub struct Ack {
    /// Flow being acknowledged.
    pub flow: FlowId,
    /// Next expected segment (all segments `< cum_ack` received).
    pub cum_ack: u64,
    /// Sequence number of the segment that triggered this ACK.
    pub for_seq: u64,
    /// Selective acknowledgment blocks (most recent first).
    pub sacks: [Option<SackBlock>; MAX_SACK_BLOCKS],
    /// Echo of the triggering segment's send timestamp (RTT sampling;
    /// `None` when the segment was a retransmission — Karn's rule).
    pub echo_sent_at: Option<SimTime>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(FlowId(1));
        s.insert(FlowId(1));
        s.insert(FlowId(2));
        assert_eq!(s.len(), 2);
        assert!(FlowId(1) < FlowId(2));
    }

    #[test]
    fn packet_is_small() {
        // Packets are copied through several queues; keep them compact.
        assert!(std::mem::size_of::<Packet>() <= 48);
    }
}
