//! High-level entry point: run one dumbbell experiment and return
//! per-application metrics.

use crate::config::{ConfigError, DumbbellConfig};
use crate::metrics::{AppMetrics, FlowCounters, FlowMetrics};
use crate::network::{Event, Network};
use crate::packet::FlowId;
use crate::queue::QueueStats;
use dessim::{SimDuration, SimRng, SimTime, Simulation};

/// Result of one lab run.
#[derive(Debug, Clone)]
pub struct LabResult {
    /// Per-application metrics over the measurement window.
    pub apps: Vec<AppMetrics>,
    /// Per-flow metrics over the measurement window.
    pub flows: Vec<FlowMetrics>,
    /// Bottleneck queue statistics over the whole run.
    pub queue: QueueStats,
    /// Total events processed (performance diagnostics).
    pub events: u64,
    /// Length of the measurement window in seconds.
    pub window_secs: f64,
}

impl LabResult {
    /// Aggregate throughput across all applications (bits/s).
    pub fn total_throughput_bps(&self) -> f64 {
        self.apps.iter().map(|a| a.throughput_bps).sum()
    }
}

/// Run a dumbbell experiment to completion.
///
/// Flows start at staggered times within the first second (seeded), the
/// warm-up period is excluded from measurement, and metrics cover
/// `[warmup, duration]`.
pub fn run_dumbbell(cfg: &DumbbellConfig) -> Result<LabResult, ConfigError> {
    cfg.validate()?;
    let net = Network::new(cfg.clone());
    let mut sim = Simulation::new(net);

    // Staggered starts, independent of the network's internal streams.
    let mut start_rng = SimRng::new(cfg.seed ^ 0x5157_ab1e);
    let max_stagger = cfg.warmup.as_secs_f64().min(1.0);
    for i in 0..cfg.total_flows() {
        let offset = SimDuration::from_secs_f64(start_rng.uniform01() * max_stagger);
        sim.schedule(SimTime::ZERO + offset, Event::FlowStart(FlowId(i)));
    }
    sim.schedule(SimTime::ZERO + cfg.warmup, Event::WarmupSnapshot);
    sim.run_until(SimTime::ZERO + cfg.duration);

    let window_secs = (cfg.duration - cfg.warmup).as_secs_f64();
    let snaps: Vec<FlowCounters> = sim
        .model
        .warmup_counters
        .clone()
        .expect("warm-up snapshot must have fired before the horizon");

    let flows: Vec<FlowMetrics> = sim
        .model
        .senders()
        .iter()
        .zip(&snaps)
        .map(|(s, snap)| {
            FlowMetrics::from_window(
                s.flow(),
                s.app(),
                snap,
                &s.counters,
                cfg.mss_bytes,
                window_secs,
            )
        })
        .collect();

    let apps = cfg
        .apps
        .iter()
        .enumerate()
        .map(|(i, app_cfg)| {
            let app_flows: Vec<FlowMetrics> =
                flows.iter().filter(|f| f.app.0 == i).cloned().collect();
            AppMetrics::aggregate(crate::packet::AppId(i), app_cfg, app_flows)
        })
        .collect();

    Ok(LabResult {
        apps,
        flows,
        queue: sim.model.queue_stats(),
        events: sim.processed(),
        window_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppConfig, CcKind};

    fn base_cfg() -> DumbbellConfig {
        DumbbellConfig {
            bottleneck_bps: 50e6,
            base_rtt: SimDuration::from_millis(20),
            buffer_bdp: 1.0,
            mss_bytes: 1500,
            duration: SimDuration::from_secs(12),
            warmup: SimDuration::from_secs(4),
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = base_cfg(); // no apps
        assert!(run_dumbbell(&cfg).is_err());
    }

    #[test]
    fn utilization_high_with_enough_flows() {
        let mut cfg = base_cfg();
        cfg.apps = vec![AppConfig::plain(CcKind::Reno); 4];
        let res = run_dumbbell(&cfg).unwrap();
        let total = res.total_throughput_bps();
        assert!(total > 0.85 * 50e6, "total {total}");
        assert!(total <= 1.02 * 50e6, "total {total}");
    }

    #[test]
    fn two_connection_app_gets_double_share() {
        // The Figure 2a mechanism: an app with two Reno connections gets
        // roughly twice the throughput of single-connection apps.
        // Windows must be large enough that Reno's loss-synchronization
        // noise averages out; average over two seeds for robustness.
        let mut ratios = Vec::new();
        for seed in [7, 8] {
            let mut cfg = base_cfg();
            cfg.bottleneck_bps = 200e6;
            cfg.apps = vec![
                AppConfig {
                    connections: 2,
                    cc: CcKind::Reno,
                    paced: false,
                    pacing_ca_factor: 1.2,
                },
                AppConfig::plain(CcKind::Reno),
                AppConfig::plain(CcKind::Reno),
                AppConfig::plain(CcKind::Reno),
            ];
            cfg.duration = SimDuration::from_secs(40);
            cfg.warmup = SimDuration::from_secs(10);
            cfg.seed = seed;
            let res = run_dumbbell(&cfg).unwrap();
            let two_conn = res.apps[0].throughput_bps;
            let singles: f64 = res.apps[1..].iter().map(|a| a.throughput_bps).sum::<f64>() / 3.0;
            ratios.push(two_conn / singles);
        }
        let ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            (1.4..2.8).contains(&ratio),
            "expected ~2x share for the 2-connection app, got {ratio:.2} ({ratios:?})"
        );
    }

    #[test]
    fn per_app_flow_attribution() {
        let mut cfg = base_cfg();
        cfg.apps = vec![
            AppConfig {
                connections: 2,
                cc: CcKind::Reno,
                paced: false,
                pacing_ca_factor: 1.2,
            },
            AppConfig::plain(CcKind::Cubic),
        ];
        let res = run_dumbbell(&cfg).unwrap();
        assert_eq!(res.apps.len(), 2);
        assert_eq!(res.apps[0].flows.len(), 2);
        assert_eq!(res.apps[1].flows.len(), 1);
        assert_eq!(res.flows.len(), 3);
    }

    #[test]
    fn window_length_reported() {
        let mut cfg = base_cfg();
        cfg.apps = vec![AppConfig::plain(CcKind::Reno)];
        let res = run_dumbbell(&cfg).unwrap();
        assert!((res.window_secs - 8.0).abs() < 1e-9);
        assert!(res.events > 0);
    }
}
