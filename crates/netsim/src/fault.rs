//! Fault injection helpers.
//!
//! The simulator supports independent random loss at the bottleneck (see
//! [`crate::config::DumbbellConfig::random_loss`]); this module provides
//! the standalone injector plus deterministic loss patterns used by the
//! test suite to exercise specific recovery paths.
//!
//! These faults live *inside* the simulated transport: a dropped packet
//! changes congestion control, retransmissions, and therefore the world
//! being measured. The streaming twin of this module is
//! `streamsim::telemetry` (`TelemetryFaults`), which corrupts only the
//! *records about* sessions after the simulation ran — the measurement,
//! never the world. Keep the two straight when composing experiments:
//! packet loss here biases the plant, telemetry loss there biases the
//! estimate.

use dessim::SimRng;

/// Decides which packets to drop.
pub trait LossModel {
    /// Return `true` to drop the `index`-th packet observed.
    fn should_drop(&mut self, index: u64) -> bool;
}

/// Drop nothing.
#[derive(Debug, Default)]
pub struct NoLoss;

impl LossModel for NoLoss {
    fn should_drop(&mut self, _index: u64) -> bool {
        false
    }
}

/// Independent (Bernoulli) random loss.
#[derive(Debug)]
pub struct RandomLoss {
    probability: f64,
    rng: SimRng,
}

impl RandomLoss {
    /// Drop each packet independently with `probability`.
    ///
    /// `probability` must be a finite value in `[0, 1]`. Anything else
    /// is a configuration bug, not a tunable: debug builds panic on it,
    /// and release builds clamp into range (NaN clamps to 0, i.e. no
    /// loss) so a long-running sweep degrades predictably instead of
    /// feeding garbage to the RNG.
    pub fn new(probability: f64, seed: u64) -> RandomLoss {
        debug_assert!(
            probability.is_finite() && (0.0..=1.0).contains(&probability),
            "RandomLoss probability must be finite and in [0, 1], got {probability}"
        );
        let probability = if probability.is_nan() {
            0.0
        } else {
            probability.clamp(0.0, 1.0)
        };
        RandomLoss {
            probability,
            rng: SimRng::new(seed),
        }
    }
}

impl LossModel for RandomLoss {
    fn should_drop(&mut self, _index: u64) -> bool {
        self.rng.bernoulli(self.probability)
    }
}

/// Drop an explicit list of packet indices (deterministic tests).
#[derive(Debug)]
pub struct ScriptedLoss {
    drops: std::collections::BTreeSet<u64>,
}

impl ScriptedLoss {
    /// Drop exactly the packets whose observation index is listed.
    pub fn new(drops: impl IntoIterator<Item = u64>) -> ScriptedLoss {
        ScriptedLoss {
            drops: drops.into_iter().collect(),
        }
    }
}

impl LossModel for ScriptedLoss {
    fn should_drop(&mut self, index: u64) -> bool {
        self.drops.contains(&index)
    }
}

/// Drop every `period`-th packet (periodic stress).
#[derive(Debug)]
pub struct PeriodicLoss {
    period: u64,
}

impl PeriodicLoss {
    /// Drop packets with `index % period == period - 1`. `period` must be
    /// at least 1.
    pub fn new(period: u64) -> PeriodicLoss {
        assert!(period >= 1, "period must be >= 1");
        PeriodicLoss { period }
    }
}

impl LossModel for PeriodicLoss {
    fn should_drop(&mut self, index: u64) -> bool {
        index % self.period == self.period - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_loss_never_drops() {
        let mut m = NoLoss;
        assert!((0..1000).all(|i| !m.should_drop(i)));
    }

    #[test]
    fn random_loss_frequency() {
        let mut m = RandomLoss::new(0.2, 7);
        let n = 50_000;
        let drops = (0..n).filter(|&i| m.should_drop(i)).count();
        let frac = drops as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn random_loss_deterministic_per_seed() {
        let mut a = RandomLoss::new(0.3, 11);
        let mut b = RandomLoss::new(0.3, 11);
        for i in 0..1000 {
            assert_eq!(a.should_drop(i), b.should_drop(i));
        }
    }

    #[test]
    #[should_panic(expected = "must be finite and in [0, 1]")]
    #[cfg(debug_assertions)]
    fn random_loss_rejects_out_of_range_probability() {
        let _ = RandomLoss::new(1.5, 1);
    }

    #[test]
    #[should_panic(expected = "must be finite and in [0, 1]")]
    #[cfg(debug_assertions)]
    fn random_loss_rejects_nan_probability() {
        let _ = RandomLoss::new(f64::NAN, 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn random_loss_release_clamps_bad_probabilities() {
        // Documented release behavior: clamp, NaN → no loss.
        let mut hi = RandomLoss::new(2.0, 3);
        assert!((0..100).all(|i| hi.should_drop(i)));
        let mut nan = RandomLoss::new(f64::NAN, 3);
        assert!((0..100).all(|i| !nan.should_drop(i)));
    }

    #[test]
    fn scripted_loss_hits_exact_indices() {
        let mut m = ScriptedLoss::new([2, 5]);
        let dropped: Vec<u64> = (0..10).filter(|&i| m.should_drop(i)).collect();
        assert_eq!(dropped, vec![2, 5]);
    }

    #[test]
    fn periodic_loss_period() {
        let mut m = PeriodicLoss::new(4);
        let dropped: Vec<u64> = (0..12).filter(|&i| m.should_drop(i)).collect();
        assert_eq!(dropped, vec![3, 7, 11]);
    }
}
