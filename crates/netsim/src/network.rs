//! The dumbbell network model: senders feed a shared access link, which
//! feeds the DropTail bottleneck; ACKs return over a clean reverse path.
//!
//! ```text
//!  senders ──► access link (k×C, FIFO) ──► bottleneck (C, DropTail) ──► receiver
//!     ▲                                                                    │
//!     └───────────────────────── ACK path (delay only) ◄──────────────────┘
//! ```
//!
//! The access link runs at a multiple of the bottleneck rate (the paper's
//! sender had 2×10 G bonded NICs into a 10 G port), so unpaced window
//! bursts arrive at the bottleneck faster than it drains — the mechanism
//! that makes pacing experiments interesting.

use crate::config::DumbbellConfig;
use crate::packet::{Ack, AppId, FlowId, Packet};
use crate::queue::{DropTailQueue, QueueStats};
use crate::tcp::{Receiver, Sender};
use dessim::{Model, Scheduler, SimDuration, SimRng, SimTime};
use std::collections::VecDeque;

/// Simulation events.
#[derive(Debug)]
pub enum Event {
    /// A flow begins transmitting.
    FlowStart(FlowId),
    /// The access link finished serializing its head packet.
    AccessDone,
    /// A packet reached the bottleneck queue.
    BottleneckArrive(Packet),
    /// The bottleneck finished serializing its head packet.
    BottleneckDone,
    /// A data packet reached the receiver.
    ReceiverArrive(Packet),
    /// An ACK reached its sender.
    SenderAck(Ack),
    /// Pacing timer for a flow.
    PaceTimer(FlowId),
    /// Delayed-ACK flush timer for a flow's receiver.
    AckFlush(FlowId),
    /// Retransmission timer check for a flow.
    RtoTimer(FlowId),
    /// End-of-warm-up counter snapshot.
    WarmupSnapshot,
}

/// One serializing link with a FIFO staging queue.
struct SerialLink {
    rate_bps: f64,
    queue: VecDeque<Packet>,
    in_service: Option<Packet>,
}

impl SerialLink {
    fn new(rate_bps: f64) -> SerialLink {
        SerialLink {
            rate_bps,
            queue: VecDeque::new(),
            in_service: None,
        }
    }

    fn tx_time(&self, size_bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(size_bytes as f64 * 8.0 / self.rate_bps)
    }
}

/// The full dumbbell state: implements [`dessim::Model`].
pub struct Network {
    cfg: DumbbellConfig,
    senders: Vec<Sender>,
    receivers: Vec<Receiver>,
    flow_app: Vec<AppId>,
    /// Per-flow one-way propagation delay (applied on the uplink and the
    /// ACK path; two of these give the flow's base RTT).
    flow_delay: Vec<SimDuration>,
    access: SerialLink,
    bottleneck_q: DropTailQueue,
    bottleneck: SerialLink,
    rto_pending: Vec<bool>,
    pace_pending: Vec<bool>,
    ack_flush_pending: Vec<bool>,
    loss_rng: SimRng,
    /// Queue stats snapshot taken at warm-up.
    pub warmup_queue_stats: Option<QueueStats>,
    /// Per-flow counter snapshots at warm-up.
    pub warmup_counters: Option<Vec<crate::metrics::FlowCounters>>,
}

impl Network {
    /// Build a network from a validated config.
    pub fn new(cfg: DumbbellConfig) -> Network {
        debug_assert!(cfg.validate().is_ok(), "config must be validated");
        let mut rng = SimRng::new(cfg.seed);
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        let mut flow_app = Vec::new();
        let mut flow_delay = Vec::new();
        let min_rto = SimDuration::from_millis(200);
        for (app_idx, app) in cfg.apps.iter().enumerate() {
            for _ in 0..app.connections {
                let flow = FlowId(senders.len());
                let jitter = 1.0 + cfg.rtt_jitter * (2.0 * rng.uniform01() - 1.0);
                let one_way = cfg.base_rtt.mul_f64(jitter * 0.5);
                senders.push(Sender::new(
                    flow,
                    AppId(app_idx),
                    app.cc,
                    app.paced,
                    app.pacing_ca_factor,
                    cfg.mss_bytes,
                    cfg.base_rtt,
                    min_rto,
                ));
                receivers.push(Receiver::with_aggregation(flow, cfg.ack_aggregation));
                flow_app.push(AppId(app_idx));
                flow_delay.push(one_way);
            }
        }
        let n = senders.len();
        let access_rate = cfg.bottleneck_bps * cfg.access_multiple;
        let buffer = cfg.buffer_bytes();
        let loss_rng = rng.fork();
        Network {
            cfg: cfg.clone(),
            senders,
            receivers,
            flow_app,
            flow_delay,
            access: SerialLink::new(access_rate),
            bottleneck_q: DropTailQueue::new(buffer),
            bottleneck: SerialLink::new(cfg.bottleneck_bps),
            rto_pending: vec![false; n],
            pace_pending: vec![false; n],
            ack_flush_pending: vec![false; n],
            loss_rng,
            warmup_queue_stats: None,
            warmup_counters: None,
        }
    }

    /// Immutable view of the senders (metrics extraction).
    pub fn senders(&self) -> &[Sender] {
        &self.senders
    }

    /// App owning each flow.
    pub fn flow_apps(&self) -> &[AppId] {
        &self.flow_app
    }

    /// Bottleneck queue statistics.
    pub fn queue_stats(&self) -> QueueStats {
        self.bottleneck_q.stats()
    }

    fn emit(&mut self, pkts: Vec<Packet>, sched: &mut Scheduler<Event>) {
        for pkt in pkts {
            self.access.queue.push_back(pkt);
        }
        self.kick_access(sched);
    }

    fn kick_access(&mut self, sched: &mut Scheduler<Event>) {
        if self.access.in_service.is_none() {
            if let Some(pkt) = self.access.queue.pop_front() {
                let tx = self.access.tx_time(pkt.size_bytes);
                self.access.in_service = Some(pkt);
                sched.after(tx, Event::AccessDone);
            }
        }
    }

    fn kick_bottleneck(&mut self, sched: &mut Scheduler<Event>) {
        if self.bottleneck.in_service.is_none() {
            if let Some(pkt) = self.bottleneck_q.take() {
                let tx = self.bottleneck.tx_time(pkt.size_bytes);
                self.bottleneck.in_service = Some(pkt);
                sched.after(tx, Event::BottleneckDone);
            }
        }
    }

    fn arm_flow_timers(&mut self, flow: FlowId, sched: &mut Scheduler<Event>) {
        let idx = flow.0;
        if let Some(deadline) = self.senders[idx].rto_deadline() {
            if !self.rto_pending[idx] {
                self.rto_pending[idx] = true;
                sched.at(deadline, Event::RtoTimer(flow));
            }
        }
        if let Some(wake) = self.senders[idx].pace_wake() {
            if !self.pace_pending[idx] {
                self.pace_pending[idx] = true;
                sched.at(wake, Event::PaceTimer(flow));
            }
        }
    }
}

impl Model for Network {
    type Event = Event;

    fn handle(&mut self, now: SimTime, event: Event, sched: &mut Scheduler<Event>) {
        match event {
            Event::FlowStart(flow) => {
                let pkts = self.senders[flow.0].start(now);
                self.emit(pkts, sched);
                self.arm_flow_timers(flow, sched);
            }
            Event::AccessDone => {
                let pkt = self
                    .access
                    .in_service
                    .take()
                    .expect("AccessDone without a packet in service");
                let delay = self.flow_delay[pkt.flow.0];
                sched.after(delay, Event::BottleneckArrive(pkt));
                self.kick_access(sched);
            }
            Event::BottleneckArrive(pkt) => {
                let flow = pkt.flow;
                let injected_loss =
                    self.cfg.random_loss > 0.0 && self.loss_rng.bernoulli(self.cfg.random_loss);
                if injected_loss || !self.bottleneck_q.offer(pkt) {
                    self.senders[flow.0].counters.drops += 1;
                } else {
                    self.kick_bottleneck(sched);
                }
            }
            Event::BottleneckDone => {
                let pkt = self
                    .bottleneck
                    .in_service
                    .take()
                    .expect("BottleneckDone without a packet in service");
                // Receiver sits at the bottleneck egress; downstream
                // propagation is folded into the ACK-path delay.
                sched.at(now, Event::ReceiverArrive(pkt));
                self.kick_bottleneck(sched);
            }
            Event::ReceiverArrive(pkt) => {
                let flow = pkt.flow;
                let decision = self.receivers[flow.0].on_segment(&pkt);
                let delay = self.flow_delay[flow.0];
                if let Some(ack) = decision.ack {
                    sched.after(delay, Event::SenderAck(ack));
                }
                if decision.want_flush_timer && !self.ack_flush_pending[flow.0] {
                    self.ack_flush_pending[flow.0] = true;
                    sched.after(self.cfg.ack_flush_delay, Event::AckFlush(flow));
                }
            }
            Event::AckFlush(flow) => {
                self.ack_flush_pending[flow.0] = false;
                if let Some(ack) = self.receivers[flow.0].flush() {
                    let delay = self.flow_delay[flow.0];
                    sched.after(delay, Event::SenderAck(ack));
                }
            }
            Event::SenderAck(ack) => {
                let flow = ack.flow;
                let pkts = self.senders[flow.0].on_ack(now, ack);
                self.emit(pkts, sched);
                self.arm_flow_timers(flow, sched);
            }
            Event::PaceTimer(flow) => {
                self.pace_pending[flow.0] = false;
                let pkts = self.senders[flow.0].on_pace_timer(now);
                self.emit(pkts, sched);
                self.arm_flow_timers(flow, sched);
            }
            Event::RtoTimer(flow) => {
                self.rto_pending[flow.0] = false;
                match self.senders[flow.0].rto_deadline() {
                    None => {}
                    Some(d) if d > now => {
                        // Deadline moved later (ACKs arrived); re-check then.
                        self.rto_pending[flow.0] = true;
                        sched.at(d, Event::RtoTimer(flow));
                    }
                    Some(_) => {
                        let pkts = self.senders[flow.0].on_rto_fire(now);
                        self.emit(pkts, sched);
                        self.arm_flow_timers(flow, sched);
                    }
                }
            }
            Event::WarmupSnapshot => {
                self.warmup_queue_stats = Some(self.bottleneck_q.stats());
                let mut snaps = Vec::with_capacity(self.senders.len());
                for s in &mut self.senders {
                    snaps.push(s.counters);
                    s.counters.reset_rtt_window();
                }
                self.warmup_counters = Some(snaps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AppConfig, CcKind};
    use dessim::Simulation;

    fn small_cfg(apps: Vec<AppConfig>) -> DumbbellConfig {
        DumbbellConfig {
            bottleneck_bps: 50e6,
            base_rtt: SimDuration::from_millis(20),
            buffer_bdp: 1.0,
            mss_bytes: 1500,
            apps,
            duration: SimDuration::from_secs(5),
            warmup: SimDuration::from_secs(2),
            seed: 42,
            ..Default::default()
        }
    }

    fn run(cfg: &DumbbellConfig) -> Simulation<Network> {
        let net = Network::new(cfg.clone());
        let mut sim = Simulation::new(net);
        for i in 0..cfg.total_flows() {
            sim.schedule(SimTime::ZERO, Event::FlowStart(FlowId(i)));
        }
        sim.schedule(SimTime::ZERO + cfg.warmup, Event::WarmupSnapshot);
        sim.run_until(SimTime::ZERO + cfg.duration);
        sim
    }

    #[test]
    fn single_flow_fills_the_link() {
        let cfg = small_cfg(vec![AppConfig::plain(CcKind::Reno)]);
        let sim = run(&cfg);
        let s = &sim.model.senders()[0];
        let snap = &sim.model.warmup_counters.as_ref().unwrap()[0];
        let window = (cfg.duration - cfg.warmup).as_secs_f64();
        let delivered = s.counters.segs_delivered - snap.segs_delivered;
        let tput = delivered as f64 * 1500.0 * 8.0 / window;
        // A single Reno flow should achieve most of 50 Mb/s.
        assert!(tput > 0.8 * 50e6, "throughput {tput}");
        assert!(
            tput < 1.02 * 50e6,
            "throughput cannot exceed capacity: {tput}"
        );
    }

    #[test]
    fn two_flows_share_fairly() {
        let cfg = small_cfg(vec![
            AppConfig::plain(CcKind::Reno),
            AppConfig::plain(CcKind::Reno),
        ]);
        let sim = run(&cfg);
        let snaps = sim.model.warmup_counters.as_ref().unwrap();
        let window = (cfg.duration - cfg.warmup).as_secs_f64();
        let tputs: Vec<f64> = sim
            .model
            .senders()
            .iter()
            .zip(snaps)
            .map(|(s, sn)| {
                (s.counters.segs_delivered - sn.segs_delivered) as f64 * 12000.0 / window
            })
            .collect();
        let total: f64 = tputs.iter().sum();
        assert!(total > 0.8 * 50e6, "aggregate {total}");
        let ratio = tputs[0] / tputs[1];
        assert!(
            (0.6..1.67).contains(&ratio),
            "fair-ish split, got {tputs:?}"
        );
    }

    #[test]
    fn congestion_causes_drops_and_retransmits() {
        let cfg = small_cfg(vec![
            AppConfig::plain(CcKind::Reno),
            AppConfig::plain(CcKind::Reno),
            AppConfig::plain(CcKind::Reno),
            AppConfig::plain(CcKind::Reno),
        ]);
        let sim = run(&cfg);
        assert!(
            sim.model.queue_stats().dropped > 0,
            "expected bottleneck drops"
        );
        let retx: u64 = sim
            .model
            .senders()
            .iter()
            .map(|s| s.counters.segs_retx)
            .sum();
        assert!(retx > 0, "expected retransmissions");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small_cfg(vec![
            AppConfig::plain(CcKind::Reno),
            AppConfig::plain(CcKind::Cubic),
        ]);
        let a = run(&cfg);
        let b = run(&cfg);
        for (sa, sb) in a.model.senders().iter().zip(b.model.senders()) {
            assert_eq!(sa.counters.segs_sent, sb.counters.segs_sent);
            assert_eq!(sa.counters.segs_delivered, sb.counters.segs_delivered);
            assert_eq!(sa.counters.segs_retx, sb.counters.segs_retx);
        }
        assert_eq!(a.processed(), b.processed());
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = small_cfg(vec![
            AppConfig::plain(CcKind::Reno),
            AppConfig::plain(CcKind::Reno),
        ]);
        let mut cfg2 = cfg.clone();
        cfg2.seed = 43;
        let a = run(&cfg);
        let b = run(&cfg2);
        let sent_a: u64 = a.model.senders().iter().map(|s| s.counters.segs_sent).sum();
        let sent_b: u64 = b.model.senders().iter().map(|s| s.counters.segs_sent).sum();
        assert_ne!(sent_a, sent_b);
    }

    #[test]
    fn random_loss_injection_forces_recovery() {
        let mut cfg = small_cfg(vec![AppConfig::plain(CcKind::Reno)]);
        cfg.random_loss = 0.01;
        let sim = run(&cfg);
        let s = &sim.model.senders()[0];
        assert!(s.counters.drops > 0, "injected losses should register");
        assert!(s.counters.segs_retx > 0, "recovery should retransmit");
        // The flow must keep making progress despite losses.
        assert!(s.counters.segs_delivered > 1000);
    }

    #[test]
    fn conservation_no_packet_creation() {
        // Delivered segments can never exceed sent segments.
        let cfg = small_cfg(vec![
            AppConfig {
                connections: 2,
                cc: CcKind::Reno,
                paced: false,
                pacing_ca_factor: 1.2,
            },
            AppConfig::plain(CcKind::Cubic),
        ]);
        let sim = run(&cfg);
        for s in sim.model.senders() {
            assert!(s.counters.segs_delivered <= s.counters.segs_sent);
        }
    }
}
