//! Packet-level network simulator for congestion-interference experiments.
//!
//! Reproduces the lab testbed of §3 of *Unbiased Experiments in Congested
//! Networks* (IMC '21): a dumbbell topology where a set of applications,
//! each owning one or more TCP connections, share a single DropTail
//! bottleneck. The original testbed was two Linux servers and a Tofino
//! switch; here every component is simulated, which preserves the
//! phenomenon under study — treatment and control flows competing in one
//! queue — while making experiments deterministic and laptop-scale.
//!
//! What is implemented (and what deliberately is not):
//!
//! * MSS-sized segments, cumulative ACKs, duplicate-ACK counting, fast
//!   retransmit, NewReno partial-ACK recovery, RTO with exponential
//!   backoff and go-back-N. **No SACK**, no delayed ACKs, no Nagle —
//!   bulk-transfer dynamics do not need them.
//! * Congestion control behind a trait: [`tcp::reno::Reno`],
//!   [`tcp::cubic::Cubic`] and a model-faithful [`tcp::bbr::Bbr`] (v1
//!   state machine: Startup/Drain/ProbeBW/ProbeRTT, windowed max
//!   bandwidth and min-RTT filters, gain cycling).
//! * Optional packet pacing at the Linux rates (2·cwnd/sRTT in slow
//!   start, 1.2·cwnd/sRTT in congestion avoidance); BBR always paces.
//! * A shared access link at a configurable multiple of the bottleneck
//!   rate, so bursts of unpaced traffic arrive faster than the bottleneck
//!   drains — the mechanism behind the pacing experiment.
//! * Deterministic per-flow RNG streams; optional random-loss fault
//!   injection for testing loss recovery.
//!
//! Entry point: build a [`config::DumbbellConfig`] and call
//! [`harness::run_dumbbell`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod fault;
pub mod harness;
pub mod metrics;
pub mod network;
pub mod packet;
pub mod queue;
pub mod tcp;

pub use config::{AppConfig, CcKind, DumbbellConfig};
pub use harness::{run_dumbbell, LabResult};
pub use metrics::{AppMetrics, FlowMetrics};
