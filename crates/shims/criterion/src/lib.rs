//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no network access, so this shim provides the
//! tiny API surface used by `crates/bench/benches/*`: `Criterion` with
//! `sample_size`/`measurement_time` builders, `bench_function` +
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! It measures wall-clock time per iteration and prints mean/min/max —
//! no warm-up analysis, outlier detection, or HTML reports. Point the
//! workspace `criterion` entry at a registry version to get the real
//! thing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (API-compatible subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Upper bound on total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run `f` under a [`Bencher`] and print a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.sample_size,
            deadline: Instant::now() + self.measurement_time,
        };
        f(&mut b);
        report(id, &b.samples);
        self
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
    deadline: Instant,
}

impl Bencher {
    /// Time `routine` once per sample, stopping at the sample budget or
    /// the measurement deadline (whichever comes first, but always at
    /// least one sample).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for i in 0..self.budget {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if i + 1 < self.budget && Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{id:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  (n={})",
        samples.len()
    );
}

/// Declare a group runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` from group runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 5);
    }

    #[test]
    fn deadline_stops_early_but_keeps_one_sample() {
        let mut c = Criterion::default()
            .sample_size(1000)
            .measurement_time(Duration::from_millis(0));
        let mut runs = 0usize;
        c.bench_function("deadline", |b| b.iter(|| runs += 1));
        assert!((1..1000).contains(&runs), "runs {runs}");
    }
}
