//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors
//! just enough of proptest's surface for the suites under `tests/`:
//! the [`proptest!`] macro, range/tuple/vec/bool strategies, `prop_map`,
//! and the `prop_assert*` macros. Inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce
//! exactly across runs. There is no shrinking: a failing case reports
//! the case index so it can be replayed under a debugger.
//!
//! To switch to the real crate, point the workspace `proptest` entry at
//! a registry version; the API used by the tests is a strict subset.

pub mod collection;
pub mod strategy;
pub mod test_runner;

#[allow(non_snake_case)]
pub mod bool {
    //! Boolean strategies (mirrors `proptest::bool`).
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `true` with probability `p`.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(pub f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.uniform01() < self.0
        }
    }

    /// `true` with probability `p`, `false` otherwise.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p.clamp(0.0, 1.0))
    }

    /// Uniform coin flip.
    pub const ANY: Weighted = Weighted(0.5);
}

/// Runner configuration (mirrors `proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable via the `PROPTEST_CASES` environment
    /// variable — the same knob the real crate reads, so CI can run
    /// the weekly deep-fuzz pass (`PROPTEST_CASES=4096`) without
    /// touching the suites.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert a condition inside a property; accepts `assert!`-style
/// formatting arguments.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = (<$crate::ProptestConfig as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( cfg = ($cfg:expr); ) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let strategies = ($($strat,)+);
            for __case in 0..config.cases {
                let ($($arg,)+) = $crate::strategy::Strategy::sample(&strategies, &mut rng);
                let run = || -> () { $body };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (deterministic; rerun reproduces it)",
                        __case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}
