//! Deterministic RNG driving the property tests.

/// SplitMix64-based generator. Each test gets a stream seeded from a
/// stable hash of its name, so runs are reproducible across processes
/// and platforms while different tests see unrelated streams.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a raw 64-bit value.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed deterministically from a test name (FNV-1a).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit draw (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(42);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }
}
