//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy producing `Vec`s whose length is drawn from a range and
/// whose elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// `vec(element, lo..hi)`: vectors of `lo..hi` elements.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(
        len.start < len.end,
        "vec strategy needs a non-empty length range"
    );
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_bounded() {
        let mut rng = TestRng::new(7);
        let s = vec(0u64..100, 1..20);
        for _ in 0..1000 {
            let v = s.sample(&mut rng);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 100));
        }
    }
}
