//! Value-generation strategies (a small subset of `proptest::strategy`).

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `sample`
/// draws a fresh value directly.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `f` returns true (rejection sampling,
    /// bounded attempts).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.uniform01()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        // 24-bit draw scaled in f32 space: casting uniform01() down from
        // f64 could round up to 1.0 and break the half-open contract.
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * u
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                debug_assert!(self.start < self.end, "empty range strategy");
                // Widen through i128 so signed ranges and u64 both work.
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.sample(rng);)+
                ($($v,)+)
            }
        }
    };
}

impl_strategy_tuple!(A / a);
impl_strategy_tuple!(A / a, B / b);
impl_strategy_tuple!(A / a, B / b, C / c);
impl_strategy_tuple!(A / a, B / b, C / c, D / d);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e, F / f);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
impl_strategy_tuple!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..10_000 {
            let x = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&y));
            let z = (1.5f64..2.5).sample(&mut rng);
            assert!((1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::new(2);
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = (0u64..4, 0.0f64..1.0, crate::bool::weighted(0.5)).sample(&mut rng);
        assert!(a < 4);
        assert!((0.0..1.0).contains(&b));
        let _: bool = c;
    }
}
