//! Fluid-simulator performance: one simulated day on a scaled link.
use criterion::{criterion_group, criterion_main, Criterion};
use streamsim::config::StreamConfig;
use streamsim::scenario::AllocationSchedule;
use streamsim::session::LinkId;
use streamsim::sim::LinkSim;

fn bench(_c: &mut Criterion) {
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8));
    let c = &mut c;
    let cfg = StreamConfig {
        days: 1,
        capacity_bps: 100e6,
        peak_arrivals_per_s: 0.024,
        ..Default::default()
    };
    c.bench_function("streamsim_one_day_small", |b| {
        b.iter(|| {
            let sim = LinkSim::new(
                cfg.clone(),
                LinkId::One,
                AllocationSchedule::Constant(0.5),
                1,
            );
            sim.run().0.len()
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
