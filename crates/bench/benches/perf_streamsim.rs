//! Fluid-simulator performance: one simulated day on a scaled link.
use criterion::{criterion_group, criterion_main, Criterion};
use streamsim::config::StreamConfig;
use streamsim::scenario::AllocationSchedule;
use streamsim::session::LinkId;
use streamsim::sim::LinkSim;

/// `STREAMSIM_BENCH_QUICK=1` shrinks the measurement deadline so CI can
/// smoke-test the hot loop (compile + a couple of iterations) without
/// paying for a full measurement run. Sample sizes stay ≥ 10 — the real
/// criterion crate rejects anything lower, and the shim's deadline cuts
/// the quick run short anyway.
fn quick() -> bool {
    std::env::var_os("STREAMSIM_BENCH_QUICK").is_some_and(|v| v != "0")
}

fn bench(_c: &mut Criterion) {
    let quick = quick();
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(if quick { 1 } else { 8 }));
    let c = &mut c;
    let cfg = StreamConfig {
        days: 1,
        capacity_bps: 100e6,
        peak_arrivals_per_s: 0.024,
        ..Default::default()
    };
    c.bench_function("streamsim_one_day_small", |b| {
        b.iter(|| {
            let sim = LinkSim::new(
                cfg.clone(),
                LinkId::One,
                AllocationSchedule::Constant(0.5),
                1,
            );
            sim.run().0.len()
        })
    });

    // The headline configuration: the full 5-day, 1 Gb/s world that
    // dominates figure-regeneration wall clock (ROADMAP "Scale" item).
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(if quick { 1 } else { 15 }));
    let c = &mut c;
    let default_cfg = StreamConfig::default();
    c.bench_function("streamsim_five_day_default", |b| {
        b.iter(|| {
            let sim = LinkSim::new(
                default_cfg.clone(),
                LinkId::One,
                AllocationSchedule::Constant(0.5),
                1,
            );
            sim.run().0.len()
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
