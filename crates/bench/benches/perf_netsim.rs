//! Packet-simulator performance: events/second on a small dumbbell.
use criterion::{criterion_group, criterion_main, Criterion};
use dessim::SimDuration;
use netsim::config::{AppConfig, CcKind, DumbbellConfig};
use netsim::run_dumbbell;

fn bench(_c: &mut Criterion) {
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8));
    let c = &mut c;
    let cfg = DumbbellConfig {
        bottleneck_bps: 50e6,
        base_rtt: SimDuration::from_millis(20),
        apps: vec![AppConfig::plain(CcKind::Reno); 4],
        duration: SimDuration::from_secs(3),
        warmup: SimDuration::from_secs(1),
        ..Default::default()
    };
    c.bench_function("netsim_dumbbell_3s_4flows", |b| {
        b.iter(|| run_dumbbell(&cfg).unwrap().events)
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
