//! End-to-end design performance: a small paired-link experiment plus
//! the full Figure-5 analysis.
use criterion::{criterion_group, criterion_main, Criterion};
use streamsim::session::Metric;
use unbiased::designs::{paired_link_effects, PairedLinkDesign};

fn bench(_c: &mut Criterion) {
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8));
    let c = &mut c;
    let cfg = repro_bench::paired_config(0.1, 1);
    c.bench_function("paired_link_1day_small_full_analysis", |b| {
        b.iter(|| {
            let out = PairedLinkDesign::paper(cfg.clone(), 5).run();
            paired_link_effects(&out.data, Metric::Throughput)
                .unwrap()
                .tte
                .relative
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
