//! Statistics-kernel performance: the Appendix-B regression.
use criterion::{criterion_group, criterion_main, Criterion};
use expstats::ols::{DesignBuilder, Ols};
use expstats::CovEstimator;

fn bench(_c: &mut Criterion) {
    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8));
    let c = &mut c;
    // 240 hourly cells, treatment + 23 hour dummies.
    let n = 240;
    let hours: Vec<usize> = (0..n).map(|i| i % 24).collect();
    // Alternate the arm per day-block so it is not collinear with
    // the hour dummies.
    let arm: Vec<f64> = (0..n).map(|i| ((i / 24) % 2) as f64).collect();
    let y: Vec<f64> = (0..n)
        .map(|i| 100.0 + (hours[i] as f64).sin() * 10.0 + arm[i] * 2.0 + (i as f64 * 0.7).sin())
        .collect();
    c.bench_function("ols_hour_fe_newey_west", |b| {
        b.iter(|| {
            let x = DesignBuilder::new()
                .intercept(n)
                .unwrap()
                .column("arm", &arm)
                .unwrap()
                .dummies("hour", &hours)
                .unwrap()
                .build()
                .unwrap();
            let fit = Ols::fit(x, &y).unwrap();
            fit.std_errors(CovEstimator::NeweyWest { lag: 2 }).unwrap()[1]
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
