//! The quarantine contract: a fault-tolerant sweep must degrade
//! *transparently* — surviving links bit-identical to a clean sweep
//! restricted to the same set, quarantined links reported, results
//! deterministic under work stealing — and `FailFast` must keep its
//! pre-existing panic-propagation semantics at any thread count.

use repro_bench::derive_seeds;
use repro_bench::runner::{FailurePolicy, Runner};
use streamsim::config::StreamConfig;
use streamsim::engine::EngineBackend;
use streamsim::fleet::{run_fleet_link_with, FleetDesign, FleetSim, LinkPopulation, LinkSpec};
use streamsim::telemetry::TelemetryFaults;
use unbiased::fleet::{DegradedReport, FleetLinkSummary, FleetSummary, DEFAULT_SKETCH_CAP};

fn small_base() -> StreamConfig {
    StreamConfig {
        days: 1,
        capacity_bps: 30e6,
        peak_arrivals_per_s: 0.24 * 0.03,
        mean_watch_s: 1500.0,
        ..Default::default()
    }
}

fn specs(n: usize) -> Vec<LinkSpec> {
    LinkPopulation::moderate(small_base(), n, 99).sample()
}

fn design() -> FleetDesign {
    FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    }
}

/// Quarantined sweep == clean sweep restricted to the surviving links,
/// bitwise: same link summaries (Welford cells compare by exact f64
/// equality), same sketches, same pair matching — the only difference
/// is the degraded report.
#[test]
fn quarantined_sweep_is_bit_identical_to_clean_sweep_over_survivors() {
    let base = small_base();
    let specs = specs(6);
    let design = design();
    let seeds = derive_seeds(4242, 2);
    let crashed = vec![1usize, 4];
    let faults = TelemetryFaults {
        crash_links: crashed.clone(),
        ..TelemetryFaults::none(7)
    };

    let quarantined = Runner::with_threads(3).sweep_fleet_streaming_policy(
        &base,
        &specs,
        &design,
        &seeds,
        DEFAULT_SKETCH_CAP,
        EngineBackend::Tick,
        Some(&faults),
        FailurePolicy::Quarantine { max_failures: 8 },
    );

    for (&seed, run) in seeds.iter().zip(&quarantined) {
        // Clean reference: the same fleet world (same per-link sim
        // seeds), folded in link order, skipping the crashed links.
        let (jobs, pairs) = FleetSim::new(&base, &specs, &design, seed).into_parts();
        let mut expected = FleetSummary::new(DEFAULT_SKETCH_CAP);
        for job in &jobs {
            if crashed.contains(&job.link) {
                continue;
            }
            let link_run = run_fleet_link_with(job, EngineBackend::Tick);
            expected.fold(FleetLinkSummary::from_run(&link_run, DEFAULT_SKETCH_CAP));
        }
        expected.finalize(pairs);

        // The degraded report names exactly the crashed links, sorted.
        let got_links: Vec<usize> = run
            .result
            .degraded
            .quarantined
            .iter()
            .map(|q| q.link)
            .collect();
        assert_eq!(got_links, crashed, "seed {seed}");
        for q in &run.result.degraded.quarantined {
            assert!(
                q.reason.contains("crashed"),
                "panic message preserved, got {:?}",
                q.reason
            );
        }

        // Everything else is bit-identical to the clean restriction.
        let mut scrubbed = run.result.clone();
        scrubbed.degraded = DegradedReport::default();
        assert_eq!(scrubbed, expected, "seed {seed}");
    }
}

/// Quarantine-mode sweeps are deterministic under work stealing: 1, 2
/// and 4 workers produce identical summaries *and* identical degraded
/// reports, with real telemetry faults layered on top of the crashes.
#[test]
fn quarantine_results_are_deterministic_across_thread_counts() {
    let base = small_base();
    let specs = specs(5);
    let design = design();
    let seeds = derive_seeds(11, 2);
    let faults = TelemetryFaults {
        drop_mcar: 0.05,
        drop_congested: 0.3,
        duplicate_p: 0.05,
        reorder_window: 3,
        crash_links: vec![2],
        ..TelemetryFaults::none(13)
    };
    let sweep = |threads: usize| {
        Runner::with_threads(threads).sweep_fleet_streaming_policy(
            &base,
            &specs,
            &design,
            &seeds,
            256,
            EngineBackend::Tick,
            Some(&faults),
            FailurePolicy::Quarantine { max_failures: 4 },
        )
    };
    let sequential = sweep(1);
    for run in &sequential {
        assert_eq!(run.result.degraded.len(), 1);
        assert_eq!(run.result.links.len(), 4);
        assert!(run.result.telemetry.loss_fraction() > 0.0);
    }
    for threads in [2, 4] {
        assert_eq!(sweep(threads), sequential, "threads {threads}");
    }
}

/// `FailFast` still propagates the first job panic at every thread
/// count — quarantine machinery must not leak into the default path.
#[test]
fn fail_fast_propagates_panics_at_any_thread_count() {
    let base = small_base();
    let specs = specs(4);
    let design = design();
    let faults = TelemetryFaults {
        crash_links: vec![3],
        ..TelemetryFaults::none(0)
    };
    for threads in [1usize, 2, 4] {
        let result = std::panic::catch_unwind(|| {
            Runner::with_threads(threads).sweep_fleet_streaming_policy(
                &base,
                &specs,
                &design,
                &[5],
                64,
                EngineBackend::Tick,
                Some(&faults),
                FailurePolicy::FailFast,
            )
        });
        assert!(result.is_err(), "threads {threads}: panic must propagate");
    }
}

/// Exceeding `max_failures` turns quarantine back into fail-fast: mass
/// failure means the world is broken, not one link.
#[test]
fn quarantine_budget_exhaustion_propagates() {
    let base = small_base();
    let specs = specs(5);
    let design = design();
    let faults = TelemetryFaults {
        crash_links: vec![0, 2, 4],
        ..TelemetryFaults::none(0)
    };
    let result = std::panic::catch_unwind(|| {
        Runner::with_threads(2).sweep_fleet_streaming_policy(
            &base,
            &specs,
            &design,
            &[5],
            64,
            EngineBackend::Tick,
            Some(&faults),
            FailurePolicy::Quarantine { max_failures: 2 },
        )
    });
    assert!(result.is_err(), "third failure must exceed the budget of 2");

    // With budget exactly equal to the failure count, the sweep survives.
    let ok = Runner::with_threads(2).sweep_fleet_streaming_policy(
        &base,
        &specs,
        &design,
        &[5],
        64,
        EngineBackend::Tick,
        Some(&faults),
        FailurePolicy::Quarantine { max_failures: 3 },
    );
    assert_eq!(ok[0].result.degraded.len(), 3);
    assert_eq!(ok[0].result.links.len(), 2);
}

/// Faults are applied post-engine: the delivered record stream (and so
/// the whole summary) is identical across tick and event backends.
#[test]
fn faulty_sweeps_agree_across_engine_backends() {
    let base = small_base();
    let specs = specs(3);
    let design = design();
    let seeds = [21u64];
    let faults = TelemetryFaults {
        drop_mcar: 0.1,
        drop_congested: 0.4,
        duplicate_p: 0.1,
        corrupt_nan_p: 0.02,
        reorder_window: 5,
        ..TelemetryFaults::none(3)
    };
    let run = |backend| {
        Runner::with_threads(2).sweep_fleet_streaming_policy(
            &base,
            &specs,
            &design,
            &seeds,
            128,
            backend,
            Some(&faults),
            FailurePolicy::Quarantine { max_failures: 0 },
        )
    };
    assert_eq!(run(EngineBackend::Tick), run(EngineBackend::Event));
}
