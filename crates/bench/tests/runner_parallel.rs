//! Acceptance tests for the multi-seed parallel scenario runner: a
//! ≥8-seed lab-dumbbell sweep must produce per-seed results
//! bit-identical to sequential execution, and must be faster than
//! sequential on a multi-core host.

use std::time::Instant;

use dessim::SimDuration;
use netsim::config::{AppConfig, CcKind, DumbbellConfig};
use repro_bench::runner::{derive_seeds, Runner};

fn small_lab() -> DumbbellConfig {
    DumbbellConfig {
        bottleneck_bps: 50e6,
        base_rtt: SimDuration::from_millis(20),
        apps: vec![AppConfig::plain(CcKind::Reno); 4],
        duration: SimDuration::from_secs(4),
        warmup: SimDuration::from_secs(1),
        seed: 0, // replaced per replication by the sweep
        ..Default::default()
    }
}

/// Flatten a LabResult into comparable bits (f64 comparison via to_bits
/// so "identical" means identical, not approximately equal).
fn fingerprint(runs: &[repro_bench::SeedRun<netsim::LabResult>]) -> Vec<(u64, Vec<u64>)> {
    runs.iter()
        .map(|r| {
            let mut bits = vec![r.result.events, r.result.window_secs.to_bits()];
            for a in &r.result.apps {
                bits.push(a.throughput_bps.to_bits());
                bits.push(a.retx_fraction.to_bits());
            }
            for f in &r.result.flows {
                bits.push(f.throughput_bps.to_bits());
            }
            (r.seed, bits)
        })
        .collect()
}

#[test]
fn eight_seed_dumbbell_sweep_matches_sequential() {
    let cfg = small_lab();
    let seeds = derive_seeds(2024, 8);
    let par = Runner::with_threads(8).sweep_dumbbell(&cfg, &seeds);
    let seq = Runner::with_threads(1).sweep_dumbbell(&cfg, &seeds);
    assert_eq!(fingerprint(&par), fingerprint(&seq));
}

#[test]
fn sweep_is_faster_than_sequential_on_multicore() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping wall-clock assertion: only {cores} core(s)");
        return;
    }
    let cfg = small_lab();
    let seeds = derive_seeds(7, 8);

    // Warm up allocators/caches so the comparison is fair.
    Runner::with_threads(1).sweep_dumbbell(&cfg, &seeds[..1]);

    // With ≥4 cores and 8 independent replications the parallel sweep
    // should comfortably beat sequential. Shared CI runners are noisy,
    // so take the best of two attempts before declaring a regression
    // (bit-identity is asserted on every attempt regardless).
    let mut ratios = Vec::new();
    for _ in 0..2 {
        let t0 = Instant::now();
        let seq = Runner::with_threads(1).sweep_dumbbell(&cfg, &seeds);
        let sequential = t0.elapsed();

        let t1 = Instant::now();
        let par = Runner::with_threads(cores.min(8)).sweep_dumbbell(&cfg, &seeds);
        let parallel = t1.elapsed();

        assert_eq!(fingerprint(&par), fingerprint(&seq));
        let ratio = parallel.as_secs_f64() / sequential.as_secs_f64();
        if ratio < 0.9 {
            return;
        }
        ratios.push(ratio);
    }
    panic!("parallel sweep not faster than sequential in any attempt: ratios {ratios:?}");
}

#[test]
fn sweep_root_is_reproducible_across_runs() {
    let cfg = small_lab();
    let a = Runner::new().sweep_root(&cfg, 99, 4, |cfg, seed| {
        let mut cfg = cfg.clone();
        cfg.seed = seed;
        netsim::run_dumbbell(&cfg).unwrap().total_throughput_bps()
    });
    let b = Runner::new().sweep_root(&cfg, 99, 4, |cfg, seed| {
        let mut cfg = cfg.clone();
        cfg.seed = seed;
        netsim::run_dumbbell(&cfg).unwrap().total_throughput_bps()
    });
    assert_eq!(a, b);
}
