//! Routed fleet sweeps through the Runner: the shared arrival stream
//! must not cost any of the sweep contracts — bit-identical results
//! across 1/2/4 worker threads, streaming summaries agreeing with the
//! record-based oracle, and tick/event backend parity.

use repro_bench::runner::{derive_seeds, Runner};
use streamsim::config::StreamConfig;
use streamsim::fleet::{FleetDesign, FleetLinkRun, LinkPopulation};
use streamsim::session::Metric;
use streamsim::{EngineBackend, RoutingConfig, RoutingPolicy};
use unbiased::fleet::{
    control_mean, control_mean_summary, link_level_effect, link_level_effect_summary,
    user_level_effect, user_level_effect_summary, DEFAULT_SKETCH_CAP,
};

fn small_base() -> StreamConfig {
    StreamConfig {
        days: 1,
        capacity_bps: 15e6,
        peak_arrivals_per_s: 0.24 * 0.015,
        mean_watch_s: 1200.0,
        ..Default::default()
    }
}

fn design() -> FleetDesign {
    FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    }
}

#[test]
fn routed_streaming_sweep_is_schedule_independent() {
    // The routed acceptance bar: work stealing must not leak into a
    // routed sweep any more than an unrouted one. 1, 2 and 4 threads
    // must produce bit-identical per-link cells and fleet sketches.
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 8, 5).sample();
    let routing = RoutingConfig::new(RoutingPolicy::LeastLoad, 3);
    let seeds = derive_seeds(9, 2);
    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            Runner::with_threads(t).sweep_fleet_streaming_routed(
                &base,
                &specs,
                &design(),
                &routing,
                &seeds,
                128,
            )
        })
        .collect();
    for pair in runs.windows(2) {
        for (a, b) in pair[0].iter().zip(&pair[1]) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.result.n_sessions, b.result.n_sessions);
            let (la, lb) = (a.result.link_refs(), b.result.link_refs());
            assert_eq!(la.len(), lb.len());
            for (x, y) in la.iter().zip(&lb) {
                assert_eq!(x.link, y.link);
                for metric in Metric::ALL {
                    let (cx, cy) = (x.cell(metric, true), y.cell(metric, true));
                    assert_eq!(cx.n, cy.n);
                    assert_eq!(cx.mean.to_bits(), cy.mean.to_bits());
                    assert_eq!(cx.m2.to_bits(), cy.m2.to_bits());
                }
            }
            for metric in Metric::ALL {
                assert_eq!(a.result.sketch(metric, true), b.result.sketch(metric, true));
                assert_eq!(
                    a.result.sketch(metric, false),
                    b.result.sketch(metric, false)
                );
            }
        }
    }
}

#[test]
fn routed_streaming_matches_record_oracle() {
    // Summary-based estimators over a routed sweep must agree with the
    // record-based twins to ≤1e-9 relative, same bar as unrouted.
    const TOL: f64 = 1e-9;
    let rel_close = |a: f64, b: f64| (a - b).abs() <= TOL * a.abs().max(b.abs()).max(1e-300);
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 8, 31).sample();
    let routing = RoutingConfig::new(RoutingPolicy::WeightedRandom, 2);
    let seeds = derive_seeds(77, 2);
    let runner = Runner::with_threads(4);
    let record = runner.sweep_fleet_routed(&base, &specs, &design(), &routing, &seeds);
    let streaming = runner.sweep_fleet_streaming_routed(
        &base,
        &specs,
        &design(),
        &routing,
        &seeds,
        DEFAULT_SKETCH_CAP,
    );
    assert_eq!(streaming.len(), seeds.len());
    for (r, s) in record.iter().zip(&streaming) {
        assert_eq!(r.seed, s.seed);
        let links: Vec<&FleetLinkRun> = r.result.links.iter().collect();
        let slinks = s.result.link_refs();
        for metric in [Metric::Bitrate, Metric::Throughput] {
            let base_mean = control_mean(&links, metric);
            let sbase = control_mean_summary(&slinks, metric);
            assert!(rel_close(base_mean, sbase), "{metric:?} control mean");
            let u = user_level_effect(&links, metric, base_mean).unwrap();
            let su = user_level_effect_summary(&slinks, metric, sbase).unwrap();
            assert!(rel_close(u.relative, su.relative), "user-level relative");
            assert!(rel_close(u.se, su.se), "user-level se");
            let l = link_level_effect(&links, metric, base_mean).unwrap();
            let sl = link_level_effect_summary(&slinks, metric, sbase).unwrap();
            assert!(rel_close(l.relative, sl.relative), "link-level relative");
            assert!(rel_close(l.se, sl.se), "link-level se");
        }
    }
}

#[test]
fn routed_sweep_backend_parity() {
    // The hybrid engine contract extends to routed fleets: tick and
    // event backends produce bit-identical session records, so routed
    // record sweeps agree exactly.
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 6, 11).sample();
    let routing = RoutingConfig::new(RoutingPolicy::RandomWalkOblivious, 3);
    let seeds = [42u64];
    let runner = Runner::with_threads(2);
    let tick = runner.sweep_fleet_routed_with(
        &base,
        &specs,
        &design(),
        &routing,
        &seeds,
        EngineBackend::Tick,
    );
    let event = runner.sweep_fleet_routed_with(
        &base,
        &specs,
        &design(),
        &routing,
        &seeds,
        EngineBackend::Event,
    );
    for (t, e) in tick.iter().zip(&event) {
        assert_eq!(t.result.links.len(), e.result.links.len());
        for (lt, le) in t.result.links.iter().zip(&e.result.links) {
            assert_eq!(lt.sessions.len(), le.sessions.len());
            let fp = |l: &FleetLinkRun| {
                l.sessions
                    .iter()
                    .map(|s| {
                        s.bytes.to_bits()
                            ^ s.bitrate_bps.to_bits().rotate_left(17)
                            ^ s.play_delay_s.to_bits().rotate_left(31)
                    })
                    .fold(0xcbf29ce484222325u64, |h, x| {
                        (h ^ x).wrapping_mul(0x100000001b3)
                    })
            };
            assert_eq!(fp(lt), fp(le), "link {:?} record fingerprint", lt.link);
        }
    }
}
