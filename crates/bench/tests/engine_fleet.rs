//! Fleet-scale backend agreement: sweeping a fleet on the hybrid
//! tick/event engine must reproduce the tick engine's **estimators** to
//! ≤1e-9 relative.
//!
//! Per-link session records are bit-identical across backends (the
//! single-link contract, `tests/engine_oracle.rs`), so everything
//! derived from records — user-level effects with CRV1 clustered SEs,
//! link-level effects, the aggregation comparison, streaming summary
//! folds — must carry that identity through. The ≤1e-9 tolerance (not
//! bitwise) mirrors the hourly-stats contract: the comparison goes
//! through `FleetEffect`s whose inputs are already bit-identical, so
//! any drift beyond noise means a backend leaked into the estimator
//! path.

use repro_bench::runner::{derive_seeds, Runner};
use streamsim::config::StreamConfig;
use streamsim::engine::EngineBackend;
use streamsim::fleet::{FleetDesign, FleetLinkRun, LinkPopulation};
use streamsim::session::Metric;
use unbiased::fleet::{
    aggregation_comparison, control_mean, control_mean_summary, link_level_effect,
    user_level_effect, user_level_effect_summary, FleetEffect, DEFAULT_SKETCH_CAP,
};

fn small_base() -> StreamConfig {
    StreamConfig {
        days: 1,
        capacity_bps: 15e6,
        peak_arrivals_per_s: 0.24 * 0.015,
        mean_watch_s: 1200.0,
        ..Default::default()
    }
}

const TOL: f64 = 1e-9;

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * a.abs().max(b.abs()).max(1e-300)
}

fn assert_effects_close(tick: &FleetEffect, event: &FleetEffect, what: &str) {
    assert!(
        rel_close(tick.relative, event.relative),
        "{what} relative: {} vs {}",
        tick.relative,
        event.relative
    );
    assert!(
        rel_close(tick.se, event.se),
        "{what} se: {} vs {}",
        tick.se,
        event.se
    );
    assert!(
        rel_close(tick.ci95.0, event.ci95.0) && rel_close(tick.ci95.1, event.ci95.1),
        "{what} ci: {:?} vs {:?}",
        tick.ci95,
        event.ci95
    );
    assert_eq!(tick.n_sessions, event.n_sessions, "{what} n_sessions");
    assert_eq!(tick.n_clusters, event.n_clusters, "{what} n_clusters");
}

/// Record-based sweep on both backends: per-link records bit-identical,
/// every estimator within ≤1e-9.
#[test]
fn fleet_estimators_agree_across_backends() {
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 12, 31).sample();
    let design = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let seeds = derive_seeds(99, 2);
    let runner = Runner::with_threads(4);
    let tick = runner.sweep_fleet(&base, &specs, &design, &seeds);
    let event = runner.sweep_fleet_with(&base, &specs, &design, &seeds, EngineBackend::Event);

    for (t, e) in tick.iter().zip(&event) {
        assert_eq!(t.seed, e.seed);
        assert_eq!(t.result.pairs, e.result.pairs);
        assert_eq!(t.result.links.len(), e.result.links.len());
        // The per-link record streams are the single-link contract:
        // spot-check bit-identity on the sufficient statistics before
        // comparing estimators built from them.
        for (tl, el) in t.result.links.iter().zip(&e.result.links) {
            assert_eq!(tl.link, el.link);
            assert_eq!(tl.sessions.len(), el.sessions.len(), "link {:?}", tl.link);
            let sum = |l: &FleetLinkRun| l.sessions.iter().map(|s| s.bytes).sum::<f64>().to_bits();
            assert_eq!(sum(tl), sum(el), "link {:?} bytes fingerprint", tl.link);
        }

        let tlinks: Vec<&FleetLinkRun> = t.result.links.iter().collect();
        let elinks: Vec<&FleetLinkRun> = e.result.links.iter().collect();
        for metric in [Metric::Bitrate, Metric::Throughput, Metric::PlayDelay] {
            let tb = control_mean(&tlinks, metric);
            let eb = control_mean(&elinks, metric);
            assert!(rel_close(tb, eb), "{metric:?} control mean: {tb} vs {eb}");
            let tu = user_level_effect(&tlinks, metric, tb).unwrap();
            let eu = user_level_effect(&elinks, metric, eb).unwrap();
            assert_effects_close(&tu, &eu, "user-level");
            let tl = link_level_effect(&tlinks, metric, tb).unwrap();
            let el = link_level_effect(&elinks, metric, eb).unwrap();
            assert_effects_close(&tl, &el, "link-level");
            let ta = aggregation_comparison(&tlinks, metric, tb).unwrap();
            let ea = aggregation_comparison(&elinks, metric, eb).unwrap();
            assert_effects_close(&ta.iid, &ea.iid, "iid");
            assert_effects_close(&ta.clustered, &ea.clustered, "clustered CRV1");
            assert_effects_close(&ta.link_means, &ea.link_means, "link means");
        }
    }
}

/// Bounded-memory streaming sweep on the event backend vs the tick
/// record oracle: summary-based estimators must agree to ≤1e-9, so the
/// fast backend composes with the low-memory aggregation path.
#[test]
fn fleet_streaming_summaries_agree_across_backends() {
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 12, 31).sample();
    let design = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let seeds = derive_seeds(7, 2);
    let runner = Runner::with_threads(4);
    let tick = runner.sweep_fleet(&base, &specs, &design, &seeds);
    let event = runner.sweep_fleet_streaming_with(
        &base,
        &specs,
        &design,
        &seeds,
        DEFAULT_SKETCH_CAP,
        EngineBackend::Event,
    );

    for (t, e) in tick.iter().zip(&event) {
        assert_eq!(t.seed, e.seed);
        let tlinks: Vec<&FleetLinkRun> = t.result.links.iter().collect();
        let elinks = e.result.link_refs();
        for metric in [Metric::Bitrate, Metric::Throughput] {
            let tb = control_mean(&tlinks, metric);
            let eb = control_mean_summary(&elinks, metric);
            assert!(rel_close(tb, eb), "{metric:?} control mean: {tb} vs {eb}");
            let tu = user_level_effect(&tlinks, metric, tb).unwrap();
            let eu = user_level_effect_summary(&elinks, metric, eb).unwrap();
            assert_effects_close(&tu, &eu, "user-level streaming");
        }
    }
}
