//! Streaming fleet aggregation vs the record-based oracle.
//!
//! The acceptance bar for the streaming path: on a 16-link × 3-seed
//! fleet, every summary-based estimator (user-level with CRV1 clustered
//! SEs, link-level, paired, aggregation comparison) must agree with its
//! record-based twin to ≤1e-9 relative — and the streaming sweep itself
//! must be deterministic under work stealing (bit-identical across
//! thread counts).

use repro_bench::runner::{derive_seeds, Runner};
use streamsim::config::StreamConfig;
use streamsim::fleet::{FleetDesign, FleetLinkRun, LinkPopulation};
use streamsim::session::Metric;
use unbiased::fleet::{
    aggregation_comparison, aggregation_comparison_summary, control_mean, control_mean_summary,
    ground_truth_tte_from_runs, ground_truth_tte_from_summaries, link_level_effect,
    link_level_effect_summary, paired_effect, paired_effect_summary, user_level_effect,
    user_level_effect_summary, FleetEffect, DEFAULT_SKETCH_CAP,
};

fn small_base() -> StreamConfig {
    StreamConfig {
        days: 1,
        capacity_bps: 15e6,
        peak_arrivals_per_s: 0.24 * 0.015,
        mean_watch_s: 1200.0,
        ..Default::default()
    }
}

const TOL: f64 = 1e-9;

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= TOL * a.abs().max(b.abs()).max(1e-300)
}

fn assert_effects_close(record: &FleetEffect, streaming: &FleetEffect, what: &str) {
    assert!(
        rel_close(record.relative, streaming.relative),
        "{what} relative: {} vs {}",
        record.relative,
        streaming.relative
    );
    assert!(
        rel_close(record.se, streaming.se),
        "{what} se: {} vs {}",
        record.se,
        streaming.se
    );
    assert!(
        rel_close(record.ci95.0, streaming.ci95.0) && rel_close(record.ci95.1, streaming.ci95.1),
        "{what} ci: {:?} vs {:?}",
        record.ci95,
        streaming.ci95
    );
    assert_eq!(record.n_sessions, streaming.n_sessions, "{what} n_sessions");
    assert_eq!(record.n_clusters, streaming.n_clusters, "{what} n_clusters");
}

#[test]
fn streaming_sweep_matches_record_oracle_16x3() {
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 16, 31).sample();
    let design = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let seeds = derive_seeds(77, 3);
    let runner = Runner::with_threads(4);
    let record = runner.sweep_fleet(&base, &specs, &design, &seeds);
    let streaming =
        runner.sweep_fleet_streaming(&base, &specs, &design, &seeds, DEFAULT_SKETCH_CAP);
    assert_eq!(streaming.len(), seeds.len());
    for (r, s) in record.iter().zip(&streaming) {
        assert_eq!(r.seed, s.seed);
        assert_eq!(r.result.links.len(), s.result.links.len());
        assert_eq!(r.result.pairs, s.result.pairs);
        let links: Vec<&FleetLinkRun> = r.result.links.iter().collect();
        let slinks = s.result.link_refs();
        // PlayDelay exercises the NaN-filtering path (cancelled
        // sessions), Bitrate the direct effect, Throughput congestion.
        for metric in [Metric::Bitrate, Metric::Throughput, Metric::PlayDelay] {
            let base_mean = control_mean(&links, metric);
            let sbase = control_mean_summary(&slinks, metric);
            assert!(rel_close(base_mean, sbase), "{metric:?} control mean");
            let u = user_level_effect(&links, metric, base_mean).unwrap();
            let su = user_level_effect_summary(&slinks, metric, sbase).unwrap();
            assert_effects_close(&u, &su, "user-level");
            let l = link_level_effect(&links, metric, base_mean).unwrap();
            let sl = link_level_effect_summary(&slinks, metric, sbase).unwrap();
            assert_effects_close(&l, &sl, "link-level");
            let a = aggregation_comparison(&links, metric, base_mean).unwrap();
            let sa = aggregation_comparison_summary(&slinks, metric, sbase).unwrap();
            assert_effects_close(&a.iid, &sa.iid, "iid");
            assert_effects_close(&a.clustered, &sa.clustered, "clustered CRV1");
            assert_effects_close(&a.link_means, &sa.link_means, "link means");
        }
    }
}

#[test]
fn streaming_paired_matches_record_oracle() {
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 16, 31).sample();
    let design = FleetDesign::StratifiedPairs {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let seeds = derive_seeds(123, 3);
    let runner = Runner::with_threads(4);
    let record = runner.sweep_fleet(&base, &specs, &design, &seeds);
    let streaming =
        runner.sweep_fleet_streaming(&base, &specs, &design, &seeds, DEFAULT_SKETCH_CAP);
    for (r, s) in record.iter().zip(&streaming) {
        assert_eq!(s.result.pairs.len(), 8);
        let links: Vec<&FleetLinkRun> = r.result.links.iter().collect();
        let base_mean = control_mean(&links, Metric::Bitrate);
        let p = paired_effect(&r.result, Metric::Bitrate, base_mean).unwrap();
        let sp = paired_effect_summary(&s.result, Metric::Bitrate, base_mean).unwrap();
        assert_effects_close(&p, &sp, "paired");
    }
}

#[test]
fn streaming_ground_truth_matches_record_oracle() {
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 4, 31).sample();
    let runner = Runner::with_threads(2);
    let seeds = [42u64];
    let at = |p: f64| {
        let record = runner.sweep_fleet(&base, &specs, &FleetDesign::UserLevel { p }, &seeds);
        let streaming =
            runner.sweep_fleet_streaming(&base, &specs, &FleetDesign::UserLevel { p }, &seeds, 256);
        (
            record.into_iter().next().unwrap().result,
            streaming.into_iter().next().unwrap().result,
        )
    };
    let (rt, st) = at(1.0);
    let (rc, sc) = at(0.0);
    let record = ground_truth_tte_from_runs(&rt, &rc, Metric::Bitrate).unwrap();
    let streaming = ground_truth_tte_from_summaries(&st, &sc, Metric::Bitrate).unwrap();
    assert!(rel_close(record, streaming), "{record} vs {streaming}");
}

#[test]
fn streaming_sweep_is_schedule_independent() {
    // Work stealing must not leak into results: different thread counts
    // produce bit-identical estimates and sketches.
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 8, 5).sample();
    let design = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let seeds = derive_seeds(9, 2);
    let runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            Runner::with_threads(t).sweep_fleet_streaming(&base, &specs, &design, &seeds, 128)
        })
        .collect();
    for pair in runs.windows(2) {
        for (a, b) in pair[0].iter().zip(&pair[1]) {
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.result.n_sessions, b.result.n_sessions);
            let (la, lb) = (a.result.link_refs(), b.result.link_refs());
            assert_eq!(la.len(), lb.len());
            for (x, y) in la.iter().zip(&lb) {
                assert_eq!(x.link, y.link);
                for metric in Metric::ALL {
                    let (cx, cy) = (x.cell(metric, true), y.cell(metric, true));
                    assert_eq!(cx.n, cy.n);
                    assert_eq!(cx.mean.to_bits(), cy.mean.to_bits());
                    assert_eq!(cx.m2.to_bits(), cy.m2.to_bits());
                }
            }
            // Fleet-level sketches merge in scheduler order but are
            // set-semantics: identical representation.
            for metric in Metric::ALL {
                assert_eq!(a.result.sketch(metric, true), b.result.sketch(metric, true));
                assert_eq!(
                    a.result.sketch(metric, false),
                    b.result.sketch(metric, false)
                );
            }
        }
    }
}

#[test]
fn streaming_regroup_boundary_is_exact() {
    // Satellite regression: jobs are laid out seed-major and regrouped
    // in specs.len() strides; every seed must get exactly its own links
    // (link indices 0..n in order, correct pair sets) even when the
    // seed count doesn't divide the worker count.
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 5, 7).sample();
    let design = FleetDesign::StratifiedPairs {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let seeds = derive_seeds(33, 3);
    let streaming =
        Runner::with_threads(4).sweep_fleet_streaming(&base, &specs, &design, &seeds, 64);
    let record = Runner::with_threads(1).sweep_fleet(&base, &specs, &design, &seeds);
    for (s, r) in streaming.iter().zip(&record) {
        assert_eq!(s.result.links.len(), 5);
        for (i, l) in s.result.links.iter().enumerate() {
            assert_eq!(l.link, i);
        }
        // Pair sets are per-seed randomized; crossing a regroup boundary
        // would hand seed k the pairs of seed k±1.
        assert_eq!(s.result.pairs, r.result.pairs);
        // Session counts per link match the record path exactly.
        for (sl, rl) in s.result.links.iter().zip(&r.result.links) {
            assert_eq!(sl.n_sessions, rl.sessions.len());
            assert_eq!(sl.treated_cluster, rl.treated_cluster);
        }
    }
}
