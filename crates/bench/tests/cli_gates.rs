//! The CI gate binaries, driven end to end as subprocesses: the paths
//! a green CI run never exercises — warn-but-pass and hard-fail exits —
//! must be pinned by tests, or a refactor can silently turn a gate into
//! a no-op.

use std::path::PathBuf;
use std::process::{Command, Output};

use repro_bench::figharness::EXPECTED_FIGURES;

/// Fresh scratch directory under the target tmpdir, per test.
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(exe: &str, args: &[&str]) -> Output {
    Command::new(exe)
        .args(args)
        .output()
        .expect("spawn gate binary")
}

#[test]
fn regression_check_warns_but_passes_on_missing_quick_incomparable() {
    // A quick-incomparable scenario (`fleet_large`) present in the
    // baseline but absent from a quick-mode report must *warn* on
    // stderr and still exit 0: its quick workload differs, so there is
    // no ratio to gate on — but a silent skip would hide a dropped
    // bench, hence the warning.
    let dir = scratch("regcheck_warn");
    let baseline = dir.join("baseline.json");
    let current = dir.join("current.json");
    std::fs::write(
        &baseline,
        r#"{"scenarios": {"sim_one_day": {"median_s": 0.5}, "fleet_large": {"median_s": 30.0}}}"#,
    )
    .unwrap();
    std::fs::write(
        &current,
        r#"{"quick": true, "scenarios": {"sim_one_day": {"median_s": 0.5}}}"#,
    )
    .unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_bench_regression_check"),
        &[baseline.to_str().unwrap(), current.to_str().unwrap()],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "gate must pass despite the missing quick-incomparable scenario; stderr: {stderr}"
    );
    assert!(
        stderr.contains("warning:") && stderr.contains("fleet_large"),
        "expected a warning naming the missing scenario, got: {stderr}"
    );
}

#[test]
fn regression_check_fails_on_missing_comparable_scenario() {
    // The contrast case: a *comparable* scenario missing from the
    // current report is a hard failure, not a warning.
    let dir = scratch("regcheck_fail");
    let baseline = dir.join("baseline.json");
    let current = dir.join("current.json");
    std::fs::write(
        &baseline,
        r#"{"scenarios": {"sim_one_day": {"median_s": 0.5}}}"#,
    )
    .unwrap();
    std::fs::write(&current, r#"{"quick": true, "scenarios": {}}"#).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_bench_regression_check"),
        &[baseline.to_str().unwrap(), current.to_str().unwrap()],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "gate must fail; stderr: {stderr}");
    assert!(
        stderr.contains("sim_one_day") && stderr.contains("missing"),
        "expected an error naming the missing scenario, got: {stderr}"
    );
}

/// Write a minimal valid report for every expected figure id.
fn write_all_reports(dir: &std::path::Path) {
    for (id, _) in EXPECTED_FIGURES {
        std::fs::write(
            dir.join(format!("{id}.json")),
            format!("{{\"id\": \"{id}\"}}\n"),
        )
        .unwrap();
    }
}

#[test]
fn figures_merge_accepts_complete_set_and_rejects_mislabeled_report() {
    let dir = scratch("figmerge");
    write_all_reports(&dir);
    let out_path = dir.join("figures.json");
    let ok = run(
        env!("CARGO_BIN_EXE_figures_merge"),
        &[dir.to_str().unwrap(), out_path.to_str().unwrap()],
    );
    assert!(
        ok.status.success(),
        "complete report set must merge; stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(out_path.exists(), "merged artifact must be written");

    // Now mislabel one report: the file is valid JSON at the right
    // path, but its `"id"` names a different figure — the exact shape
    // of a copy-paste bug in a new figure binary. Hard error.
    let (first_id, _) = EXPECTED_FIGURES[0];
    std::fs::write(
        dir.join(format!("{first_id}.json")),
        "{\"id\": \"some_other_figure\"}\n",
    )
    .unwrap();
    let bad = run(
        env!("CARGO_BIN_EXE_figures_merge"),
        &[dir.to_str().unwrap(), out_path.to_str().unwrap()],
    );
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        !bad.status.success(),
        "mislabeled report must fail the merge; stderr: {stderr}"
    );
    assert!(
        stderr.contains(first_id) && stderr.contains("some_other_figure"),
        "expected the mismatch to name both ids, got: {stderr}"
    );
}

#[test]
fn figures_merge_list_prints_every_figure_binary() {
    // The CI figure-smoke job loops over `--list`; it must emit exactly
    // the binary column of EXPECTED_FIGURES, one per line.
    let out = run(env!("CARGO_BIN_EXE_figures_merge"), &["--list"]);
    assert!(out.status.success());
    let listed: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    let expected: Vec<&str> = EXPECTED_FIGURES.iter().map(|(_, b)| *b).collect();
    assert_eq!(listed, expected);
}
