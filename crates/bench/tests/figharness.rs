//! Figure-harness contract tests: golden text/JSON rendering and
//! end-to-end quick-mode determinism of a real figure binary.

use repro_bench::figharness::{fmt_pct, FigureReport};
use repro_bench::json;
use repro_bench::{FigCell, SeedCi};

fn sample_report() -> FigureReport {
    let mut rep = FigureReport::new("figx", "Figure X: a \"sample\" figure")
        .seeds(4)
        .with_git_rev("abc1234")
        .with_quick(false);
    let ci = SeedCi {
        mean: 0.1234,
        ci: (0.10, 0.15),
        se: 0.01,
        n: 4,
    };
    let t = rep.add_table("", vec!["metric", "TTE", "flag"]);
    rep.row(
        t,
        "throughput",
        vec![FigCell::ci(&ci, fmt_pct(&ci)), FigCell::text("YES")],
    );
    rep.row(t, "min RTT", vec![FigCell::missing(), FigCell::text("")]);
    let t2 = rep.add_table("points", vec!["k", "value"]);
    rep.row(t2, "0", vec![FigCell::value(1.5, "1.500")]);
    rep.series_with_ci(
        "link1",
        vec![1.0, 0.5, f64::NAN],
        vec![0.25, 0.125, f64::NAN],
    );
    rep.note("(a closing note)");
    rep.warn("event study/min RTT: estimator failed on 4/4 seeds (seed 7: too few observations)");
    rep
}

/// The text rendering is part of the output contract: figure binaries
/// are diffed across revisions and the CI smoke logs are read by
/// humans, so a formatting change must be deliberate.
#[test]
fn golden_text_rendering() {
    let expected = "\
Figure X: a \"sample\" figure
[figx · 4 seeds · mean ± 95% CI · git abc1234]

metric                          TTE  flag
-----------------------------------------
throughput  +12.3% [+10.0%, +15.0%]   YES
min RTT                           -

points
k  value
--------
0  1.500

hour  link1      ±
------------------
0     1.000  0.250
1     0.500  0.125
2       NaN    NaN

(a closing note)

warning: event study/min RTT: estimator failed on 4/4 seeds (seed 7: too few observations)
";
    assert_eq!(sample_report().render_text(), expected);
}

/// The JSON rendering is the machine half of the contract (consumed by
/// `figures_merge` and the CI artifact); it must stay byte-stable and
/// valid, with NaN mapped to null.
#[test]
fn golden_json_rendering() {
    let expected = r#"{
  "id": "figx",
  "title": "Figure X: a \"sample\" figure",
  "git_rev": "abc1234",
  "quick": false,
  "seeds": 4,
  "tables": [
    {
      "name": "",
      "columns": ["metric", "TTE", "flag"],
      "rows": [
        { "label": "throughput", "cells": [{ "text": "+12.3% [+10.0%, +15.0%]", "mean": 0.1234, "ci": [0.1, 0.15], "n": 4 }, { "text": "YES" }] },
        { "label": "min RTT", "cells": [{ "text": "-" }, { "text": "" }] }
      ]
    },
    {
      "name": "points",
      "columns": ["k", "value"],
      "rows": [
        { "label": "0", "cells": [{ "text": "1.500", "mean": 1.5 }] }
      ]
    }
  ],
  "series": [
    { "label": "link1", "values": [1.0, 0.5, null], "half_widths": [0.25, 0.125, null] }
  ],
  "notes": ["(a closing note)"],
  "warnings": ["event study/min RTT: estimator failed on 4/4 seeds (seed 7: too few observations)"]
}
"#;
    let got = sample_report().to_json();
    assert_eq!(got, expected);
    json::validate(&got).expect("golden JSON parses");
}

/// Run a real figure binary twice in quick mode: stdout and the JSON
/// report must be bit-identical across invocations (same seeds ⇒ same
/// bytes — the property that makes figure output diffable across
/// revisions and the runner's parallelism invisible).
#[test]
fn quick_mode_figure_run_is_deterministic() {
    let bin = env!("CARGO_BIN_EXE_table_baseline_similarity");
    let base = std::env::temp_dir().join(format!("figharness-det-{}", std::process::id()));
    let run = |tag: &str| {
        let dir = base.join(tag);
        let out = std::process::Command::new(bin)
            .env("FIG_QUICK", "1")
            .env("FIG_JSON_DIR", &dir)
            .output()
            .expect("run figure binary");
        assert!(
            out.status.success(),
            "figure binary failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let json_path = dir.join("table_baseline_similarity.json");
        let report = std::fs::read(&json_path).expect("figure wrote JSON");
        (out.stdout, report)
    };
    let (stdout_a, json_a) = run("a");
    let (stdout_b, json_b) = run("b");
    std::fs::remove_dir_all(&base).ok();

    assert_eq!(stdout_a, stdout_b, "stdout differs between identical runs");
    assert_eq!(json_a, json_b, "JSON report differs between identical runs");

    // And the emitted report satisfies the machine contract.
    let parsed = json::parse(std::str::from_utf8(&json_a).unwrap()).expect("valid JSON");
    assert_eq!(
        parsed.get("id").and_then(json::Value::as_str),
        Some("table_baseline_similarity")
    );
    assert_eq!(parsed.get("quick"), Some(&json::Value::Bool(true)));
    let seeds = parsed.get("seeds").and_then(json::Value::as_f64).unwrap();
    assert!(seeds >= 2.0, "quick mode still sweeps multiple seeds");
}
