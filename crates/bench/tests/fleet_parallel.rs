//! Fleet-sweep determinism: the parallel link×seed work-stealing sweep
//! must be bit-identical to sequential execution, mirroring
//! `runner_parallel.rs` for the fleet layer.

use repro_bench::runner::{derive_seeds, Runner};
use streamsim::config::StreamConfig;
use streamsim::fleet::{FleetDesign, FleetRun, FleetSim, LinkPopulation};

fn small_base() -> StreamConfig {
    StreamConfig {
        days: 1,
        capacity_bps: 15e6,
        peak_arrivals_per_s: 0.24 * 0.015,
        mean_watch_s: 1200.0,
        ..Default::default()
    }
}

/// Bit-exact fingerprint of a fleet run: per link, the session count and
/// the xor of every session's byte/throughput bit patterns (f64 compared
/// via to_bits so "identical" means identical).
fn fingerprint(run: &FleetRun) -> Vec<(usize, Option<bool>, usize, u64)> {
    run.links
        .iter()
        .map(|l| {
            let mut bits = 0u64;
            for s in &l.sessions {
                bits ^= s.bytes.to_bits();
                bits = bits.rotate_left(7) ^ s.throughput_bps.to_bits();
            }
            (l.link, l.treated_cluster, l.sessions.len(), bits)
        })
        .collect()
}

#[test]
fn parallel_fleet_sweep_matches_sequential() {
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 5, 31).sample();
    let design = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let seeds = derive_seeds(77, 3);

    let par = Runner::with_threads(4).sweep_fleet(&base, &specs, &design, &seeds);
    let one = Runner::with_threads(1).sweep_fleet(&base, &specs, &design, &seeds);
    // The oracle: plain sequential FleetSim::run per seed, no runner.
    let seq: Vec<(u64, FleetRun)> = seeds
        .iter()
        .map(|&s| (s, FleetSim::new(&base, &specs, &design, s).run()))
        .collect();

    assert_eq!(par.len(), seeds.len());
    for ((p, o), (seed, s)) in par.iter().zip(&one).zip(&seq) {
        assert_eq!(p.seed, *seed);
        assert_eq!(o.seed, *seed);
        assert_eq!(fingerprint(&p.result), fingerprint(s));
        assert_eq!(fingerprint(&o.result), fingerprint(s));
        assert_eq!(p.result.pairs, s.pairs);
    }
}

#[test]
fn fleet_sweep_carries_pairs_and_covers_every_link() {
    let base = small_base();
    let specs = LinkPopulation::moderate(base.clone(), 6, 5).sample();
    let design = FleetDesign::StratifiedPairs {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let runs = Runner::with_threads(3).sweep_fleet(&base, &specs, &design, &derive_seeds(9, 2));
    for r in &runs {
        assert_eq!(r.result.links.len(), 6);
        assert_eq!(r.result.pairs.len(), 3);
        // Links come back in link order regardless of which worker ran
        // them.
        for (i, l) in r.result.links.iter().enumerate() {
            assert_eq!(l.link, i);
            assert!(!l.sessions.is_empty());
        }
    }
    // Whatever the per-replication coin flips produced, the pairing must
    // be a valid (disjoint) matching.
    for r in &runs {
        let mut seen = [false; 6];
        for &(t, c) in &r.result.pairs {
            assert!(!seen[t] && !seen[c], "matching must be disjoint");
            seen[t] = true;
            seen[c] = true;
        }
    }
}
