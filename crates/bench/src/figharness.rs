//! Shared multi-seed figure harness.
//!
//! Every figure/table binary in `src/bin/` reports through one output
//! contract, [`FigureReport`]:
//!
//! * **text** to stdout — the human-readable tables/series the binaries
//!   have always printed, now with a standard `[id · seeds · git rev]`
//!   subtitle and an explicit `warning:` section instead of silently
//!   dropped cells;
//! * **JSON** to `$FIG_JSON_DIR/<id>.json` when that variable is set —
//!   the machine-readable form CI merges into one `figures.json`
//!   artifact (see `figures_merge`).
//!
//! Cross-seed cells are mean ± 95% CI over replications (via
//! [`crate::metric_ci`], i.e. `expstats::mean_ci` per cell), produced by
//! seed-sweep drivers layered on [`Runner::sweep_paired`] /
//! [`Runner::map`]. Setting `FIG_QUICK=1` shrinks every sweep (fewer
//! seeds, smaller streaming scale, shorter horizon) so CI can *execute*
//! each figure instead of merely compiling it; quick runs are marked in
//! both output forms.

use std::fmt::Write as _;

use crate::runner::PairedBaselineRun;
use crate::{derive_seeds, json, metric_ci, Runner, SeedCi, SeedRun};
use streamsim::scenario::AllocationSchedule;
use unbiased::designs::PairedOutcome;

/// Replication count used by quick mode (`mean_ci` needs ≥ 2).
pub const QUICK_REPLICATIONS: usize = 3;
/// Streaming scale cap under quick mode.
pub const QUICK_STREAM_SCALE: f64 = 0.15;
/// Streaming horizon cap (days) under quick mode. Three days keeps the
/// §5 emulations structurally intact: an event-study switch on day 2
/// still has pre and post days, and an alternating switchback plan still
/// has both arms.
pub const QUICK_STREAM_DAYS: usize = 3;
/// Fleet-size cap under quick mode: CI smoke runs a ≤16-link fleet so
/// the fleet figures execute in seconds while keeping enough clusters
/// for both arms of a link-level randomization to show up.
pub const QUICK_FLEET_LINKS: usize = 16;

/// Every figure/table binary that reports through the harness, as
/// `(report id, binary name)` — the id is the [`FigureReport`] id (and
/// the `<id>.json` file stem), the binary name is what
/// `cargo run --bin` takes. The `figures_merge` gate validates exactly
/// this set and its `--list` mode prints the binary column for the CI
/// figure-smoke loop, so registering a figure here is the only step.
/// Keep in sync with `src/bin/` (`bench_report`, `sweep_demo`, and the
/// gate tools themselves are not figures).
pub const EXPECTED_FIGURES: &[(&str, &str)] = &[
    ("fig1", "fig1_exposure_curves"),
    ("fig2a", "fig2a_connections"),
    ("fig2b", "fig2b_pacing"),
    ("fig3", "fig3_bbr_cubic"),
    ("fig5", "fig5_effects_table"),
    ("fig6", "fig6_throughput_timeseries"),
    ("fig7", "fig7_throughput_cells"),
    ("fig8", "fig8_minrtt_cells"),
    ("fig9", "fig9_retransmits_peak"),
    ("fig10", "fig10_design_comparison"),
    ("fig11", "fig11_event_study_ts"),
    ("fig12", "fig12_switchback_ts"),
    ("fig13", "fig13_aggregation_ci"),
    ("ablation_ack_aggregation", "ablation_ack_aggregation"),
    ("ablation_fig3_buffer", "ablation_fig3_buffer"),
    ("ablation_nw_lag", "ablation_nw_lag"),
    ("table_baseline_similarity", "table_baseline_similarity"),
    ("aa_calibration", "aa_calibration"),
    ("quantile_effects", "quantile_effects"),
    ("sec5_gradual_deployment", "sec5_gradual_deployment"),
    ("fleet_design_comparison", "fleet_design_comparison"),
    ("fleet_aggregation_ci", "fleet_aggregation_ci"),
    ("fleet_telemetry_bias", "fleet_telemetry_bias"),
    ("fleet_routing_spillover", "fleet_routing_spillover"),
];

/// Whether quick mode (`FIG_QUICK=1`) is active.
pub fn quick() -> bool {
    std::env::var_os("FIG_QUICK").is_some_and(|v| v != "0")
}

/// Replication count honoring quick mode: `full` normally,
/// `min(full, QUICK_REPLICATIONS)` under `FIG_QUICK=1`.
pub fn replications(full: usize) -> usize {
    if quick() {
        full.min(QUICK_REPLICATIONS)
    } else {
        full
    }
}

/// Streaming-world scale honoring quick mode.
pub fn stream_scale(full: f64) -> f64 {
    if quick() {
        full.min(QUICK_STREAM_SCALE)
    } else {
        full
    }
}

/// Streaming horizon (days) honoring quick mode.
pub fn stream_days(full: usize) -> usize {
    if quick() {
        full.min(QUICK_STREAM_DAYS)
    } else {
        full
    }
}

/// Fleet link count honoring quick mode: `full` normally,
/// `min(full, QUICK_FLEET_LINKS)` under `FIG_QUICK=1`.
pub fn fleet_links(full: usize) -> usize {
    if quick() {
        full.min(QUICK_FLEET_LINKS)
    } else {
        full
    }
}

/// Shorten a lab dumbbell run under quick mode (same topology, smaller
/// time horizon — the packet simulator dominates figure-smoke
/// wall-clock otherwise).
pub fn quicken_lab(cfg: &mut netsim::config::DumbbellConfig) {
    if quick() {
        cfg.duration = dessim::SimDuration::from_secs(8);
        cfg.warmup = dessim::SimDuration::from_secs(3);
    }
}

/// Short git revision of the working tree, or `"unknown"` outside a
/// repo.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One table cell: a display string plus the machine-readable numbers
/// behind it (all optional — a label or flag cell carries text only).
#[derive(Debug, Clone, PartialEq)]
pub struct FigCell {
    /// Rendered form used by the text table.
    pub text: String,
    /// Cross-seed (or point) estimate.
    pub mean: Option<f64>,
    /// 95% confidence interval for the mean.
    pub ci: Option<(f64, f64)>,
    /// Replications the estimate aggregates.
    pub n: Option<usize>,
}

impl FigCell {
    /// A text-only cell (flags, counts, labels).
    pub fn text(text: impl Into<String>) -> FigCell {
        FigCell {
            text: text.into(),
            mean: None,
            ci: None,
            n: None,
        }
    }

    /// A point value with its display form.
    pub fn value(v: f64, text: impl Into<String>) -> FigCell {
        FigCell {
            text: text.into(),
            mean: Some(v),
            ci: None,
            n: None,
        }
    }

    /// A cross-seed mean ± CI cell with its display form.
    pub fn ci(c: &SeedCi, text: impl Into<String>) -> FigCell {
        FigCell {
            text: text.into(),
            mean: Some(c.mean),
            ci: Some(c.ci),
            n: Some(c.n),
        }
    }

    /// The "not estimable" cell.
    pub fn missing() -> FigCell {
        FigCell::text("-")
    }
}

/// Render a [`SeedCi`] as a relative-percentage cell, e.g.
/// `+12.3% [+10.1%, +14.5%]`.
pub fn fmt_pct(c: &SeedCi) -> String {
    use expstats::table::{pct, pct_ci};
    format!("{} {}", pct(c.mean), pct_ci(c.ci))
}

/// Render a [`SeedCi`] scaled by `factor` with `prec` decimals, e.g.
/// `factor = 1e-6` for Mb/s: `34.12 (33.80..34.44)`.
pub fn fmt_scaled(factor: f64, prec: usize) -> impl Fn(&SeedCi) -> String {
    move |c: &SeedCi| {
        format!(
            "{:.prec$} ({:.prec$}..{:.prec$})",
            c.mean * factor,
            c.ci.0 * factor,
            c.ci.1 * factor,
        )
    }
}

/// One labeled row of a figure table.
#[derive(Debug, Clone, PartialEq)]
pub struct FigRow {
    /// Row label (first column).
    pub label: String,
    /// Data cells (columns after the label).
    pub cells: Vec<FigCell>,
}

/// One table of a figure (most figures have exactly one; e.g. Figure 7
/// has the cell-mean grid plus the estimand contrasts).
#[derive(Debug, Clone, PartialEq)]
pub struct FigTable {
    /// Sub-table name ("" when the figure has a single table).
    pub name: String,
    /// Column headers, including the label column's header.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<FigRow>,
}

/// One (possibly uncertainty-banded) series of a time-series figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigSeries {
    /// Series label.
    pub label: String,
    /// Per-index values (hour buckets for the §4/§5 time series).
    pub values: Vec<f64>,
    /// Optional per-index 95% CI half-widths (cross-seed).
    pub half_widths: Option<Vec<f64>>,
}

/// The one output contract every figure binary emits through: identity
/// (figure id, git revision, seed count, quick flag), tables and/or
/// series, free-form notes, and the warnings that used to be silent
/// `continue`s.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Stable figure id (`fig10`, `ablation_nw_lag`, …) — also the JSON
    /// file stem and the key in the merged `figures.json`.
    pub id: String,
    /// Human title line.
    pub title: String,
    /// Replications behind cross-seed cells (0 = deterministic figure).
    pub seeds: usize,
    /// Whether this report was produced under `FIG_QUICK=1`.
    pub quick: bool,
    /// Short git revision the report was generated at.
    pub git_rev: String,
    /// Tables, in display order.
    pub tables: Vec<FigTable>,
    /// Time series, in display order.
    pub series: Vec<FigSeries>,
    /// Trailing commentary (the "(paper: …)" lines).
    pub notes: Vec<String>,
    /// Estimator failures and other anomalies — rendered in text, JSON,
    /// and on stderr, never dropped.
    pub warnings: Vec<String>,
}

impl FigureReport {
    /// New report; captures the git revision and the quick flag from the
    /// environment.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> FigureReport {
        FigureReport {
            id: id.into(),
            title: title.into(),
            seeds: 0,
            quick: quick(),
            git_rev: git_rev(),
            tables: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
            warnings: Vec::new(),
        }
    }

    /// Set the replication count shown in the subtitle.
    pub fn seeds(mut self, n: usize) -> FigureReport {
        self.seeds = n;
        self
    }

    /// Override the git revision (golden tests need byte-stable output).
    pub fn with_git_rev(mut self, rev: impl Into<String>) -> FigureReport {
        self.git_rev = rev.into();
        self
    }

    /// Override the quick flag (golden tests pin it).
    pub fn with_quick(mut self, quick: bool) -> FigureReport {
        self.quick = quick;
        self
    }

    /// Append a table; returns its index for [`FigureReport::row`].
    pub fn add_table(&mut self, name: &str, columns: Vec<&str>) -> usize {
        self.tables.push(FigTable {
            name: name.to_string(),
            columns: columns.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        });
        self.tables.len() - 1
    }

    /// Append a row to table `table`.
    pub fn row(&mut self, table: usize, label: impl Into<String>, cells: Vec<FigCell>) {
        self.tables[table].rows.push(FigRow {
            label: label.into(),
            cells,
        });
    }

    /// Append a series without an uncertainty band.
    pub fn series(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.series.push(FigSeries {
            label: label.into(),
            values,
            half_widths: None,
        });
    }

    /// Append a series with per-index 95% half-widths.
    pub fn series_with_ci(
        &mut self,
        label: impl Into<String>,
        values: Vec<f64>,
        half_widths: Vec<f64>,
    ) {
        self.series.push(FigSeries {
            label: label.into(),
            values,
            half_widths: Some(half_widths),
        });
    }

    /// Append a trailing note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Record a warning (estimator failure, degenerate cell, …).
    pub fn warn(&mut self, s: impl Into<String>) {
        self.warnings.push(s.into());
    }

    /// Render data-quality flags (see `unbiased::guardrails`) into the
    /// warnings section, prefixed with the cell/sweep they concern. The
    /// contract of the guardrail layer is that a flagged estimate never
    /// appears in a figure without a visible warning; call this whenever
    /// a sweep's `assess_fleet_quality` comes back non-empty.
    pub fn warn_quality(&mut self, context: &str, flags: &[unbiased::guardrails::QualityFlag]) {
        for flag in flags {
            self.warn(format!("{context}: {flag}"));
        }
    }

    /// Cross-seed cell for a per-seed estimator that may fail.
    ///
    /// This is the fix for the old `else { continue; }` pattern: a
    /// failing estimator produces a warning naming the cell and the
    /// error (plus how many seeds failed) and a visible `-` cell, never
    /// a silently missing table entry. Failed seeds are dropped from the
    /// CI (via NaN and [`metric_ci`]'s finite filter).
    pub fn estimator_cell<R>(
        &mut self,
        runs: &[SeedRun<R>],
        context: &str,
        fmt: impl Fn(&SeedCi) -> String,
        est: impl Fn(&R) -> Result<f64, String>,
    ) -> FigCell {
        let mut failures: Vec<(u64, String)> = Vec::new();
        let vals: Vec<SeedRun<f64>> = runs
            .iter()
            .map(|r| SeedRun {
                seed: r.seed,
                result: match est(&r.result) {
                    Ok(v) => v,
                    Err(e) => {
                        failures.push((r.seed, e));
                        f64::NAN
                    }
                },
            })
            .collect();
        if let Some((seed, first)) = failures.first() {
            self.warn(format!(
                "{context}: estimator failed on {}/{} seeds (seed {seed}: {first})",
                failures.len(),
                runs.len(),
            ));
        }
        match metric_ci(&vals, 0.95, |&v| v) {
            Ok(ci) => {
                let text = fmt(&ci);
                FigCell::ci(&ci, text)
            }
            Err(e) => {
                self.warn(format!("{context}: no cross-seed CI ({e})"));
                FigCell::missing()
            }
        }
    }

    /// Infallible variant of [`FigureReport::estimator_cell`].
    pub fn metric_cell<R>(
        &mut self,
        runs: &[SeedRun<R>],
        context: &str,
        fmt: impl Fn(&SeedCi) -> String,
        metric: impl Fn(&R) -> f64,
    ) -> FigCell {
        self.estimator_cell(runs, context, fmt, |r| Ok(metric(r)))
    }

    /// The standard subtitle: `[id · N seeds · mean ± 95% CI · git rev]`.
    fn subtitle(&self) -> String {
        let mut s = format!("[{}", self.id);
        if self.seeds > 0 {
            let _ = write!(s, " · {} seeds · mean ± 95% CI", self.seeds);
        } else {
            s.push_str(" · single run");
        }
        let _ = write!(s, " · git {}", self.git_rev);
        if self.quick {
            s.push_str(" · quick mode");
        }
        s.push(']');
        s
    }

    /// Render the human-readable form.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = writeln!(out, "{}", self.subtitle());
        for table in &self.tables {
            let _ = writeln!(out);
            if !table.name.is_empty() {
                let _ = writeln!(out, "{}", table.name);
            }
            let mut t =
                expstats::table::Table::new(table.columns.iter().map(String::as_str).collect());
            for row in &table.rows {
                let mut cells = vec![row.label.clone()];
                cells.extend(row.cells.iter().map(|c| c.text.clone()));
                t.row(cells);
            }
            let _ = write!(out, "{}", t.render());
        }
        if !self.series.is_empty() {
            // All series print side by side in one hour-indexed table
            // (a banded series contributes a value and a "±" column).
            let _ = writeln!(out);
            let mut header = vec!["hour".to_string()];
            for s in &self.series {
                header.push(s.label.clone());
                if s.half_widths.is_some() {
                    header.push("±".to_string());
                }
            }
            let mut t = expstats::table::Table::new(header);
            let len = self
                .series
                .iter()
                .map(|s| s.values.len())
                .max()
                .unwrap_or(0);
            for h in 0..len {
                let mut row = vec![format!("{h}")];
                for s in &self.series {
                    row.push(
                        s.values
                            .get(h)
                            .map(|v| format!("{v:.3}"))
                            .unwrap_or_default(),
                    );
                    if let Some(w) = &s.half_widths {
                        row.push(w.get(h).map(|v| format!("{v:.3}")).unwrap_or_default());
                    }
                }
                t.row(row);
            }
            let _ = write!(out, "{}", t.render());
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
            for n in &self.notes {
                let _ = writeln!(out, "{n}");
            }
        }
        if !self.warnings.is_empty() {
            let _ = writeln!(out);
            for w in &self.warnings {
                let _ = writeln!(out, "warning: {w}");
            }
        }
        out
    }

    /// Render the machine-readable form (always a valid JSON document;
    /// non-finite numbers become `null`).
    pub fn to_json(&self) -> String {
        use json::{escape, fmt_f64};
        let mut o = String::new();
        o.push_str("{\n");
        let _ = writeln!(o, "  \"id\": \"{}\",", escape(&self.id));
        let _ = writeln!(o, "  \"title\": \"{}\",", escape(&self.title));
        let _ = writeln!(o, "  \"git_rev\": \"{}\",", escape(&self.git_rev));
        let _ = writeln!(o, "  \"quick\": {},", self.quick);
        let _ = writeln!(o, "  \"seeds\": {},", self.seeds);
        o.push_str("  \"tables\": [");
        for (ti, table) in self.tables.iter().enumerate() {
            o.push_str(if ti == 0 { "\n" } else { ",\n" });
            let _ = writeln!(o, "    {{\n      \"name\": \"{}\",", escape(&table.name));
            let cols: Vec<String> = table
                .columns
                .iter()
                .map(|c| format!("\"{}\"", escape(c)))
                .collect();
            let _ = writeln!(o, "      \"columns\": [{}],", cols.join(", "));
            o.push_str("      \"rows\": [");
            for (ri, row) in table.rows.iter().enumerate() {
                o.push_str(if ri == 0 { "\n" } else { ",\n" });
                let _ = write!(
                    o,
                    "        {{ \"label\": \"{}\", \"cells\": [",
                    escape(&row.label)
                );
                for (ci, cell) in row.cells.iter().enumerate() {
                    if ci > 0 {
                        o.push_str(", ");
                    }
                    let _ = write!(o, "{{ \"text\": \"{}\"", escape(&cell.text));
                    if let Some(mean) = cell.mean {
                        let _ = write!(o, ", \"mean\": {}", fmt_f64(mean));
                    }
                    if let Some((lo, hi)) = cell.ci {
                        let _ = write!(o, ", \"ci\": [{}, {}]", fmt_f64(lo), fmt_f64(hi));
                    }
                    if let Some(n) = cell.n {
                        let _ = write!(o, ", \"n\": {n}");
                    }
                    o.push_str(" }");
                }
                o.push_str("] }");
            }
            if !table.rows.is_empty() {
                o.push_str("\n      ");
            }
            o.push_str("]\n    }");
        }
        if !self.tables.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("],\n");
        o.push_str("  \"series\": [");
        for (si, s) in self.series.iter().enumerate() {
            o.push_str(if si == 0 { "\n" } else { ",\n" });
            let _ = write!(
                o,
                "    {{ \"label\": \"{}\", \"values\": [",
                escape(&s.label)
            );
            let vals: Vec<String> = s.values.iter().map(|&v| fmt_f64(v)).collect();
            o.push_str(&vals.join(", "));
            o.push(']');
            if let Some(w) = &s.half_widths {
                let ws: Vec<String> = w.iter().map(|&v| fmt_f64(v)).collect();
                let _ = write!(o, ", \"half_widths\": [{}]", ws.join(", "));
            }
            o.push_str(" }");
        }
        if !self.series.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("],\n");
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("\"{}\"", escape(n)))
            .collect();
        let _ = writeln!(o, "  \"notes\": [{}],", notes.join(", "));
        let warns: Vec<String> = self
            .warnings
            .iter()
            .map(|w| format!("\"{}\"", escape(w)))
            .collect();
        let _ = writeln!(o, "  \"warnings\": [{}]", warns.join(", "));
        o.push_str("}\n");
        debug_assert!(json::validate(&o).is_ok(), "harness emitted invalid JSON");
        o
    }

    /// Emit the report: text to stdout, warnings additionally to stderr,
    /// and — when `FIG_JSON_DIR` is set — JSON to
    /// `$FIG_JSON_DIR/<id>.json` (the directory is created if needed).
    pub fn emit(&self) {
        print!("{}", self.render_text());
        for w in &self.warnings {
            eprintln!("warning: {}: {w}", self.id);
        }
        if let Some(dir) = std::env::var_os("FIG_JSON_DIR") {
            let dir = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&dir).expect("create FIG_JSON_DIR");
            let path = dir.join(format!("{}.json", self.id));
            std::fs::write(&path, self.to_json()).expect("write figure JSON");
        }
    }
}

/// A seed sweep of the paper's main paired-link experiment, quick-mode
/// aware. Figures that previously ran `main_experiment(scale, days,
/// seed).run()` once now run this and aggregate with
/// [`FigureReport::estimator_cell`] / [`metric_ci`].
pub struct PairedSweep {
    /// Per-seed outcomes, in seed order.
    pub runs: Vec<SeedRun<PairedOutcome>>,
    /// Horizon actually simulated (quick mode may shorten it).
    pub days: usize,
    /// Streaming scale actually simulated.
    pub scale: f64,
}

impl PairedSweep {
    /// Replication count.
    pub fn replications(&self) -> usize {
        self.runs.len()
    }
}

/// Run the main experiment under `replications(full_reps)` seeds forked
/// from `root_seed`, honoring quick mode for scale and horizon.
pub fn paired_sweep(
    full_scale: f64,
    full_days: usize,
    root_seed: u64,
    full_reps: usize,
) -> PairedSweep {
    let scale = stream_scale(full_scale);
    let days = stream_days(full_days);
    let design = crate::main_experiment(scale, days, root_seed);
    let seeds = derive_seeds(root_seed, replications(full_reps));
    PairedSweep {
        runs: Runner::new().sweep_paired(&design, &seeds),
        days,
        scale,
    }
}

/// Seed sweep of the no-treatment baseline world (both links scheduled
/// to 0%), quick-mode aware — the A/A and baseline-similarity figures.
pub fn baseline_sweep(
    full_scale: f64,
    full_days: usize,
    root_seed: u64,
    full_reps: usize,
) -> (Vec<SeedRun<PairedBaselineRun>>, usize) {
    let cfg = crate::paired_config(stream_scale(full_scale), stream_days(full_days));
    let seeds = derive_seeds(root_seed, replications(full_reps));
    let runs = Runner::new().sweep_paired_baseline(
        &cfg,
        &[AllocationSchedule::none(), AllocationSchedule::none()],
        &seeds,
    );
    (runs, stream_days(full_days))
}

/// Column-wise cross-seed mean and 95% half-width over per-seed series
/// (thin wrapper over [`expstats::columnwise_mean_ci`]).
pub fn series_ci(per_seed: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    expstats::columnwise_mean_ci(per_seed, 0.95)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_cell_reports_failures_instead_of_skipping() {
        let runs: Vec<SeedRun<f64>> = (0..4u64)
            .map(|s| SeedRun {
                seed: s,
                result: s as f64,
            })
            .collect();
        let mut rep = FigureReport::new("t", "t");
        let cell = rep.estimator_cell(&runs, "switchback/throughput", fmt_pct, |&v| {
            if v < 1.0 {
                Err("rank deficient".to_string())
            } else {
                Ok(v)
            }
        });
        assert_eq!(cell.n, Some(3));
        assert_eq!(rep.warnings.len(), 1);
        assert!(rep.warnings[0].contains("switchback/throughput"));
        assert!(rep.warnings[0].contains("1/4 seeds"));
        assert!(rep.warnings[0].contains("rank deficient"));

        // Every seed failing: visible missing cell + a second warning.
        let cell = rep.estimator_cell(&runs, "event study/min rtt", fmt_pct, |_| {
            Err("no data".to_string())
        });
        assert_eq!(cell, FigCell::missing());
        assert!(rep.warnings.iter().any(|w| w.contains("no cross-seed CI")));
        let text = rep.render_text();
        assert!(text.contains("warning: event study/min rtt"));
    }

    #[test]
    fn quick_helpers_clamp_only_in_quick_mode() {
        // The test environment does not set FIG_QUICK; full values pass
        // through untouched.
        if !quick() {
            assert_eq!(replications(8), 8);
            assert_eq!(stream_days(5), 5);
            assert_eq!(stream_scale(0.35), 0.35);
        }
    }

    #[test]
    fn json_output_is_valid_with_nan_cells() {
        let mut rep = FigureReport::new("figx", "title with \"quotes\"")
            .seeds(3)
            .with_git_rev("deadbee")
            .with_quick(false);
        let t = rep.add_table("", vec!["metric", "TTE"]);
        rep.row(
            t,
            "throughput",
            vec![FigCell::value(f64::NAN, "nan cell".to_string())],
        );
        rep.series_with_ci("link1", vec![1.0, f64::NAN], vec![0.1, f64::NAN]);
        rep.note("a note");
        rep.warn("a warning");
        let j = rep.to_json();
        json::validate(&j).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{j}"));
        let v = json::parse(&j).unwrap();
        assert_eq!(v.get("id").and_then(json::Value::as_str), Some("figx"));
        assert_eq!(v.get("seeds").and_then(json::Value::as_f64), Some(3.0));
    }
}
