//! Shared scenario configurations for the figure/table regeneration
//! binaries (`src/bin/fig*.rs`) and the Criterion performance benches.
//!
//! Scaling note: the lab figures run the packet simulator at 200 Mb/s
//! (instead of 10 Gb/s) and the streaming figures run the fluid simulator
//! at 1 Gb/s over 5 days (instead of 100 Gb/s); EXPERIMENTS.md records
//! the correspondence. Shapes, not absolute magnitudes, are the
//! reproduction target.

pub mod figharness;
pub mod json;
pub mod runner;

pub use figharness::{FigCell, FigureReport};
pub use runner::{
    derive_seeds, metric_across_seeds, metric_ci, FailurePolicy, Runner, SeedCi, SeedRun,
};

use dessim::SimDuration;
use netsim::config::{AppConfig, CcKind, DumbbellConfig};
use streamsim::config::StreamConfig;
use unbiased::designs::PairedLinkDesign;

/// Lab dumbbell shared by the §3 figures: 200 Mb/s, 20 ms RTT, ten
/// applications.
pub fn lab_config(apps: Vec<AppConfig>, seed: u64) -> DumbbellConfig {
    DumbbellConfig {
        bottleneck_bps: 200e6,
        base_rtt: SimDuration::from_millis(20),
        buffer_bdp: 1.0,
        mss_bytes: 1500,
        apps,
        duration: SimDuration::from_secs(30),
        warmup: SimDuration::from_secs(10),
        seed,
        ..Default::default()
    }
}

/// `n` single-connection apps, the first `k` with the given marker
/// toggled via the closure.
pub fn mixed_apps(n: usize, k: usize, make: impl Fn(bool) -> AppConfig) -> Vec<AppConfig> {
    (0..n).map(|i| make(i < k)).collect()
}

/// A plain unpaced app of the given CC.
pub fn plain(cc: CcKind) -> AppConfig {
    AppConfig::plain(cc)
}

/// Mean of one per-app metric over an arm's slice of a lab result, or
/// NaN for an empty arm (the k = 0 / k = 10 endpoints of the §3
/// k-sweeps).
pub fn app_mean(apps: &[netsim::AppMetrics], f: fn(&netsim::AppMetrics) -> f64) -> f64 {
    if apps.is_empty() {
        f64::NAN
    } else {
        apps.iter().map(f).sum::<f64>() / apps.len() as f64
    }
}

/// Streaming world for the §4/§5 figures. `scale` shrinks capacity and
/// arrivals together (1.0 = the full 5-day, 1 Gb/s run; the binaries
/// default to 0.35 for minute-scale runtimes).
pub fn paired_config(scale: f64, days: usize) -> StreamConfig {
    StreamConfig {
        days,
        capacity_bps: 1e9 * scale,
        peak_arrivals_per_s: 0.24 * scale,
        ..Default::default()
    }
}

/// The paper's main experiment (95%/5% paired links).
pub fn main_experiment(scale: f64, days: usize, seed: u64) -> PairedLinkDesign {
    PairedLinkDesign::paper(paired_config(scale, days), seed)
}

/// Base configuration of one fleet link: a scaled-down reliably
/// congested bottleneck (peak offered demand ≈ 1.2× capacity, the same
/// regime as the paired-link world) cheap enough that a 200-link fleet
/// sweeps in minutes.
pub fn fleet_base(days: usize) -> StreamConfig {
    StreamConfig {
        days,
        capacity_bps: 30e6,
        peak_arrivals_per_s: 0.24 * 0.03,
        ..Default::default()
    }
}

/// The standard heterogeneous fleet of the fleet figures: capacities,
/// RTTs, client counts and per-client demand drawn from
/// [`streamsim::fleet::LinkPopulation::moderate`] around [`fleet_base`].
/// Returns the base config plus the sampled specs (fixed per `seed`, so
/// every figure runs the same plant).
pub fn fleet_population(
    n_links: usize,
    days: usize,
    seed: u64,
) -> (StreamConfig, Vec<streamsim::fleet::LinkSpec>) {
    let base = fleet_base(days);
    let specs = streamsim::fleet::LinkPopulation::moderate(base.clone(), n_links, seed).sample();
    (base, specs)
}

/// Congestion strata the fleet figures report per-stratum tables over:
/// terciles on a real fleet, halves on the ≤16-link quick fleet (a
/// 5-link tercile often realizes fewer than two cluster coins per arm).
/// Shared by both fleet binaries so they always stratify identically.
pub fn fleet_strata_count(n_links: usize) -> usize {
    if n_links >= 60 {
        3
    } else {
        2
    }
}

/// Row labels matching [`fleet_strata_count`], ascending offered load.
pub fn fleet_strata_labels(n_links: usize) -> &'static [&'static str] {
    if fleet_strata_count(n_links) == 3 {
        &["low load", "mid load", "high load"]
    } else {
        &["low load", "high load"]
    }
}

/// The metric set reported in the Figure 5 table.
pub fn figure5_metrics() -> Vec<streamsim::session::Metric> {
    use streamsim::session::Metric;
    vec![
        Metric::Throughput,
        Metric::MinRtt,
        Metric::PlayDelay,
        Metric::Bitrate,
        Metric::Quality,
        Metric::RebufferSessions,
        Metric::CancelledStarts,
        Metric::RetxFraction,
    ]
}

/// Normalize a series to its maximum (the paper's time-series plots are
/// "normalized to the largest hourly average").
pub fn normalize_to_max(xs: &[f64]) -> Vec<f64> {
    let max = xs.iter().cloned().fold(f64::MIN, f64::max);
    if max <= 0.0 {
        return xs.to_vec();
    }
    xs.iter().map(|x| x / max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_config_valid() {
        let cfg = lab_config(vec![plain(CcKind::Reno); 10], 1);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.total_flows(), 10);
    }

    #[test]
    fn paired_config_valid() {
        assert!(paired_config(0.35, 5).validate().is_ok());
    }

    #[test]
    fn normalize_caps_at_one() {
        let n = normalize_to_max(&[1.0, 4.0, 2.0]);
        assert_eq!(n, vec![0.25, 1.0, 0.5]);
    }

    #[test]
    fn mixed_apps_counts() {
        let apps = mixed_apps(10, 3, |t| {
            if t {
                AppConfig {
                    connections: 2,
                    cc: CcKind::Reno,
                    paced: false,
                    pacing_ca_factor: 1.2,
                }
            } else {
                plain(CcKind::Reno)
            }
        });
        assert_eq!(apps.iter().filter(|a| a.connections == 2).count(), 3);
    }
}
