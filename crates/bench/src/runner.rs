//! Multi-seed parallel scenario runner.
//!
//! Replication sweeps are the workhorse of every figure and of the
//! replication-hungry tests: run the same scenario under many seeds,
//! collect per-seed metrics, aggregate. This module fans those
//! replications across `std::thread` workers while keeping the results
//! **bit-identical to sequential execution**:
//!
//! * every replication derives its own seed up front (either an
//!   explicit seed list or a SplitMix64 stream forked from a root
//!   seed), so no RNG state is shared between workers;
//! * results are written back into their replication's slot, so output
//!   order is the seed order regardless of which worker finished first.
//!
//! ```
//! use repro_bench::runner::Runner;
//!
//! let runner = Runner::new();
//! let runs = runner.sweep(&3u64, &[1, 2, 3], |mult, seed| seed * mult);
//! assert_eq!(runs.iter().map(|r| r.result).collect::<Vec<_>>(), vec![3, 6, 9]);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dessim::SimRng;
use netsim::config::DumbbellConfig;
use netsim::{run_dumbbell, LabResult};
use streamsim::config::StreamConfig;
use streamsim::engine::EngineBackend;
use streamsim::fleet::{
    run_fleet_link_with, FleetDesign, FleetLinkJob, FleetLinkRun, FleetRun, FleetSim, LinkSpec,
};
use streamsim::routing::RoutingConfig;
use streamsim::scenario::AllocationSchedule;
use streamsim::session::{LinkId, SessionRecord};
use streamsim::sim::{HourlyLinkStats, LinkSim, PairedSim};
use streamsim::telemetry::TelemetryFaults;
use unbiased::designs::{PairedLinkDesign, PairedOutcome};
use unbiased::fleet::{FleetLinkSummary, FleetSummary};

/// What a fleet sweep does when one link×seed job panics.
///
/// A 10k-link sweep is hours of work; a single poisoned link (bad spec,
/// telemetry-collector crash, simulator bug on one configuration)
/// shouldn't take the whole sweep down — but silently absorbing failures
/// would be worse. `Quarantine` caps how many losses are tolerable and
/// reports every one in the summary's
/// [`DegradedReport`](unbiased::fleet::DegradedReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Propagate the first job panic to the caller (the default, and
    /// the pre-existing behavior of every sweep).
    FailFast,
    /// Catch job panics and quarantine the affected links: the sweep
    /// completes on the surviving links, which are bit-identical to a
    /// clean sweep restricted to the same set. Once more than
    /// `max_failures` jobs have panicked (counted sweep-wide, across
    /// seeds), the next failure propagates — mass failure means the
    /// world is broken, not one link.
    Quarantine {
        /// Maximum tolerated job panics before failing fast after all.
        max_failures: usize,
    },
}

/// Best-effort stringification of a caught panic payload (`&str` and
/// `String` payloads cover `panic!`/`assert!`; anything else gets a
/// placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One replication's outcome, tagged with the seed that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedRun<R> {
    /// Seed the scenario ran under.
    pub seed: u64,
    /// Whatever the scenario function returned.
    pub result: R,
}

/// Derive `n` replication seeds from a root seed.
///
/// Uses the same SplitMix64 forking discipline as [`dessim::SimRng`]:
/// the stream depends only on `(root, n)`'s prefix, so extending a
/// sweep from 8 to 16 replications keeps the first 8 seeds (and hence
/// their results) unchanged.
pub fn derive_seeds(root: u64, n: usize) -> Vec<u64> {
    let mut rng = SimRng::new(root);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// A fixed-size pool specification for running scenario replications in
/// parallel.
///
/// `Runner` holds no threads itself; each sweep spins up scoped workers
/// that claim *chunks* of job indices off a shared atomic counter
/// (dynamic load balancing — congested-seed replications don't stall
/// the rest of the sweep, while sub-millisecond replications don't pay
/// one atomic RMW and one mutex round-trip each).
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
}

/// Smallest chunk a worker claims. 1 keeps the tail perfectly balanced
/// (an expensive final replication is never bundled with others); the
/// decay heuristic in [`Runner::map`] only matters while plenty of work
/// remains.
const MIN_CHUNK: usize = 1;

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl Runner {
    /// Runner using all available cores.
    pub fn new() -> Runner {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Runner { threads }
    }

    /// Runner with an explicit worker count (`with_threads(1)` is exact
    /// sequential execution; useful for parity checks).
    pub fn with_threads(threads: usize) -> Runner {
        assert!(threads > 0, "runner needs at least one worker");
        Runner { threads }
    }

    /// Number of workers a sweep will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over every job, in parallel, preserving job order in the
    /// output.
    ///
    /// Work distribution is chunked work-stealing: each worker claims a
    /// contiguous index range sized by a decay heuristic —
    /// `remaining / (2 · workers)`, clamped to `MIN_CHUNK` — so early
    /// claims amortize the shared counter over many jobs while late
    /// claims shrink toward single jobs for tail balance. The worker
    /// count is clamped to the job count, so `threads > jobs` never
    /// spawns workers that could only spin on empty claims.
    ///
    /// A panic in any job propagates to the caller once all workers
    /// have stopped picking up new work.
    pub fn map<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        let n = jobs.len();
        let workers = self.threads.min(n).max(1);
        if workers == 1 {
            return jobs.iter().map(f).collect();
        }

        let next = AtomicUsize::new(0);
        // Finished chunks are appended wholesale (one lock per chunk,
        // not per job) and scattered into order afterwards.
        let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // The chunk size reads a possibly stale counter; the
                    // fetch_add below is the single source of truth for
                    // which indices this worker owns, so a stale read
                    // only mis-sizes the claim, never double-assigns.
                    let seen = next.load(Ordering::Relaxed);
                    if seen >= n {
                        return;
                    }
                    let chunk = ((n - seen) / (2 * workers)).max(MIN_CHUNK);
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        return;
                    }
                    let end = (start + chunk).min(n);
                    let results: Vec<R> = jobs[start..end].iter().map(&f).collect();
                    done.lock().unwrap().push((start, results));
                });
            }
        });
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (start, results) in done.into_inner().unwrap() {
            for (offset, r) in results.into_iter().enumerate() {
                slots[start + offset] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every job slot filled"))
            .collect()
    }

    /// Run `fold(acc, index, job)` over every job and reduce the
    /// per-worker partial accumulators with `merge` — the streaming
    /// counterpart of [`Runner::map`] that never buffers per-job
    /// results.
    ///
    /// Each worker folds the jobs it claims into its own accumulator
    /// (created by `init`); when the job list is drained the partials
    /// are merged pairwise. `merge` receives partials in a
    /// scheduler-dependent order, so it must be associative and
    /// order-insensitive for deterministic output (the fleet summary
    /// types guarantee exactly that: concatenation plus set-semantics
    /// sketch union). `fold` receives the job's index so one
    /// accumulator can hold slots for several logical groups (e.g. one
    /// fleet summary per seed).
    ///
    /// A panic in any job propagates to the caller once all workers
    /// have stopped picking up new work.
    pub fn map_fold<J, A, I, F, M>(&self, jobs: &[J], init: I, fold: F, merge: M) -> A
    where
        J: Sync,
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, usize, &J) + Sync,
        M: Fn(&mut A, A) + Sync,
    {
        let n = jobs.len();
        let workers = self.threads.min(n).max(1);
        if workers == 1 {
            let mut acc = init();
            for (i, job) in jobs.iter().enumerate() {
                fold(&mut acc, i, job);
            }
            return acc;
        }

        let next = AtomicUsize::new(0);
        let partials: Mutex<Vec<A>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut acc = init();
                    let mut claimed = false;
                    loop {
                        // Same claim discipline as [`Runner::map`]: the
                        // stale-counter read only sizes the chunk, the
                        // fetch_add owns the indices.
                        let seen = next.load(Ordering::Relaxed);
                        if seen >= n {
                            break;
                        }
                        let chunk = ((n - seen) / (2 * workers)).max(MIN_CHUNK);
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (i, job) in jobs[start..end].iter().enumerate() {
                            fold(&mut acc, start + i, job);
                        }
                        claimed = true;
                    }
                    // Workers that never claimed work contribute nothing;
                    // dropping their empty accumulator keeps `merge` from
                    // having to handle identity elements.
                    if claimed {
                        partials.lock().unwrap().push(acc);
                    }
                });
            }
        });
        let mut it = partials.into_inner().unwrap().into_iter();
        let mut acc = it.next().unwrap_or_else(&init);
        for partial in it {
            merge(&mut acc, partial);
        }
        acc
    }

    /// Run `scenario(cfg, seed)` once per seed, in parallel; results
    /// come back in seed-list order and are identical to running the
    /// seeds sequentially.
    pub fn sweep<C, R, F>(&self, cfg: &C, seeds: &[u64], scenario: F) -> Vec<SeedRun<R>>
    where
        C: Sync,
        R: Send,
        F: Fn(&C, u64) -> R + Sync,
    {
        self.map(seeds, |&seed| SeedRun {
            seed,
            result: scenario(cfg, seed),
        })
        .into_iter()
        .collect()
    }

    /// Sweep a (parameter × seed) grid as one flat parallel job list.
    ///
    /// The ablation figures sweep a handful of configurations across
    /// replication seeds each; scheduling the full cross product at once
    /// keeps all workers busy even when one parameter's replications are
    /// slow. Results come back grouped per parameter (input order), each
    /// group in seed order and bit-identical to a nested sequential
    /// loop.
    pub fn sweep_grid<P, R, F>(&self, params: &[P], seeds: &[u64], f: F) -> Vec<Vec<SeedRun<R>>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, u64) -> R + Sync,
    {
        let jobs: Vec<(usize, u64)> = params
            .iter()
            .enumerate()
            .flat_map(|(pi, _)| seeds.iter().map(move |&s| (pi, s)))
            .collect();
        let flat = self.map(&jobs, |&(pi, seed)| SeedRun {
            seed,
            result: f(&params[pi], seed),
        });
        let mut grouped: Vec<Vec<SeedRun<R>>> = Vec::with_capacity(params.len());
        let mut it = flat.into_iter();
        for _ in 0..params.len() {
            grouped.push(it.by_ref().take(seeds.len()).collect());
        }
        grouped
    }

    /// [`Runner::sweep`] over `replications` seeds forked from
    /// `root_seed` via [`derive_seeds`].
    pub fn sweep_root<C, R, F>(
        &self,
        cfg: &C,
        root_seed: u64,
        replications: usize,
        scenario: F,
    ) -> Vec<SeedRun<R>>
    where
        C: Sync,
        R: Send,
        F: Fn(&C, u64) -> R + Sync,
    {
        self.sweep(cfg, &derive_seeds(root_seed, replications), scenario)
    }

    /// Sweep the lab dumbbell scenario: each replication reruns
    /// `run_dumbbell` with the config's seed replaced by the
    /// replication seed.
    pub fn sweep_dumbbell(&self, cfg: &DumbbellConfig, seeds: &[u64]) -> Vec<SeedRun<LabResult>> {
        self.sweep(cfg, seeds, |cfg, seed| {
            let mut cfg = cfg.clone();
            cfg.seed = seed;
            run_dumbbell(&cfg).expect("sweep config must be valid")
        })
    }

    /// Sweep the paired-link streaming experiment: each replication
    /// reruns the design under a replication seed (the §4/§5 figures
    /// report cross-seed variability from these).
    pub fn sweep_paired(
        &self,
        design: &PairedLinkDesign,
        seeds: &[u64],
    ) -> Vec<SeedRun<PairedOutcome>> {
        self.sweep(design, seeds, |design, seed| {
            PairedLinkDesign {
                seed,
                ..design.clone()
            }
            .run()
        })
    }

    /// Sweep a baseline (scheduled, possibly untreated) paired world —
    /// the A/A and baseline-similarity figures.
    pub fn sweep_paired_baseline(
        &self,
        cfg: &StreamConfig,
        schedules: &[AllocationSchedule; 2],
        seeds: &[u64],
    ) -> Vec<SeedRun<PairedBaselineRun>> {
        self.sweep(cfg, seeds, |cfg, seed| {
            let run = PairedSim::with_paper_biases(cfg.clone(), schedules.clone(), seed).run();
            (run.sessions, run.hourly)
        })
    }

    /// Sweep a fleet experiment across replication seeds, scheduling
    /// **link×seed** jobs as one flat work-stealing list.
    ///
    /// Fleet links are independent given their derived seeds (see
    /// [`FleetSim`]'s seed discipline), so the whole sweep — every link
    /// of every replication — goes through [`Runner::map`] as a single
    /// job list: 200 links × a handful of seeds saturates every core
    /// even when one congested link dominates its replication's
    /// wall-clock. Results are regrouped seed-major and are
    /// bit-identical to running [`FleetSim::run`] per seed sequentially
    /// (`crates/bench/tests/fleet_parallel.rs` asserts the parity).
    pub fn sweep_fleet(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        seeds: &[u64],
    ) -> Vec<SeedRun<FleetRun>> {
        self.sweep_fleet_with(base, specs, design, seeds, EngineBackend::Tick)
    }

    /// [`Runner::sweep_fleet`] on a selected engine backend. Session
    /// records — and with them every fleet estimator — are bit-identical
    /// across backends (see `streamsim::engine`), so this is a drop-in
    /// wall-clock lever, not a different experiment.
    pub fn sweep_fleet_with(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        seeds: &[u64],
        backend: EngineBackend,
    ) -> Vec<SeedRun<FleetRun>> {
        self.sweep_fleet_impl(base, specs, design, None, seeds, backend)
    }

    /// [`Runner::sweep_fleet`] over a *routed* fleet: every replication
    /// is built via [`FleetSim::new_routed`], so links share one
    /// fleet-level arrival stream and each session is routed to one of
    /// `routing.k` candidate links. Per-link simulation RNG stays
    /// independent, so the link×seed job list parallelizes exactly like
    /// the unrouted sweep and results are bit-identical to a sequential
    /// per-seed run regardless of thread count.
    pub fn sweep_fleet_routed(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        routing: &RoutingConfig,
        seeds: &[u64],
    ) -> Vec<SeedRun<FleetRun>> {
        self.sweep_fleet_routed_with(base, specs, design, routing, seeds, EngineBackend::Tick)
    }

    /// [`Runner::sweep_fleet_routed`] on a selected engine backend.
    pub fn sweep_fleet_routed_with(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        routing: &RoutingConfig,
        seeds: &[u64],
        backend: EngineBackend,
    ) -> Vec<SeedRun<FleetRun>> {
        self.sweep_fleet_impl(base, specs, design, Some(routing), seeds, backend)
    }

    fn sweep_fleet_impl(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        routing: Option<&RoutingConfig>,
        seeds: &[u64],
        backend: EngineBackend,
    ) -> Vec<SeedRun<FleetRun>> {
        // Plans and per-link seeds are cheap and deterministic; derive
        // them up front so the parallel phase is pure simulation.
        let (jobs, per_seed_pairs) = fleet_jobs(base, specs, design, routing, seeds);
        let link_runs = self.map(&jobs, |job| run_fleet_link_with(job, backend));
        let mut it = link_runs.into_iter();
        let runs: Vec<SeedRun<FleetRun>> = seeds
            .iter()
            .zip(per_seed_pairs)
            .map(|(&seed, pairs)| {
                let links: Vec<FleetLinkRun> = it.by_ref().take(specs.len()).collect();
                assert_eq!(
                    links.len(),
                    specs.len(),
                    "fleet seed {seed}: regrouped {} runs for {} specs",
                    links.len(),
                    specs.len()
                );
                SeedRun {
                    seed,
                    result: FleetRun { links, pairs },
                }
            })
            .collect();
        assert!(it.next().is_none(), "fleet sweep left unconsumed link runs");
        runs
    }

    /// [`Runner::sweep_fleet`] with bounded memory: every finished link
    /// job is folded into a mergeable [`FleetSummary`] on the worker
    /// that ran it (via [`Runner::map_fold`]) and its session records
    /// are dropped immediately, so peak memory scales with links ×
    /// seeds, not total sessions. `sketch_cap` bounds the per-metric
    /// quantile sketches (see `unbiased::fleet::DEFAULT_SKETCH_CAP`).
    ///
    /// Results are bit-identical to folding a sequential
    /// [`FleetSim::run`]'s links in link order — per-link statistics are
    /// accumulated wholly within one job, partials only concatenate
    /// links (sorted at finalize) and union sketches (set semantics), so
    /// the work-stealing schedule cannot leak into the output
    /// (`crates/bench/tests/fleet_streaming.rs` asserts the parity
    /// against the record-based oracle).
    pub fn sweep_fleet_streaming(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        seeds: &[u64],
        sketch_cap: usize,
    ) -> Vec<SeedRun<FleetSummary>> {
        self.sweep_fleet_streaming_with(base, specs, design, seeds, sketch_cap, EngineBackend::Tick)
    }

    /// [`Runner::sweep_fleet_streaming`] on a selected engine backend
    /// (see [`Runner::sweep_fleet_with`] for the exactness contract).
    /// Fails fast on any job panic; see
    /// [`Runner::sweep_fleet_streaming_policy`] for fault injection and
    /// quarantine.
    pub fn sweep_fleet_streaming_with(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        seeds: &[u64],
        sketch_cap: usize,
        backend: EngineBackend,
    ) -> Vec<SeedRun<FleetSummary>> {
        self.sweep_fleet_streaming_policy(
            base,
            specs,
            design,
            seeds,
            sketch_cap,
            backend,
            None,
            FailurePolicy::FailFast,
        )
    }

    /// The fully-general streaming fleet sweep: an optional telemetry
    /// fault model attached to every link job (see
    /// [`streamsim::telemetry`]) and a [`FailurePolicy`] for job
    /// panics.
    ///
    /// Under [`FailurePolicy::Quarantine`], each job runs inside
    /// `catch_unwind`: a panicking link lands in its seed summary's
    /// [`DegradedReport`](unbiased::fleet::DegradedReport) (with the
    /// panic message) and contributes nothing to the statistics. The
    /// surviving links' summary is **bit-identical** to a clean sweep's
    /// summary restricted to the same links, and deterministic under
    /// work stealing — the quarantine only removes links, it never
    /// perturbs fold order within one (`crates/bench/tests/fleet_faults.rs`
    /// asserts both). Accumulator state is only mutated *after* a job
    /// completes, so a caught panic cannot leave a partially-folded
    /// link behind (`AssertUnwindSafe` is sound here).
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_fleet_streaming_policy(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        seeds: &[u64],
        sketch_cap: usize,
        backend: EngineBackend,
        faults: Option<&TelemetryFaults>,
        policy: FailurePolicy,
    ) -> Vec<SeedRun<FleetSummary>> {
        self.sweep_fleet_streaming_impl(
            base, specs, design, None, seeds, sketch_cap, backend, faults, policy,
        )
    }

    /// [`Runner::sweep_fleet_streaming`] over a *routed* fleet (see
    /// [`Runner::sweep_fleet_routed`]). The same bounded-memory,
    /// work-stealing bit-identity contract holds: the shared arrival
    /// stream is materialized deterministically per seed before the
    /// parallel phase, per-link folds stay wholly within one job, and
    /// the finalized summaries are bit-identical at any thread count
    /// (`crates/bench/tests/fleet_routed.rs` asserts 1/2/4 threads).
    pub fn sweep_fleet_streaming_routed(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        routing: &RoutingConfig,
        seeds: &[u64],
        sketch_cap: usize,
    ) -> Vec<SeedRun<FleetSummary>> {
        self.sweep_fleet_streaming_routed_with(
            base,
            specs,
            design,
            routing,
            seeds,
            sketch_cap,
            EngineBackend::Tick,
        )
    }

    /// [`Runner::sweep_fleet_streaming_routed`] on a selected engine
    /// backend.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep_fleet_streaming_routed_with(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        routing: &RoutingConfig,
        seeds: &[u64],
        sketch_cap: usize,
        backend: EngineBackend,
    ) -> Vec<SeedRun<FleetSummary>> {
        self.sweep_fleet_streaming_impl(
            base,
            specs,
            design,
            Some(routing),
            seeds,
            sketch_cap,
            backend,
            None,
            FailurePolicy::FailFast,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn sweep_fleet_streaming_impl(
        &self,
        base: &StreamConfig,
        specs: &[LinkSpec],
        design: &FleetDesign,
        routing: Option<&RoutingConfig>,
        seeds: &[u64],
        sketch_cap: usize,
        backend: EngineBackend,
        faults: Option<&TelemetryFaults>,
        policy: FailurePolicy,
    ) -> Vec<SeedRun<FleetSummary>> {
        let per_seed = specs.len();
        let (mut jobs, per_seed_pairs) = fleet_jobs(base, specs, design, routing, seeds);
        if let Some(faults) = faults {
            if let Err(e) = faults.validate() {
                panic!("sweep_fleet_streaming_policy: invalid faults: {e}");
            }
            for job in &mut jobs {
                job.faults = Some(faults.clone());
            }
        }
        let failures = AtomicUsize::new(0);
        let summaries = self.map_fold(
            &jobs,
            || {
                (0..seeds.len())
                    .map(|_| FleetSummary::new(sketch_cap))
                    .collect::<Vec<_>>()
            },
            |acc, idx, job| {
                // Jobs are laid out seed-major, exactly `per_seed` each
                // (asserted in `fleet_jobs`).
                let slot = idx / per_seed;
                match policy {
                    FailurePolicy::FailFast => {
                        let run = run_fleet_link_with(job, backend);
                        acc[slot].fold(FleetLinkSummary::from_run(&run, sketch_cap));
                    }
                    FailurePolicy::Quarantine { max_failures } => {
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_fleet_link_with(job, backend)
                            }));
                        match outcome {
                            Ok(run) => {
                                acc[slot].fold(FleetLinkSummary::from_run(&run, sketch_cap));
                            }
                            Err(payload) => {
                                let seen = failures.fetch_add(1, Ordering::Relaxed) + 1;
                                if seen > max_failures {
                                    std::panic::resume_unwind(payload);
                                }
                                acc[slot].fold_quarantined(job.link, panic_message(&*payload));
                            }
                        }
                    }
                }
            },
            |acc, partial| {
                for (mine, theirs) in acc.iter_mut().zip(partial) {
                    mine.merge(theirs);
                }
            },
        );
        seeds
            .iter()
            .zip(summaries)
            .zip(per_seed_pairs)
            .map(|((&seed, mut summary), pairs)| {
                assert_eq!(
                    summary.links.len() + summary.degraded.len(),
                    per_seed,
                    "fleet seed {seed}: folded {} links + {} quarantined for {} specs",
                    summary.links.len(),
                    summary.degraded.len(),
                    per_seed
                );
                summary.finalize(pairs);
                SeedRun {
                    seed,
                    result: summary,
                }
            })
            .collect()
    }

    /// Sweep a single streaming link under `schedule`.
    pub fn sweep_link(
        &self,
        cfg: &StreamConfig,
        schedule: &AllocationSchedule,
        link: LinkId,
        seeds: &[u64],
    ) -> Vec<SeedRun<(Vec<SessionRecord>, Vec<HourlyLinkStats>)>> {
        self.sweep_link_with(cfg, schedule, link, seeds, EngineBackend::Tick)
    }

    /// [`Runner::sweep_link`] on a selected engine backend.
    pub fn sweep_link_with(
        &self,
        cfg: &StreamConfig,
        schedule: &AllocationSchedule,
        link: LinkId,
        seeds: &[u64],
        backend: EngineBackend,
    ) -> Vec<SeedRun<(Vec<SessionRecord>, Vec<HourlyLinkStats>)>> {
        self.sweep(cfg, seeds, |cfg, seed| {
            LinkSim::new(cfg.clone(), link, schedule.clone(), seed).run_with(backend)
        })
    }
}

/// One paired-baseline replication: session records from both links
/// plus per-link hourly statistics.
pub type PairedBaselineRun = (Vec<SessionRecord>, [Vec<HourlyLinkStats>; 2]);

/// Derive the flat seed-major link×seed job list plus each seed's pair
/// matching. Both fleet sweeps regroup results by slicing this list in
/// `specs.len()` strides, so a plan that emitted a different job count
/// (e.g. a future design sitting out an odd link) would silently
/// misalign every subsequent seed — assert the invariant per seed here
/// instead.
fn fleet_jobs(
    base: &StreamConfig,
    specs: &[LinkSpec],
    design: &FleetDesign,
    routing: Option<&RoutingConfig>,
    seeds: &[u64],
) -> (Vec<FleetLinkJob>, Vec<Vec<(usize, usize)>>) {
    let mut per_seed_pairs = Vec::with_capacity(seeds.len());
    let mut jobs: Vec<FleetLinkJob> = Vec::with_capacity(seeds.len() * specs.len());
    for &seed in seeds {
        let sim = match routing {
            None => FleetSim::new(base, specs, design, seed),
            Some(r) => FleetSim::new_routed(base, specs, design, r, seed),
        };
        let (seed_jobs, pairs) = sim.into_parts();
        assert_eq!(
            seed_jobs.len(),
            specs.len(),
            "fleet seed {seed}: plan emitted {} jobs for {} specs — seed-major regrouping would misalign results",
            seed_jobs.len(),
            specs.len()
        );
        per_seed_pairs.push(pairs);
        jobs.extend(seed_jobs);
    }
    (jobs, per_seed_pairs)
}

/// Cross-seed summary of one scalar metric: mean across replications
/// with a Student-t confidence interval on that mean.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedCi {
    /// Mean across replications.
    pub mean: f64,
    /// Confidence interval for the mean at the requested level.
    pub ci: (f64, f64),
    /// Standard error of the mean.
    pub se: f64,
    /// Replications used (non-finite metric values are dropped).
    pub n: usize,
}

/// Aggregate one scalar metric across replications into a mean ± CI
/// (via `expstats::mean_ci`). Non-finite per-seed values are dropped;
/// errors if fewer than two finite replications remain.
pub fn metric_ci<R>(
    runs: &[SeedRun<R>],
    level: f64,
    metric: impl Fn(&R) -> f64,
) -> expstats::Result<SeedCi> {
    let mut vals = metric_across_seeds(runs, metric);
    vals.retain(|v| v.is_finite());
    let d = expstats::mean_ci(&vals, level)?;
    Ok(SeedCi {
        mean: d.estimate,
        ci: d.ci,
        se: d.se,
        n: vals.len(),
    })
}

/// Extract one scalar metric from every replication (e.g. for a mean ±
/// CI across seeds via `expstats`).
pub fn metric_across_seeds<R>(runs: &[SeedRun<R>], metric: impl Fn(&R) -> f64) -> Vec<f64> {
    runs.iter().map(|r| metric(&r.result)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let runner = Runner::with_threads(4);
        let jobs: Vec<u64> = (0..100).collect();
        assert_eq!(
            runner.map(&jobs, |j| j * 2),
            (0..100).map(|j| j * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn map_with_more_threads_than_jobs() {
        // Regression: worker count is clamped to the job count, and the
        // chunked claim loop hands every job out exactly once — no empty
        // claims, no lost slots — even when threads vastly exceed jobs.
        use std::sync::atomic::AtomicUsize;
        for jobs_n in [1usize, 2, 3, 5] {
            let runner = Runner::with_threads(16);
            let jobs: Vec<u64> = (0..jobs_n as u64).collect();
            let calls = AtomicUsize::new(0);
            let out = runner.map(&jobs, |&j| {
                calls.fetch_add(1, Ordering::Relaxed);
                j + 1
            });
            assert_eq!(out, (1..=jobs_n as u64).collect::<Vec<_>>());
            assert_eq!(calls.into_inner(), jobs_n, "each job runs exactly once");
        }
        // Empty job lists return immediately.
        let out = Runner::with_threads(8).map(&Vec::<u64>::new(), |&j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn chunked_claims_cover_all_jobs() {
        // Many cheap jobs across few workers: the decay heuristic must
        // still cover every index exactly once and preserve order.
        use std::sync::atomic::AtomicUsize;
        let runner = Runner::with_threads(3);
        let jobs: Vec<u64> = (0..1777).collect();
        let calls = AtomicUsize::new(0);
        let out = runner.map(&jobs, |&j| {
            calls.fetch_add(1, Ordering::Relaxed);
            j * 3
        });
        assert_eq!(out, (0..1777).map(|j| j * 3).collect::<Vec<_>>());
        assert_eq!(calls.into_inner(), 1777);
    }

    #[test]
    fn map_fold_matches_sequential_fold() {
        let jobs: Vec<u64> = (0..1000).collect();
        // Commutative fold (sum + count) so any partial merge order is
        // exact.
        let run = |threads: usize| {
            Runner::with_threads(threads).map_fold(
                &jobs,
                || (0u64, 0usize),
                |acc, idx, &j| {
                    acc.0 += j * (idx as u64 + 1);
                    acc.1 += 1;
                },
                |acc, other| {
                    acc.0 += other.0;
                    acc.1 += other.1;
                },
            )
        };
        let seq = run(1);
        assert_eq!(seq.1, 1000);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), seq);
        }
        // Empty job list returns the identity accumulator.
        let empty =
            Runner::with_threads(4).map_fold(&Vec::<u64>::new(), || 7u64, |_, _, _| {}, |_, _| {});
        assert_eq!(empty, 7);
    }

    #[test]
    fn map_fold_receives_every_index_once() {
        let jobs: Vec<u64> = (0..333).collect();
        let mut seen = Runner::with_threads(5).map_fold(
            &jobs,
            Vec::new,
            |acc: &mut Vec<usize>, idx, _| acc.push(idx),
            |acc, other| acc.extend(other),
        );
        seen.sort_unstable();
        assert_eq!(seen, (0..333).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn map_fold_panic_propagates() {
        Runner::with_threads(2).map_fold(
            &[1u64, 2, 3, 4],
            || 0u64,
            |acc, _, &j| {
                assert!(j != 3, "boom");
                *acc += j;
            },
            |acc, other| *acc += other,
        );
    }

    #[test]
    fn sweep_grid_matches_nested_sequential() {
        let params = [2.0f64, 3.0, 5.0];
        let seeds = derive_seeds(11, 4);
        let f = |p: &f64, seed: u64| {
            let mut rng = SimRng::new(seed);
            rng.uniform01() * p
        };
        let grid = Runner::with_threads(4).sweep_grid(&params, &seeds, f);
        assert_eq!(grid.len(), params.len());
        for (p, group) in params.iter().zip(&grid) {
            let seq: Vec<SeedRun<f64>> = seeds
                .iter()
                .map(|&s| SeedRun {
                    seed: s,
                    result: f(p, s),
                })
                .collect();
            assert_eq!(group, &seq);
        }
    }

    #[test]
    fn sweep_matches_sequential() {
        let seeds = derive_seeds(42, 32);
        let scenario = |mult: &u64, seed: u64| {
            // Seed-dependent pseudo-work with seed-dependent duration,
            // so workers finish out of order.
            let mut rng = SimRng::new(seed);
            let spins = 10 + (seed % 1000);
            let mut acc = 0.0;
            for _ in 0..spins {
                acc += rng.uniform01();
            }
            acc * *mult as f64
        };
        let par = Runner::with_threads(8).sweep(&3u64, &seeds, scenario);
        let seq = Runner::with_threads(1).sweep(&3u64, &seeds, scenario);
        assert_eq!(par, seq);
    }

    #[test]
    fn derive_seeds_prefix_stable() {
        let short = derive_seeds(7, 8);
        let long = derive_seeds(7, 16);
        assert_eq!(short[..], long[..8]);
        // Distinct seeds throughout.
        let mut sorted = long.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), long.len());
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        Runner::with_threads(2).map(&[1u64, 2, 3, 4], |&j| {
            assert!(j != 3, "boom");
            j
        });
    }

    #[test]
    fn metric_ci_drops_non_finite_and_matches_mean() {
        let runs: Vec<SeedRun<f64>> = [10.0, 12.0, f64::NAN, 14.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| SeedRun {
                seed: i as u64,
                result: v,
            })
            .collect();
        let ci = metric_ci(&runs, 0.95, |&v| v).unwrap();
        assert_eq!(ci.n, 3);
        assert!((ci.mean - 12.0).abs() < 1e-12);
        assert!(ci.ci.0 < 12.0 && 12.0 < ci.ci.1);
        // All-NaN input errors instead of returning NaN.
        let bad: Vec<SeedRun<f64>> = vec![
            SeedRun {
                seed: 0,
                result: f64::NAN,
            },
            SeedRun {
                seed: 1,
                result: f64::NAN,
            },
        ];
        assert!(metric_ci(&bad, 0.95, |&v| v).is_err());
    }

    #[test]
    fn stream_sweeps_match_sequential() {
        let cfg = StreamConfig {
            days: 1,
            capacity_bps: 60e6,
            peak_arrivals_per_s: 0.24 * 0.06,
            ..Default::default()
        };
        let seeds = derive_seeds(5, 4);
        let schedule = AllocationSchedule::Constant(0.5);
        let fingerprint = |runs: &[SeedRun<(Vec<SessionRecord>, Vec<HourlyLinkStats>)>]| {
            runs.iter()
                .map(|r| {
                    (
                        r.seed,
                        r.result.0.len(),
                        r.result.0.iter().map(|s| s.bytes).sum::<f64>().to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let par = Runner::with_threads(4).sweep_link(&cfg, &schedule, LinkId::One, &seeds);
        let seq = Runner::with_threads(1).sweep_link(&cfg, &schedule, LinkId::One, &seeds);
        assert_eq!(fingerprint(&par), fingerprint(&seq));
    }

    #[test]
    fn metric_extraction() {
        let runs = vec![
            SeedRun {
                seed: 1,
                result: 2.0f64,
            },
            SeedRun {
                seed: 2,
                result: 4.0f64,
            },
        ];
        assert_eq!(metric_across_seeds(&runs, |r| r * 10.0), vec![20.0, 40.0]);
    }
}
