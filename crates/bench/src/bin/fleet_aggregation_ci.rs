//! Fleet aggregation CIs — the fleet-scale generalization of
//! Figure 13: the same cluster contrast (treated sessions on treated
//! links vs control sessions on control links) under three uncertainty
//! treatments — iid session-level Welch intervals, link-clustered
//! (CRV1) intervals, and full aggregation to one mean per link — plus
//! the between/within-link effect decomposition that explains *why*
//! clustering matters under interference.
//!
//! Runs on the streaming aggregation path: sessions are folded into
//! per-link moment summaries as each link job finishes, so the sweep's
//! footprint scales with links, not sessions.

use repro_bench::figharness::{self as fh, fmt_pct, FigureReport};
use repro_bench::{derive_seeds, fleet_strata_count, fleet_strata_labels, Runner, SeedRun};
use streamsim::fleet::FleetDesign;
use streamsim::session::Metric;
use unbiased::fleet::{
    aggregation_comparison_summary, control_mean_summary, fleet_between_within_summary,
    strata_summary, AggregationComparison, FleetSummary, DEFAULT_SKETCH_CAP,
};

const METRICS: &[Metric] = &[
    Metric::Throughput,
    Metric::Bitrate,
    Metric::MinRtt,
    Metric::RebufferSessions,
];

/// Everything one replication contributes.
struct SeedEstimates {
    /// Per metric: the three-way aggregation comparison.
    comparisons: Vec<Result<AggregationComparison, String>>,
    /// Per congestion stratum: throughput comparison within the stratum.
    strata_comparisons: Vec<Result<AggregationComparison, String>>,
    /// Between/within decomposition for throughput (relative units).
    between: Result<f64, String>,
    within: Result<f64, String>,
}

fn estimate_seed(summary: &FleetSummary) -> SeedEstimates {
    let links = summary.link_refs();
    let comparisons = METRICS
        .iter()
        .map(|&m| {
            let base = control_mean_summary(&links, m);
            aggregation_comparison_summary(&links, m, base).map_err(|e| e.to_string())
        })
        .collect();
    let strata_comparisons = strata_summary(summary, fleet_strata_count(summary.links.len()))
        .into_iter()
        .map(|group| {
            let base = control_mean_summary(&group, Metric::Throughput);
            aggregation_comparison_summary(&group, Metric::Throughput, base)
                .map_err(|e| e.to_string())
        })
        .collect();
    let base = control_mean_summary(&links, Metric::Throughput);
    let bw = fleet_between_within_summary(&links, Metric::Throughput);
    let (between, within) = match bw {
        Ok(bw) => (
            bw.between
                .map(|d| d.estimate / base)
                .ok_or_else(|| "no between contrast".to_string()),
            bw.within
                .map(|d| d.estimate / base)
                .ok_or_else(|| "no within contrast".to_string()),
        ),
        Err(e) => (Err(e.to_string()), Err(e.to_string())),
    };
    SeedEstimates {
        comparisons,
        strata_comparisons,
        between,
        within,
    }
}

/// Render `±half-width` of a relative CI as a percentage cell input.
fn rel_half_width(lo: f64, hi: f64) -> f64 {
    (hi - lo) / 2.0
}

fn main() {
    let n_links = fh::fleet_links(200);
    let days = fh::stream_days(2);
    let (base, specs) = repro_bench::fleet_population(n_links, days, 4041);
    let seeds = derive_seeds(1313, fh::replications(8));
    let design = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };

    let runs: Vec<SeedRun<SeedEstimates>> = Runner::new()
        .sweep_fleet_streaming(&base, &specs, &design, &seeds, DEFAULT_SKETCH_CAP)
        .into_iter()
        .map(|r| SeedRun {
            seed: r.seed,
            result: estimate_seed(&r.result),
        })
        .collect();

    let mut rep = FigureReport::new(
        "fleet_aggregation_ci",
        format!(
            "Fleet aggregation CIs: session-iid vs link-clustered vs link-mean intervals \
             ({n_links} links, link-level design)"
        ),
    )
    .seeds(seeds.len());

    // Main table: estimate plus the three CI half-widths per metric.
    let t = rep.add_table(
        "",
        vec![
            "metric",
            "estimate (clustered)",
            "iid +/- (anti-conservative)",
            "clustered +/-",
            "link-mean +/-",
        ],
    );
    for (mi, &m) in METRICS.iter().enumerate() {
        let est = rep.estimator_cell(&runs, &format!("clustered/{}", m.name()), fmt_pct, |e| {
            e.comparisons[mi].clone().map(|c| c.clustered.relative)
        });
        let pick = |f: fn(&AggregationComparison) -> (f64, f64)| {
            move |e: &SeedEstimates| {
                e.comparisons[mi].clone().map(|c| {
                    let (lo, hi) = f(&c);
                    rel_half_width(lo, hi)
                })
            }
        };
        let iid = rep.estimator_cell(
            &runs,
            &format!("iid width/{}", m.name()),
            fmt_pct,
            pick(|c| c.iid.ci95),
        );
        let cl = rep.estimator_cell(
            &runs,
            &format!("clustered width/{}", m.name()),
            fmt_pct,
            pick(|c| c.clustered.ci95),
        );
        let lm = rep.estimator_cell(
            &runs,
            &format!("link-mean width/{}", m.name()),
            fmt_pct,
            pick(|c| c.link_means.ci95),
        );
        rep.row(t, m.name(), vec![est, iid, cl, lm]);
    }

    // Between/within decomposition (throughput): the interference
    // signature — the between-link component carries the spillover the
    // within-link component cancels out.
    let bw = rep.add_table(
        "between/within-link decomposition (avg throughput, relative)",
        vec!["component", "estimate"],
    );
    let between = rep.estimator_cell(&runs, "between-link", fmt_pct, |e| e.between.clone());
    rep.row(bw, "between-link (cluster contrast)", vec![between]);
    let within = rep.estimator_cell(&runs, "within-link", fmt_pct, |e| e.within.clone());
    rep.row(bw, "within-link (session contrast)", vec![within]);

    // Per-stratum table: clustered estimate and interval width by
    // congestion stratum.
    let st = rep.add_table(
        "avg throughput by congestion stratum (links sorted by offered-load covariate)",
        vec![
            "stratum",
            "estimate (clustered)",
            "clustered +/-",
            "link-mean +/-",
        ],
    );
    for (si, label) in fleet_strata_labels(n_links).iter().enumerate() {
        let grab = |f: fn(&AggregationComparison) -> f64| {
            move |e: &SeedEstimates| {
                e.strata_comparisons
                    .get(si)
                    .cloned()
                    .unwrap_or_else(|| Err("stratum missing".into()))
                    .map(|c| f(&c))
            }
        };
        let est = rep.estimator_cell(
            &runs,
            &format!("stratum est/{label}"),
            fmt_pct,
            grab(|c| c.clustered.relative),
        );
        let cl = rep.estimator_cell(
            &runs,
            &format!("stratum clustered width/{label}"),
            fmt_pct,
            grab(|c| rel_half_width(c.clustered.ci95.0, c.clustered.ci95.1)),
        );
        let lm = rep.estimator_cell(
            &runs,
            &format!("stratum link-mean width/{label}"),
            fmt_pct,
            grab(|c| rel_half_width(c.link_means.ci95.0, c.link_means.ci95.1)),
        );
        rep.row(st, *label, vec![est, cl, lm]);
    }

    rep.note(
        "(paper fig13 analogue: iid session intervals shrink with session count and \
         under-cover; clustered and link-mean intervals respect the link count — the \
         real replication unit of a fleet experiment)",
    );
    rep.emit();
}
