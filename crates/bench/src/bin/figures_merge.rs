//! Merge the per-figure JSON reports written under `FIG_JSON_DIR` into
//! one `figures.json` document — the artifact the CI `figure-smoke` job
//! uploads.
//!
//! Usage:
//!   `figures_merge <json-dir> <out.json>` — merge (the default mode)
//!   `figures_merge --list`                — print one figure *binary*
//!                                           name per line
//!
//! `--list` is the single source of truth for "which binaries are
//! figures": the CI `figure-smoke` job loops over its output instead of
//! hand-maintaining a copy of the list in the workflow file, so adding
//! a figure here is the only registration step.
//!
//! Every figure in [`EXPECTED_FIGURES`] must have written a
//! syntactically valid `<id>.json` whose `"id"` field matches its file
//! stem; a missing, unparseable, or mislabeled report is a hard error
//! (exit 1), so a figure that panics before emitting — or emits garbage
//! — fails the build instead of silently thinning the artifact.

use std::path::Path;
use std::process::ExitCode;

use repro_bench::figharness::{git_rev, EXPECTED_FIGURES};
use repro_bench::json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if let [_, flag] = args.as_slice() {
        if flag == "--list" {
            for (_, bin) in EXPECTED_FIGURES {
                println!("{bin}");
            }
            return ExitCode::SUCCESS;
        }
    }
    let [_, dir, out] = args.as_slice() else {
        eprintln!("usage: figures_merge <json-dir> <out.json>  |  figures_merge --list");
        return ExitCode::FAILURE;
    };
    let dir = Path::new(dir);
    let mut failures = 0usize;
    let mut merged = String::new();
    merged.push_str("{\n");
    merged.push_str(&format!(
        "  \"git_rev\": \"{}\",\n",
        json::escape(&git_rev())
    ));
    merged.push_str("  \"figures\": {\n");
    for (i, (id, _)) in EXPECTED_FIGURES.iter().enumerate() {
        let path = dir.join(format!("{id}.json"));
        let raw = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {id}: missing report {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        let parsed = match json::parse(&raw) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {id}: invalid JSON in {}: {e}", path.display());
                failures += 1;
                continue;
            }
        };
        match parsed.get("id").and_then(json::Value::as_str) {
            Some(got) if got == *id => {}
            got => {
                eprintln!("error: {id}: report carries id {got:?}, expected \"{id}\"");
                failures += 1;
                continue;
            }
        }
        let comma = if i + 1 < EXPECTED_FIGURES.len() {
            ","
        } else {
            ""
        };
        // Re-indent the (validated) raw document under its key.
        let indented = raw.trim_end().replace('\n', "\n    ");
        merged.push_str(&format!("    \"{id}\": {indented}{comma}\n"));
    }
    merged.push_str("  }\n}\n");
    if failures > 0 {
        eprintln!("figures_merge: {failures} figure report(s) missing or invalid");
        return ExitCode::FAILURE;
    }
    if let Err(e) = json::validate(&merged) {
        // Can only happen if a per-figure document tricks the
        // re-indentation; treat as a bug, not a figure failure.
        eprintln!("figures_merge: merged document is invalid JSON: {e}");
        return ExitCode::FAILURE;
    }
    std::fs::write(out, &merged).expect("write merged figures.json");
    println!(
        "figures_merge: merged {} figure reports into {out}",
        EXPECTED_FIGURES.len()
    );
    ExitCode::SUCCESS
}
