//! Demonstrate the multi-seed parallel scenario runner on the §3 lab
//! dumbbell: per-seed metrics, cross-seed aggregation, and the
//! parallel-vs-sequential wall clock.
use std::time::Instant;

use expstats::{mean, stddev};
use netsim::config::CcKind;
use repro_bench::runner::{derive_seeds, metric_across_seeds, Runner};
use repro_bench::{lab_config, plain};

fn main() {
    let n_seeds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let cfg = lab_config(vec![plain(CcKind::Reno); 10], 0);
    let seeds = derive_seeds(2021, n_seeds);

    let runner = Runner::new();
    println!(
        "sweeping {} seeds of the 200 Mb/s lab dumbbell over {} worker threads\n",
        seeds.len(),
        runner.threads()
    );

    let t0 = Instant::now();
    let runs = runner.sweep_dumbbell(&cfg, &seeds);
    let parallel = t0.elapsed();

    println!("{:>20}  {:>14}  {:>10}", "seed", "total tput (M)", "events");
    for r in &runs {
        println!(
            "{:>20x}  {:>14.2}  {:>10}",
            r.seed,
            r.result.total_throughput_bps() / 1e6,
            r.result.events
        );
    }
    let tputs = metric_across_seeds(&runs, |r| r.total_throughput_bps() / 1e6);
    println!(
        "\nacross seeds: mean {:.2} Mb/s, sd {:.3} Mb/s",
        mean(&tputs),
        stddev(&tputs)
    );

    let t1 = Instant::now();
    let seq = Runner::with_threads(1).sweep_dumbbell(&cfg, &seeds);
    let sequential = t1.elapsed();
    let identical = runs
        .iter()
        .zip(&seq)
        .all(|(a, b)| a.seed == b.seed && a.result.events == b.result.events);
    println!(
        "\nparallel {parallel:?} vs sequential {sequential:?} ({:.2}x); per-seed results identical: {identical}",
        sequential.as_secs_f64() / parallel.as_secs_f64()
    );
}
