//! Figure 8: minimum-RTT cell means, normalized to the smallest cell.
use expstats::table::Table;
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;

fn main() {
    let out = repro_bench::main_experiment(0.35, 5, 202).run();
    let m = Metric::MinRtt;
    let vals = [
        (
            "link1 capped (95%)",
            Dataset::mean(&out.data.cell(LinkId::One, true), m),
        ),
        (
            "link1 uncapped (5%)",
            Dataset::mean(&out.data.cell(LinkId::One, false), m),
        ),
        (
            "link2 capped (5%)",
            Dataset::mean(&out.data.cell(LinkId::Two, true), m),
        ),
        (
            "link2 uncapped (95%)",
            Dataset::mean(&out.data.cell(LinkId::Two, false), m),
        ),
    ];
    let min = vals.iter().map(|v| v.1).fold(f64::MAX, f64::min);
    println!("Figure 8: mean of per-session minimum RTT, normalized to smallest cell\n");
    let mut t = Table::new(vec!["cell", "min RTT (ms)", "normalized"]);
    for (name, v) in vals {
        t.row(vec![
            name.to_string(),
            format!("{:.2}", v * 1e3),
            format!("{:.3}", v / min),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: both cells of the mostly-capped link sit near the base RTT)");
}
