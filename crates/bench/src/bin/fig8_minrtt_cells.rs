//! Figure 8: minimum-RTT cell means, normalized to the smallest cell —
//! cross-seed mean ± 95% CI per cell through the shared figure harness.
use repro_bench::figharness::{self as fh, fmt_scaled, FigCell, FigureReport};
use repro_bench::metric_ci;
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;
use unbiased::designs::PairedOutcome;

const REPLICATIONS: usize = 8;

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, REPLICATIONS);
    let m = Metric::MinRtt;
    let cell_of = |out: &PairedOutcome, l, t| Dataset::mean(&out.data.cell(l, t), m);
    // A degenerate cell (too few finite replications) renders as "-"
    // with a warning instead of panicking the whole figure.
    let cell_ci = |l, t| metric_ci(&sweep.runs, 0.95, |out| cell_of(out, l, t)).ok();

    let cells = [
        ("link1 capped (95%)", cell_ci(LinkId::One, true)),
        ("link1 uncapped (5%)", cell_ci(LinkId::One, false)),
        ("link2 capped (5%)", cell_ci(LinkId::Two, true)),
        ("link2 uncapped (95%)", cell_ci(LinkId::Two, false)),
    ];
    let min = cells
        .iter()
        .filter_map(|c| c.1.as_ref().map(|ci| ci.mean))
        .fold(f64::MAX, f64::min);
    let mut rep = FigureReport::new(
        "fig8",
        "Figure 8: mean of per-session minimum RTT, normalized to smallest cell",
    )
    .seeds(sweep.replications());
    let t = rep.add_table("", vec!["cell", "min RTT (ms)", "normalized"]);
    let ms = fmt_scaled(1e3, 2);
    for (name, c) in cells {
        match c {
            Some(c) => {
                let rtt = FigCell::ci(&c, ms(&c));
                let norm = FigCell::value(c.mean / min, format!("{:.3}", c.mean / min));
                rep.row(t, name, vec![rtt, norm]);
            }
            None => {
                rep.warn(format!("{name}: too few finite replications for a CI"));
                rep.row(t, name, vec![FigCell::missing(), FigCell::missing()]);
            }
        }
    }
    rep.note("(paper: both cells of the mostly-capped link sit near the base RTT)");
    rep.emit();
}
