//! Figure 8: minimum-RTT cell means, normalized to the smallest cell —
//! aggregated across replication seeds (mean ± 95% CI), so each cell
//! reports cross-seed variability instead of one world.
use expstats::table::Table;
use repro_bench::{derive_seeds, metric_ci, Runner, SeedCi, SeedRun};
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;
use unbiased::designs::PairedOutcome;

const REPLICATIONS: usize = 8;

fn main() {
    let design = repro_bench::main_experiment(0.35, 5, 202);
    let runs: Vec<SeedRun<PairedOutcome>> =
        Runner::new().sweep_paired(&design, &derive_seeds(202, REPLICATIONS));
    let m = Metric::MinRtt;
    let cell_of = |out: &PairedOutcome, l, t| Dataset::mean(&out.data.cell(l, t), m);
    // A degenerate cell (too few finite replications) is skipped, like
    // fig9's day parts, instead of panicking the whole figure.
    let cell_ci = |l, t| metric_ci(&runs, 0.95, |out| cell_of(out, l, t)).ok();

    let cells: [(&str, Option<SeedCi>); 4] = [
        ("link1 capped (95%)", cell_ci(LinkId::One, true)),
        ("link1 uncapped (5%)", cell_ci(LinkId::One, false)),
        ("link2 capped (5%)", cell_ci(LinkId::Two, true)),
        ("link2 uncapped (95%)", cell_ci(LinkId::Two, false)),
    ];
    let min = cells
        .iter()
        .filter_map(|c| c.1.as_ref().map(|ci| ci.mean))
        .fold(f64::MAX, f64::min);
    println!(
        "Figure 8: mean of per-session minimum RTT, normalized to smallest cell \
         (mean ± 95% CI over {REPLICATIONS} seeds)\n"
    );
    let mut t = Table::new(vec!["cell", "min RTT (ms)", "95% CI", "normalized"]);
    for (name, c) in cells {
        let Some(c) = c else { continue };
        t.row(vec![
            name.to_string(),
            format!("{:.2}", c.mean * 1e3),
            format!("{:.2}..{:.2}", c.ci.0 * 1e3, c.ci.1 * 1e3),
            format!("{:.3}", c.mean / min),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: both cells of the mostly-capped link sit near the base RTT)");
}
