//! Machine-readable performance trajectory: runs the `perf_streamsim`
//! scenarios plus a runner-overhead microbench and writes
//! `BENCH_streamsim.json` at the repo root (scenario → median seconds,
//! plus thread count and git revision), so the perf history is
//! comparable across PRs without parsing bench stdout.
//!
//! Usage: `cargo run --release -p repro-bench --bin bench_report
//! [output.json]`. Set `STREAMSIM_BENCH_QUICK=1` for the CI smoke mode
//! (one sample per scenario instead of five). The committed file at the
//! repo root is always produced by a full run; see README "Performance
//! measurement protocol" for how numbers are compared across revisions.

use std::time::Instant;

use repro_bench::Runner;
use streamsim::config::StreamConfig;
use streamsim::engine::EngineBackend;
use streamsim::scenario::AllocationSchedule;
use streamsim::session::LinkId;
use streamsim::sim::LinkSim;

fn quick() -> bool {
    std::env::var_os("STREAMSIM_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// Time `f` `reps` times; returns (median seconds, sample count).
///
/// In quick mode a single timed sample would otherwise carry all the
/// cold-start noise (first-touch page faults, cold caches) straight
/// into the CI regression gate, so one untimed warmup runs first; full
/// mode absorbs the cold first sample in the median of five instead.
fn time_scenario(reps: usize, mut f: impl FnMut()) -> (f64, usize) {
    if reps == 1 {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    let median = expstats::quantiles::quantile(&samples, 0.5).expect("at least one sample");
    (median, samples.len())
}

/// Reset the process peak-RSS high-water mark so [`peak_rss_mb`] reads
/// the peak of the *next* scenario, not of everything run so far.
/// Best-effort: if `/proc/self/clear_refs` is unwritable the subsequent
/// reading is conservative (includes earlier scenarios).
#[cfg(target_os = "linux")]
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

#[cfg(not(target_os = "linux"))]
fn reset_peak_rss() {}

/// Peak resident set size (`VmHWM`) in MB, if the platform exposes it.
#[cfg(target_os = "linux")]
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_mb() -> Option<f64> {
    None
}

use repro_bench::figharness::git_rev;

fn main() {
    let reps = if quick() { 1 } else { 5 };
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut rows: Vec<(&str, f64, usize, Option<f64>)> = Vec::new();

    // The two perf_streamsim scenarios (same configs as the bench).
    let small = StreamConfig {
        days: 1,
        capacity_bps: 100e6,
        peak_arrivals_per_s: 0.024,
        ..Default::default()
    };
    let (m, n) = time_scenario(reps, || {
        let sim = LinkSim::new(
            small.clone(),
            LinkId::One,
            AllocationSchedule::Constant(0.5),
            1,
        );
        std::hint::black_box(sim.run().0.len());
    });
    rows.push(("one_day_small", m, n, None));

    let default_cfg = StreamConfig::default();
    let (m, n) = time_scenario(reps, || {
        let sim = LinkSim::new(
            default_cfg.clone(),
            LinkId::One,
            AllocationSchedule::Constant(0.5),
            1,
        );
        std::hint::black_box(sim.run().0.len());
    });
    rows.push(("five_day_default", m, n, None));

    // The same workload on the hybrid tick/event engine. Records are
    // bit-identical to the tick run's, so the pair of medians *is* the
    // engine speedup — measured fresh in the same report, same box,
    // same build, so the ratio is immune to cross-revision drift.
    let (m, n) = time_scenario(reps, || {
        let sim = LinkSim::new(
            default_cfg.clone(),
            LinkId::One,
            AllocationSchedule::Constant(0.5),
            1,
        );
        std::hint::black_box(sim.run_with(EngineBackend::Event).0.len());
    });
    rows.push(("five_day_default_event", m, n, None));

    // A small fleet sweep through the link×seed work-stealing scheduler:
    // the fleet layer's hot path (N independent LinkSims + regrouping),
    // on the same plant the fleet figures run (`fleet_population`) so
    // the gate tracks the workload that matters. Identical in quick and
    // full modes — only the sample count differs — so the CI regression
    // gate can compare its median meaningfully.
    let (fleet_base, fleet_specs) = repro_bench::fleet_population(12, 1, 99);
    let fleet_design = streamsim::fleet::FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let fleet_runner = Runner::with_threads(4);
    reset_peak_rss();
    let (m, n) = time_scenario(reps, || {
        let runs = fleet_runner.sweep_fleet(&fleet_base, &fleet_specs, &fleet_design, &[1, 2]);
        std::hint::black_box(
            runs.iter()
                .map(|r| r.result.total_sessions())
                .sum::<usize>(),
        );
    });
    rows.push(("fleet_quick", m, n, peak_rss_mb()));

    // The same fleet sweep on the event engine — tracks that the
    // engine's span bookkeeping stays within the fleet RSS envelope
    // too (undo logs and span buffers are per-link and bounded).
    reset_peak_rss();
    let (m, n) = time_scenario(reps, || {
        let runs = fleet_runner.sweep_fleet_with(
            &fleet_base,
            &fleet_specs,
            &fleet_design,
            &[1, 2],
            EngineBackend::Event,
        );
        std::hint::black_box(
            runs.iter()
                .map(|r| r.result.total_sessions())
                .sum::<usize>(),
        );
    });
    rows.push(("fleet_quick_event", m, n, peak_rss_mb()));

    // The same fleet sweep with the robustness layer fully engaged:
    // telemetry faults on every link (streaming fold) under the
    // quarantine policy, so the measurement covers the per-record wire
    // model — severity scoring, duplicate/reorder bookkeeping, receiver
    // reassembly — plus the `catch_unwind` job isolation quarantine
    // wraps every job in. Moderate knobs, no crashes: the cost profile
    // of a realistic lossy fleet, not a worst case.
    let faults = streamsim::TelemetryFaults {
        drop_mcar: 0.02,
        drop_congested: 0.2,
        duplicate_p: 0.05,
        corrupt_nan_p: 0.01,
        reorder_window: 8,
        ..streamsim::TelemetryFaults::none(77)
    };
    reset_peak_rss();
    let (m, n) = time_scenario(reps, || {
        let runs = fleet_runner.sweep_fleet_streaming_policy(
            &fleet_base,
            &fleet_specs,
            &fleet_design,
            &[1, 2],
            unbiased::fleet::DEFAULT_SKETCH_CAP,
            EngineBackend::Tick,
            Some(&faults),
            repro_bench::FailurePolicy::Quarantine { max_failures: 2 },
        );
        std::hint::black_box(runs.iter().map(|r| r.result.n_sessions).sum::<usize>());
    });
    rows.push(("fleet_quick_faulty", m, n, peak_rss_mb()));

    // The streaming fleet sweep at scale — the memory-bound scenario.
    // Each link's sessions are folded into moment summaries as the job
    // finishes, so peak RSS must stay bounded by links, not sessions.
    // Full mode runs 10 000 links × 8 seeds (minutes of wall clock);
    // quick mode 64 × 2. One timed sample and no warmup either way: a
    // warmup pass would pre-touch the allocator high-water mark and
    // hide exactly the regression the RSS gate exists to catch.
    let (n_links, n_seeds) = if quick() { (64, 2) } else { (10_000, 8) };
    let (large_base, large_specs) = repro_bench::fleet_population(n_links, 1, 4242);
    let large_seeds = repro_bench::derive_seeds(4242, n_seeds);
    reset_peak_rss();
    let start = Instant::now();
    let runs = fleet_runner.sweep_fleet_streaming(
        &large_base,
        &large_specs,
        &fleet_design,
        &large_seeds,
        unbiased::fleet::DEFAULT_SKETCH_CAP,
    );
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(runs.iter().map(|r| r.result.n_sessions).sum::<usize>());
    drop(runs);
    rows.push(("fleet_large", elapsed, 1, peak_rss_mb()));

    // Runner scheduling overhead: a flood of sub-microsecond jobs
    // across an oversubscribed pool, so the measurement is dominated by
    // claim/collect costs — the target of the chunked work-stealing
    // scheduler (per-replication index stealing paid one atomic RMW
    // plus one mutex round-trip per job; chunked claims measured ~1.6×
    // faster on this workload).
    let jobs: Vec<u64> = (0..if quick() { 20_000 } else { 200_000 }).collect();
    let runner = Runner::with_threads(4);
    let (m, n) = time_scenario(reps, || {
        let out = runner.map(&jobs, |&j| {
            let mut rng = dessim::SimRng::new(j);
            let mut acc = 0.0f64;
            for _ in 0..4 {
                acc += rng.uniform01();
            }
            acc
        });
        std::hint::black_box(out.len());
    });
    rows.push(("runner_overhead_sweep", m, n, None));

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"git_rev\": \"{}\",\n", git_rev()));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"quick\": {},\n", quick()));
    json.push_str("  \"scenarios\": {\n");
    for (i, (name, median_s, samples, rss)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let rss_field = rss
            .map(|mb| format!(", \"peak_rss_mb\": {mb:.1}"))
            .unwrap_or_default();
        json.push_str(&format!(
            "    \"{name}\": {{ \"median_s\": {median_s:.6}, \"samples\": {samples}{rss_field} }}{comma}\n"
        ));
    }
    json.push_str("  }\n}\n");

    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        // crates/bench/../../ == repo root.
        format!("{}/../../BENCH_streamsim.json", env!("CARGO_MANIFEST_DIR"))
    });
    std::fs::write(&out_path, &json).expect("write bench report");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
