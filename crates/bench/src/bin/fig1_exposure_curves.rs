//! Figure 1: allocation–response curves μ_T(p), μ_C(p) with and without
//! congestion interference (closed-form models).
use causal::exposure::{standard_grid, ExposureCurves};
use causal::potential::{FairShare, NoInterference};
use expstats::table::Table;

fn main() {
    let grid = standard_grid(11);
    let no_interf = NoInterference {
        baselines: vec![1.0; 100],
        effect: 0.5,
    };
    let fair = FairShare {
        n: 100,
        capacity: 100.0,
        weight_treated: 2.0,
        weight_control: 1.0,
    };
    let a = ExposureCurves::sample(&no_interf, &grid, 50, 1);
    let b = ExposureCurves::sample(&fair, &grid, 50, 2);
    println!("Figure 1: A/B tests with and without congestion interference\n");
    let mut t = Table::new(vec!["p", "(a) mu_T", "(a) mu_C", "(b) mu_T", "(b) mu_C"]);
    for (i, &p) in grid.iter().enumerate() {
        t.row(vec![
            format!("{p:.1}"),
            format!("{:.3}", a.mu_t[i]),
            format!("{:.3}", a.mu_c[i]),
            format!("{:.3}", b.mu_t[i]),
            format!("{:.3}", b.mu_c[i]),
        ]);
    }
    println!("{}", t.render());
    println!("(a) no interference: ATE flat, TTE = {:.3}", a.tte());
    println!(
        "(b) fair-share interference: ATE varies with p, TTE = {:.3}",
        b.tte()
    );
}
