//! Figure 1: allocation–response curves μ_T(p), μ_C(p) with and without
//! congestion interference (closed-form models), through the shared
//! figure harness (deterministic — no seed sweep to aggregate).
use causal::exposure::{standard_grid, ExposureCurves};
use causal::potential::{FairShare, NoInterference};
use repro_bench::figharness::FigureReport;
use repro_bench::FigCell;

fn main() {
    let grid = standard_grid(11);
    let no_interf = NoInterference {
        baselines: vec![1.0; 100],
        effect: 0.5,
    };
    let fair = FairShare {
        n: 100,
        capacity: 100.0,
        weight_treated: 2.0,
        weight_control: 1.0,
    };
    let a = ExposureCurves::sample(&no_interf, &grid, 50, 1);
    let b = ExposureCurves::sample(&fair, &grid, 50, 2);
    let mut rep = FigureReport::new(
        "fig1",
        "Figure 1: A/B tests with and without congestion interference",
    );
    let t = rep.add_table(
        "",
        vec!["p", "(a) mu_T", "(a) mu_C", "(b) mu_T", "(b) mu_C"],
    );
    for (i, &p) in grid.iter().enumerate() {
        let cell = |v: f64| FigCell::value(v, format!("{v:.3}"));
        rep.row(
            t,
            format!("{p:.1}"),
            vec![
                cell(a.mu_t[i]),
                cell(a.mu_c[i]),
                cell(b.mu_t[i]),
                cell(b.mu_c[i]),
            ],
        );
    }
    rep.note(format!(
        "(a) no interference: ATE flat, TTE = {:.3}",
        a.tte()
    ));
    rep.note(format!(
        "(b) fair-share interference: ATE varies with p, TTE = {:.3}",
        b.tte()
    ));
    rep.emit();
}
