//! Telemetry-loss bias — what lossy measurement does to fleet
//! estimates, by loss *model*, not just loss *rate*.
//!
//! Sweeps a lightly-loaded fleet under two telemetry fault models at
//! matched nominal loss rates:
//!
//! * **MCAR** ([`TelemetryFaults::drop_mcar`]): arm-blind record loss.
//!   Estimates stay centred on the clean values; confidence intervals
//!   widen with the shrinking sample — the benign regime.
//! * **MNAR** ([`TelemetryFaults::drop_congested`]): loss scaling with
//!   [`congestion_severity`], which a bitrate cap couples to the
//!   treatment itself — capped sessions stream below the slow-rate
//!   threshold, so *their* reports are preferentially lost, and every
//!   arm loses its slowest sessions first. The user-level estimate is
//!   computed on a selected sample and drifts away from the clean
//!   value, and the delivered arm ratio skews until the
//!   sample-ratio-mismatch guardrail fires.
//!
//! The link-level (cluster) design rides along as the robustness
//! comparison: its estimator weights every link equally, where the
//! pooled user-level contrast reweights toward the links that kept
//! their records — on a load-heterogeneous fleet, exactly the
//! healthiest ones.
//!
//! [`congestion_severity`]: streamsim::telemetry::congestion_severity

use repro_bench::figharness::{self as fh, fmt_pct, FigCell, FigureReport};
use repro_bench::{derive_seeds, FailurePolicy, Runner, SeedRun};
use streamsim::config::StreamConfig;
use streamsim::engine::EngineBackend;
use streamsim::fleet::{FleetDesign, LinkPopulation};
use streamsim::session::Metric;
use streamsim::telemetry::TelemetryFaults;
use unbiased::fleet::{
    control_mean_summary, link_level_effect_summary, user_level_effect_summary, FleetEffect,
    DEFAULT_SKETCH_CAP,
};
use unbiased::guardrails::{assess_fleet_quality, QualityFlag, SRM_P_THRESHOLD};

/// Nominal loss rates swept per model (the clean baseline rides as an
/// extra row).
const RATES: &[f64] = &[0.02, 0.05, 0.10, 0.20];

/// MNAR severity multiplier: `drop_congested = MNAR_SCALE × rate`,
/// calibrated so the realized fleet-wide loss roughly matches the
/// nominal rate on this population (mean congestion severity ≈ 1/4 —
/// capped sessions sit near 0.42, uncapped near zero). The realized
/// loss column reports what actually happened.
const MNAR_SCALE: f64 = 4.0;

/// Fault seed, deliberately fixed across rows: the *rate*, not the
/// random stream, is the experimental knob.
const FAULT_SEED: u64 = 31;

#[derive(Clone, Copy, PartialEq)]
enum LossModel {
    Mcar,
    Mnar,
}

impl LossModel {
    fn name(self) -> &'static str {
        match self {
            LossModel::Mcar => "MCAR",
            LossModel::Mnar => "MNAR (congestion)",
        }
    }

    fn faults(self, rate: f64) -> TelemetryFaults {
        match self {
            LossModel::Mcar => TelemetryFaults {
                drop_mcar: rate,
                ..TelemetryFaults::none(FAULT_SEED)
            },
            LossModel::Mnar => TelemetryFaults {
                drop_congested: (MNAR_SCALE * rate).min(1.0),
                ..TelemetryFaults::none(FAULT_SEED)
            },
        }
    }
}

/// One seed's estimates for one grid cell.
struct SeedEstimates {
    user: Result<FleetEffect, String>,
    link: Result<FleetEffect, String>,
    /// Realized fleet-wide loss fraction (user-level sweep).
    loss: f64,
    /// SRM p-value on the user-level sweep, if testable.
    srm_p: Option<f64>,
}

/// The lightly-loaded fleet: same arrival process as the standard
/// congested [`repro_bench::fleet_base`], but 2.4× its capacity
/// (offered load ≈ 0.5× capacity on the average link). The MNAR bias
/// mechanism needs no congestion in the *world* — only
/// treatment-coupled loss in the *measurement* — and a mostly-healthy
/// fleet keeps the two channels separate: uncapped sessions score near
/// zero severity, capped ones don't.
fn healthy_base(days: usize) -> StreamConfig {
    StreamConfig {
        capacity_bps: 72e6,
        ..repro_bench::fleet_base(days)
    }
}

fn main() {
    let n_links = fh::fleet_links(48);
    let days = fh::stream_days(2);
    let base = healthy_base(days);
    // Extra demand heterogeneity on top of the moderate template: with
    // load ratios spanning roughly 0.2–1.2× capacity, the congested
    // tail of the fleet both suffers the largest effects and loses the
    // most telemetry — the combination that separates the
    // session-weighted and link-weighted estimators under MNAR loss.
    let mut pop = LinkPopulation::moderate(base.clone(), n_links, 2024);
    pop.demand_sigma = 0.55;
    let specs = pop.sample();
    let seeds = derive_seeds(2718, fh::replications(6));
    let user_design = FleetDesign::UserLevel { p: 0.5 };
    let link_design = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let runner = Runner::new();

    let sweep_cell = |faults: Option<&TelemetryFaults>| -> Vec<SeedRun<SeedEstimates>> {
        let users = runner.sweep_fleet_streaming_policy(
            &base,
            &specs,
            &user_design,
            &seeds,
            DEFAULT_SKETCH_CAP,
            EngineBackend::Tick,
            faults,
            FailurePolicy::FailFast,
        );
        let links = runner.sweep_fleet_streaming_policy(
            &base,
            &specs,
            &link_design,
            &seeds,
            DEFAULT_SKETCH_CAP,
            EngineBackend::Tick,
            faults,
            FailurePolicy::FailFast,
        );
        users
            .into_iter()
            .zip(links)
            .map(|(u, l)| {
                let uq = assess_fleet_quality(&u.result);
                let lq = assess_fleet_quality(&l.result);
                let urefs = u.result.link_refs();
                let ubase = control_mean_summary(&urefs, Metric::Bitrate);
                let user = user_level_effect_summary(&urefs, Metric::Bitrate, ubase)
                    .map(|e| e.with_quality(uq.flags.clone()))
                    .map_err(|e| e.to_string());
                let lrefs = l.result.link_refs();
                let lbase = control_mean_summary(&lrefs, Metric::Bitrate);
                let link = link_level_effect_summary(&lrefs, Metric::Bitrate, lbase)
                    .map(|e| e.with_quality(lq.flags.clone()))
                    .map_err(|e| e.to_string());
                SeedRun {
                    seed: u.seed,
                    result: SeedEstimates {
                        user,
                        link,
                        loss: uq.loss_fraction,
                        srm_p: uq.srm.map(|s| s.p_value),
                    },
                }
            })
            .collect()
    };

    // The grid: one clean baseline plus rates × models.
    type GridRow = (String, Option<LossModel>, f64, Vec<SeedRun<SeedEstimates>>);
    let mut rows: Vec<GridRow> = vec![("clean".to_string(), None, 0.0, sweep_cell(None))];
    for &model in &[LossModel::Mcar, LossModel::Mnar] {
        for &rate in RATES {
            let faults = model.faults(rate);
            rows.push((
                format!("{} {:.0}%", model.name(), 100.0 * rate),
                Some(model),
                rate,
                sweep_cell(Some(&faults)),
            ));
        }
    }

    let mut rep = FigureReport::new(
        "fleet_telemetry_bias",
        format!(
            "Telemetry loss vs estimate quality: MCAR widens CIs, congestion-correlated \
             loss biases the user-level contrast ({n_links} lightly-loaded links, avg \
             bitrate)"
        ),
    )
    .seeds(seeds.len());

    let t = rep.add_table(
        "",
        vec![
            "fault model",
            "realized loss",
            "user-level effect",
            "user CI +/-",
            "user bias vs clean",
            "SRM p (fires <1e-3)",
            "link-level effect",
            "link CI +/-",
            "link bias vs clean",
        ],
    );

    // Per-seed paired bias against the clean row (same world seed, so
    // seed-to-seed plant noise cancels out of the difference).
    let clean_runs: Vec<(u64, Option<f64>, Option<f64>)> = rows[0]
        .3
        .iter()
        .map(|r| {
            (
                r.seed,
                r.result.user.as_ref().ok().map(|f| f.relative),
                r.result.link.as_ref().ok().map(|f| f.relative),
            )
        })
        .collect();
    let bias_runs = |runs: &[SeedRun<SeedEstimates>],
                     get: fn(&SeedEstimates) -> Option<f64>,
                     clean_at: usize|
     -> Vec<SeedRun<Result<f64, String>>> {
        runs.iter()
            .zip(&clean_runs)
            .map(|(r, clean)| SeedRun {
                seed: r.seed,
                result: match (get(&r.result), [clean.1, clean.2][clean_at]) {
                    (Some(v), Some(c)) => Ok(v - c),
                    _ => Err("estimator failed".to_string()),
                },
            })
            .collect()
    };

    let mut user_series: Vec<(&str, Vec<f64>)> = vec![("MCAR", Vec::new()), ("MNAR", Vec::new())];
    for (label, model, _rate, runs) in &rows {
        let loss = rep.estimator_cell(runs, &format!("{label}/loss"), fmt_pct, |e| Ok(e.loss));
        let user_est = rep.estimator_cell(runs, &format!("{label}/user"), fmt_pct, |e| {
            e.user.clone().map(|f| f.relative)
        });
        let user_w = rep.estimator_cell(runs, &format!("{label}/user width"), fmt_pct, |e| {
            e.user.clone().map(|f| (f.ci95.1 - f.ci95.0) / 2.0)
        });
        let user_b = bias_runs(runs, |e| e.user.as_ref().ok().map(|f| f.relative), 0);
        let user_bias = rep.estimator_cell(
            &user_b,
            &format!("{label}/user bias"),
            fmt_pct,
            Clone::clone,
        );
        let srm = srm_cell(runs);
        let link_est = rep.estimator_cell(runs, &format!("{label}/link"), fmt_pct, |e| {
            e.link.clone().map(|f| f.relative)
        });
        let link_w = rep.estimator_cell(runs, &format!("{label}/link width"), fmt_pct, |e| {
            e.link.clone().map(|f| (f.ci95.1 - f.ci95.0) / 2.0)
        });
        let link_b = bias_runs(runs, |e| e.link.as_ref().ok().map(|f| f.relative), 1);
        let link_bias = rep.estimator_cell(
            &link_b,
            &format!("{label}/link bias"),
            fmt_pct,
            Clone::clone,
        );
        rep.row(
            t,
            label.clone(),
            vec![
                loss, user_est, user_w, user_bias, srm, link_est, link_w, link_bias,
            ],
        );

        // Quality flags attached to the estimates surface as warnings —
        // the guardrail-to-figure contract. One line per flag kind, with
        // the count of seeds raising it.
        warn_flag_counts(&mut rep, label, runs);

        if let Some(model) = model {
            let mean_user: Vec<f64> = runs
                .iter()
                .filter_map(|r| r.result.user.as_ref().ok().map(|f| f.relative))
                .collect();
            if !mean_user.is_empty() {
                let at = usize::from(*model == LossModel::Mnar);
                user_series[at]
                    .1
                    .push(mean_user.iter().sum::<f64>() / mean_user.len() as f64);
            }
        }
    }
    for (name, vals) in user_series {
        rep.series(format!("user-level bitrate effect vs rate ({name})"), vals);
    }

    rep.note(format!(
        "(loss-rate grid {:?}; MNAR maps rate r to drop_congested = {MNAR_SCALE}r, \
         calibrated so realized loss tracks the nominal rate; MCAR loss leaves both \
         designs centred on the clean row and only thins the sample, while MNAR loss \
         biases the estimates — every arm's slowest sessions are the ones whose \
         beacons vanish — and skews the delivered arm ratio until the SRM guardrail \
         fires; the link-level contrast weights links equally instead of reweighting \
         toward the links that kept their records, so its bias grows more slowly)",
        RATES
    ));
    rep.emit();
}

/// Cross-seed SRM cell: median p-value plus how many seeds fire the
/// guardrail.
fn srm_cell(runs: &[SeedRun<SeedEstimates>]) -> FigCell {
    let mut ps: Vec<f64> = runs.iter().filter_map(|r| r.result.srm_p).collect();
    if ps.is_empty() {
        return FigCell::missing();
    }
    ps.sort_by(|a, b| a.total_cmp(b));
    let median = ps[ps.len() / 2];
    let fired = ps.iter().filter(|&&p| p < SRM_P_THRESHOLD).count();
    FigCell::value(
        median,
        format!("{median:.1e} ({fired}/{} seeds fire)", ps.len()),
    )
}

/// Summarize the quality flags riding on a row's estimates into
/// warnings: one line per (estimator, flag kind) with a seed count and
/// the first seed's rendering.
fn warn_flag_counts(rep: &mut FigureReport, label: &str, runs: &[SeedRun<SeedEstimates>]) {
    for (which, get) in [
        (
            "user-level",
            (|e: &SeedEstimates| e.user.as_ref().ok().map(|f| f.quality.clone()))
                as fn(&SeedEstimates) -> Option<Vec<QualityFlag>>,
        ),
        ("link-level", |e: &SeedEstimates| {
            e.link.as_ref().ok().map(|f| f.quality.clone())
        }),
    ] {
        let per_seed: Vec<Vec<QualityFlag>> = runs.iter().filter_map(|r| get(&r.result)).collect();
        let kinds = [
            "sample-ratio mismatch",
            "arm-differential missingness",
            "arm-differential duplication",
            "degraded fleet",
        ];
        for kind in kinds {
            let hits: Vec<&QualityFlag> = per_seed
                .iter()
                .filter_map(|flags| flags.iter().find(|f| f.to_string().starts_with(kind)))
                .collect();
            if let Some(first) = hits.first() {
                rep.warn(format!(
                    "{label} ({which}, {}/{} seeds): {first}",
                    hits.len(),
                    per_seed.len()
                ));
            }
        }
    }
}
