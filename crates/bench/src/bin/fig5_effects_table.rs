//! Figure 5: the main paired-link experiment. Naïve 5%/95% A/B estimates
//! vs approximate TTE and spillover for every metric — cross-seed mean ±
//! 95% CI of the per-seed relative effects through the shared figure
//! harness.
use repro_bench::figharness::{self as fh, fmt_pct, FigCell, FigureReport};
use repro_bench::SeedRun;
use unbiased::designs::{paired_link_effects, MetricEffects};

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, 8);
    let sessions: usize = sweep
        .runs
        .iter()
        .map(|r| r.result.data.len())
        .sum::<usize>()
        / sweep.runs.len();
    let mut rep = FigureReport::new(
        "fig5",
        format!(
            "Figure 5: bitrate-capping paired-link experiment (~{sessions} sessions, {} days)",
            sweep.days
        ),
    )
    .seeds(sweep.replications());
    let t = rep.add_table(
        "",
        vec![
            "metric",
            "naive 5% A/B",
            "naive 95% A/B",
            "TTE",
            "spillover",
            "sign flip",
        ],
    );
    for m in repro_bench::figure5_metrics() {
        // One estimator pass per seed; the four columns and the
        // sign-flip tally all read from it.
        let effects: Vec<SeedRun<Result<MetricEffects, String>>> = sweep
            .runs
            .iter()
            .map(|r| SeedRun {
                seed: r.seed,
                result: paired_link_effects(&r.result.data, m).map_err(|e| e.to_string()),
            })
            .collect();
        let col = |rep: &mut FigureReport, what: &str, f: fn(&MetricEffects) -> f64| {
            rep.estimator_cell(
                &effects,
                &format!("{what}/{}", m.name()),
                fmt_pct,
                move |e| e.as_ref().map(f).map_err(Clone::clone),
            )
        };
        let naive_lo = col(&mut rep, "naive 5%", |e| e.naive_lo.relative);
        let naive_hi = col(&mut rep, "naive 95%", |e| e.naive_hi.relative);
        let tte = col(&mut rep, "TTE", |e| e.tte.relative);
        let spill = col(&mut rep, "spillover", |e| e.spillover.relative);
        let flips: Vec<bool> = effects
            .iter()
            .filter_map(|r| r.result.as_ref().ok())
            .map(|e| e.sign_flip())
            .collect();
        let yes = flips.iter().filter(|&&f| f).count();
        let flip_cell = if yes * 2 > flips.len() {
            FigCell::text(format!("YES ({yes}/{})", flips.len()))
        } else if yes > 0 {
            FigCell::text(format!("({yes}/{})", flips.len()))
        } else {
            FigCell::text("")
        };
        rep.row(t, m.name(), vec![naive_lo, naive_hi, tte, spill, flip_cell]);
    }
    rep.note("(paper: naive says throughput -5% / TTE +12%; min RTT naive +5..12% / TTE -24%)");
    rep.emit();
}
