//! Figure 5: the main paired-link experiment. Naïve 5%/95% A/B estimates
//! vs approximate TTE and spillover for every metric.
use unbiased::designs::paired_link_effects;
use unbiased::report::render_effects_table;

fn main() {
    let design = repro_bench::main_experiment(0.35, 5, 202);
    let out = design.run();
    println!(
        "Figure 5: bitrate-capping paired-link experiment ({} sessions, 5 days)\n",
        out.data.len()
    );
    let rows: Vec<_> = repro_bench::figure5_metrics()
        .into_iter()
        .filter_map(|m| paired_link_effects(&out.data, m).ok())
        .collect();
    println!("{}", render_effects_table(&rows));
    println!("(paper: naive says throughput -5% / TTE +12%; min RTT naive +5..12% / TTE -24%)");
}
