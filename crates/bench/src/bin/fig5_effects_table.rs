//! Figure 5: the main paired-link experiment. Naïve 5%/95% A/B estimates
//! vs approximate TTE and spillover for every metric — aggregated across
//! replication seeds (mean ± 95% CI of the per-seed relative effects),
//! so the table reports cross-seed variability instead of one world.
use expstats::mean_ci;
use expstats::table::{pct, pct_ci, Table};
use repro_bench::{derive_seeds, Runner};
use unbiased::designs::{paired_link_effects, MetricEffects};

const REPLICATIONS: usize = 8;

/// "mean (lo..hi)" across seeds, or a dash when too few finite values.
fn ci_cell(vals: &[f64]) -> String {
    let finite: Vec<f64> = vals.iter().copied().filter(|v| v.is_finite()).collect();
    match mean_ci(&finite, 0.95) {
        Ok(d) => format!("{} {}", pct(d.estimate), pct_ci(d.ci)),
        Err(_) => "-".to_string(),
    }
}

fn main() {
    let design = repro_bench::main_experiment(0.35, 5, 202);
    let seeds = derive_seeds(202, REPLICATIONS);
    let runs = Runner::new().sweep_paired(&design, &seeds);
    let sessions: usize = runs.iter().map(|r| r.result.data.len()).sum::<usize>() / runs.len();
    println!(
        "Figure 5: bitrate-capping paired-link experiment \
         ({REPLICATIONS} seeds × ~{sessions} sessions, 5 days)\n"
    );
    let mut t = Table::new(vec![
        "metric",
        "naive 5% A/B",
        "naive 95% A/B",
        "TTE",
        "spillover",
        "sign flip",
    ]);
    for m in repro_bench::figure5_metrics() {
        let effects: Vec<MetricEffects> = runs
            .iter()
            .filter_map(|r| paired_link_effects(&r.result.data, m).ok())
            .collect();
        if effects.is_empty() {
            continue;
        }
        let col =
            |f: &dyn Fn(&MetricEffects) -> f64| ci_cell(&effects.iter().map(f).collect::<Vec<_>>());
        let flips = effects.iter().filter(|e| e.sign_flip()).count();
        t.row(vec![
            m.name().to_string(),
            col(&|e| e.naive_lo.relative),
            col(&|e| e.naive_hi.relative),
            col(&|e| e.tte.relative),
            col(&|e| e.spillover.relative),
            if flips * 2 > effects.len() {
                format!("YES ({flips}/{})", effects.len())
            } else if flips > 0 {
                format!("({flips}/{})", effects.len())
            } else {
                String::new()
            },
        ]);
    }
    println!("{}", t.render());
    println!("(paper: naive says throughput -5% / TTE +12%; min RTT naive +5..12% / TTE -24%)");
}
