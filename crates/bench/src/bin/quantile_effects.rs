//! §2 "Note on averages": quantile treatment effects from the paired
//! experiment — the median and tail analogues of Figure 5.
use expstats::table::{pct, pct_ci, Table};
use streamsim::session::Metric;
use unbiased::quantiles::paired_link_quantile_effects;

fn main() {
    let out = repro_bench::main_experiment(0.35, 5, 202).run();
    println!("Quantile treatment effects ({} sessions)\n", out.data.len());
    for metric in [Metric::Throughput, Metric::MinRtt, Metric::PlayDelay] {
        let mut t = Table::new(vec![
            "quantile",
            "naive 5%",
            "naive 95%",
            "TTE",
            "spillover",
        ]);
        for q in [0.5, 0.9, 0.99] {
            match paired_link_quantile_effects(&out.data, metric, q, 99) {
                Ok(e) => {
                    t.row(vec![
                        format!("p{:02.0}", q * 100.0),
                        pct(e.naive_lo.relative),
                        pct(e.naive_hi.relative),
                        format!("{} {}", pct(e.tte.relative), pct_ci(e.tte.ci95)),
                        pct(e.spillover.relative),
                    ]);
                }
                Err(err) => eprintln!("{}: {err}", metric.name()),
            }
        }
        println!("{} quantile effects:\n{}", metric.name(), t.render());
    }
}
