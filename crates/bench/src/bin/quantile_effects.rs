//! §2 "Note on averages": quantile treatment effects from the paired
//! experiment — the median and tail analogues of Figure 5, cross-seed
//! mean ± 95% CI through the shared figure harness.
use repro_bench::figharness::{self as fh, fmt_pct, FigureReport};
use repro_bench::SeedRun;
use streamsim::session::Metric;
use unbiased::quantiles::{paired_link_quantile_effects, QuantileEffects};

const REPLICATIONS: usize = 6;

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, REPLICATIONS);
    let sessions: usize = sweep
        .runs
        .iter()
        .map(|r| r.result.data.len())
        .sum::<usize>()
        / sweep.runs.len();
    let mut rep = FigureReport::new(
        "quantile_effects",
        format!("Quantile treatment effects (~{sessions} sessions per replication)"),
    )
    .seeds(sweep.replications());
    for metric in [Metric::Throughput, Metric::MinRtt, Metric::PlayDelay] {
        let t = rep.add_table(
            &format!("{} quantile effects", metric.name()),
            vec!["quantile", "naive 5%", "naive 95%", "TTE", "spillover"],
        );
        for q in [0.5, 0.9, 0.99] {
            // One bootstrap per (seed, metric, q); the four columns
            // extract fields from it.
            let effects: Vec<SeedRun<Result<QuantileEffects, String>>> = sweep
                .runs
                .iter()
                .map(|r| SeedRun {
                    seed: r.seed,
                    result: paired_link_quantile_effects(&r.result.data, metric, q, 99)
                        .map_err(|e| e.to_string()),
                })
                .collect();
            let col = |rep: &mut FigureReport, what: &str, f: fn(&QuantileEffects) -> f64| {
                rep.estimator_cell(
                    &effects,
                    &format!("{what}/{} p{:02.0}", metric.name(), q * 100.0),
                    fmt_pct,
                    move |e| e.as_ref().map(f).map_err(Clone::clone),
                )
            };
            let naive_lo = col(&mut rep, "naive 5%", |e| e.naive_lo.relative);
            let naive_hi = col(&mut rep, "naive 95%", |e| e.naive_hi.relative);
            let tte = col(&mut rep, "TTE", |e| e.tte.relative);
            let spill = col(&mut rep, "spillover", |e| e.spillover.relative);
            rep.row(
                t,
                format!("p{:02.0}", q * 100.0),
                vec![naive_lo, naive_hi, tte, spill],
            );
        }
    }
    rep.note("(medians and tails can move differently from the mean under capping)");
    rep.emit();
}
