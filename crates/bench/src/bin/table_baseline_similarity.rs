//! §4.1 baseline-similarity check: a no-treatment week on both links.
use expstats::table::{pct, Table};
use streamsim::scenario::AllocationSchedule;
use streamsim::session::LinkId;
use streamsim::sim::PairedSim;
use unbiased::analysis::unit_effect;
use unbiased::dataset::Dataset;

fn main() {
    let cfg = repro_bench::paired_config(0.35, 5);
    let paired = PairedSim::with_paper_biases(
        cfg,
        [AllocationSchedule::none(), AllocationSchedule::none()],
        101,
    );
    let run = paired.run();
    let data = Dataset::new(run.sessions);
    let l1 = data.filter(|r| r.link == LinkId::One);
    let l2 = data.filter(|r| r.link == LinkId::Two);
    println!(
        "Baseline week: {} sessions on link 1 ({:.1}%), {} on link 2\n",
        l1.len(),
        100.0 * l1.len() as f64 / data.len() as f64,
        l2.len()
    );
    let mut t = Table::new(vec!["metric", "link1 vs link2", "95% CI", "significant"]);
    for m in repro_bench::figure5_metrics() {
        let base = Dataset::mean(&l2, m);
        if let Ok(e) = unit_effect(m, &l1, &l2, base) {
            t.row(vec![
                m.name().to_string(),
                pct(e.relative),
                expstats::table::pct_ci(e.ci95),
                if e.significant() {
                    "yes".into()
                } else {
                    String::new()
                },
            ]);
        }
    }
    println!("{}", t.render());
    println!("(paper: +5% bytes, +20% sessions-with-rebuffers on link 1; most others n.s.)");
}
