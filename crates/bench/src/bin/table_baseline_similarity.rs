//! §4.1 baseline-similarity check: no-treatment weeks on both links —
//! link-1-vs-link-2 contrasts as cross-seed mean ± 95% CI, plus how
//! often each contrast reads as significant across replications.
use repro_bench::figharness::{self as fh, fmt_pct, FigCell, FigureReport};
use repro_bench::SeedRun;
use streamsim::session::LinkId;
use unbiased::analysis::unit_effect;
use unbiased::dataset::Dataset;

fn main() {
    let (runs, _days) = fh::baseline_sweep(0.35, 5, 101, 8);
    // Convert each replication to a Dataset once; every metric's
    // estimator borrows from these.
    let runs: Vec<SeedRun<Dataset>> = runs
        .into_iter()
        .map(|r| SeedRun {
            seed: r.seed,
            result: Dataset::new(r.result.0),
        })
        .collect();
    let sessions: usize = runs.iter().map(|r| r.result.len()).sum::<usize>() / runs.len();
    let l1_share: f64 = runs
        .iter()
        .map(|r| r.result.filter(|s| s.link == LinkId::One).len() as f64 / r.result.len() as f64)
        .sum::<f64>()
        / runs.len() as f64;
    let mut rep = FigureReport::new(
        "table_baseline_similarity",
        format!(
            "Baseline week: ~{sessions} sessions per replication, {:.1}% on link 1",
            100.0 * l1_share
        ),
    )
    .seeds(runs.len());
    let t = rep.add_table("", vec!["metric", "link1 vs link2", "significant"]);
    for m in repro_bench::figure5_metrics() {
        // One estimator pass per seed; the CI cell and the significance
        // tally both read from it.
        let effects: Vec<SeedRun<Result<_, String>>> = runs
            .iter()
            .map(|r| {
                let l1 = r.result.filter(|s| s.link == LinkId::One);
                let l2 = r.result.filter(|s| s.link == LinkId::Two);
                SeedRun {
                    seed: r.seed,
                    result: unit_effect(m, &l1, &l2, Dataset::mean(&l2, m))
                        .map_err(|e| e.to_string()),
                }
            })
            .collect();
        let ok_effects = || effects.iter().filter_map(|r| r.result.as_ref().ok());
        let estimable = ok_effects().count();
        let significant = ok_effects().filter(|e| e.significant()).count();
        let cell = rep.estimator_cell(&effects, m.name(), fmt_pct, |e| {
            e.as_ref().map(|e| e.relative).map_err(Clone::clone)
        });
        rep.row(
            t,
            m.name(),
            vec![cell, FigCell::text(format!("{significant}/{estimable}"))],
        );
    }
    rep.note("(paper: +5% bytes, +20% sessions-with-rebuffers on link 1; most others n.s.)");
    rep.emit();
}
