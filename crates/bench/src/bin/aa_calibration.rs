//! §5.3 A/A calibration: run no-treatment weeks, apply switchback and
//! event-study labelings, count false positives — replicated across
//! seeds via the shared figure harness so the false-positive *rates*
//! (not one week's luck) are reported.
use causal::assignment::SwitchbackPlan;
use repro_bench::figharness::{self as fh, FigureReport};
use repro_bench::FigCell;
use unbiased::dataset::Dataset;
use unbiased::designs::aa_scan;

fn main() {
    let replications: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let (runs, days) = fh::baseline_sweep(0.35, 5, 404, replications);
    let metrics = repro_bench::figure5_metrics();
    let plan = SwitchbackPlan::alternating(days, true);
    let switch_day = 2.min(days - 1);

    let scans: Vec<_> = runs
        .into_iter()
        .map(|r| {
            let data = Dataset::new(r.result.0);
            let sessions = data.len();
            (aa_scan(&data, &plan, switch_day, &metrics), sessions)
        })
        .collect();
    let sessions: usize = scans.iter().map(|(_, s)| s).sum::<usize>() / scans.len().max(1);
    let mut rep = FigureReport::new(
        "aa_calibration",
        format!(
            "A/A calibration over {} metrics (~{sessions} sessions per no-treatment week)",
            metrics.len()
        ),
    )
    .seeds(scans.len());
    if scans.is_empty() {
        rep.warn("0 replications requested; nothing to aggregate");
        rep.emit();
        return;
    }
    let t = rep.add_table(
        "false-positive rate per metric",
        vec!["metric", "switchback", "event study"],
    );
    for m in &metrics {
        let sw = scans
            .iter()
            .filter(|(s, _)| s.switchback_false_positives.contains(m))
            .count();
        let ev = scans
            .iter()
            .filter(|(s, _)| s.event_study_false_positives.contains(m))
            .count();
        let rate = |k: usize| {
            FigCell::value(
                k as f64 / scans.len() as f64,
                format!(
                    "{:.0}% ({k}/{})",
                    100.0 * k as f64 / scans.len() as f64,
                    scans.len()
                ),
            )
        };
        rep.row(t, m.name(), vec![rate(sw), rate(ev)]);
    }
    rep.note(
        "(paper: no switchback false positives; event studies false-positive on most metrics)",
    );
    rep.emit();
}
