//! §5.3 A/A calibration: run no-treatment weeks, apply switchback and
//! event-study labelings, count false positives.
//!
//! Replicated across seeds via the parallel scenario runner so the
//! false-positive *rates* (not one week's luck) are reported.
use causal::assignment::SwitchbackPlan;
use streamsim::scenario::AllocationSchedule;
use streamsim::sim::PairedSim;
use unbiased::dataset::Dataset;
use unbiased::designs::aa_scan;

fn main() {
    let replications: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let cfg = repro_bench::paired_config(0.35, 5);
    let metrics = repro_bench::figure5_metrics();
    let plan = SwitchbackPlan::alternating(5, true);

    let runs = repro_bench::Runner::new().sweep_root(&cfg, 404, replications, |cfg, seed| {
        let run = PairedSim::with_paper_biases(
            cfg.clone(),
            [AllocationSchedule::none(), AllocationSchedule::none()],
            seed,
        )
        .run();
        let data = Dataset::new(run.sessions);
        let scan = aa_scan(&data, &plan, 2, &metrics);
        (scan, data.len())
    });

    println!(
        "A/A calibration over {} metrics, {} replications:\n",
        metrics.len(),
        runs.len()
    );
    let mut sw_counts = vec![0usize; metrics.len()];
    let mut ev_counts = vec![0usize; metrics.len()];
    for r in &runs {
        let (scan, sessions) = &r.result;
        println!(
            "seed {:>20x} ({sessions} sessions): switchback FPs {:?}, event-study FPs {:?}",
            r.seed,
            scan.switchback_false_positives
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>(),
            scan.event_study_false_positives
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
        );
        for (i, m) in metrics.iter().enumerate() {
            sw_counts[i] += scan.switchback_false_positives.contains(m) as usize;
            ev_counts[i] += scan.event_study_false_positives.contains(m) as usize;
        }
    }
    println!("\nfalse-positive rate per metric (switchback | event study):");
    for (i, m) in metrics.iter().enumerate() {
        println!(
            "  {:<24} {:>4.0}% | {:>4.0}%",
            m.name(),
            100.0 * sw_counts[i] as f64 / runs.len() as f64,
            100.0 * ev_counts[i] as f64 / runs.len() as f64
        );
    }
    println!(
        "\n(paper: no switchback false positives; event studies false-positive on most metrics)"
    );
}
