//! §5.3 A/A calibration: run a no-treatment week, apply switchback and
//! event-study labelings, count false positives.
use causal::assignment::SwitchbackPlan;
use streamsim::scenario::AllocationSchedule;
use streamsim::sim::PairedSim;
use unbiased::dataset::Dataset;
use unbiased::designs::aa_scan;

fn main() {
    let cfg = repro_bench::paired_config(0.35, 5);
    let run = PairedSim::with_paper_biases(
        cfg,
        [AllocationSchedule::none(), AllocationSchedule::none()],
        404,
    )
    .run();
    let data = Dataset::new(run.sessions);
    let metrics = repro_bench::figure5_metrics();
    let plan = SwitchbackPlan::alternating(5, true);
    let scan = aa_scan(&data, &plan, 2, &metrics);
    println!("A/A calibration over {} metrics ({} sessions):\n", metrics.len(), data.len());
    println!(
        "switchback false positives:  {} {:?}",
        scan.switchback_false_positives.len(),
        scan.switchback_false_positives.iter().map(|m| m.name()).collect::<Vec<_>>()
    );
    println!(
        "event-study false positives: {} {:?}",
        scan.event_study_false_positives.len(),
        scan.event_study_false_positives.iter().map(|m| m.name()).collect::<Vec<_>>()
    );
    println!("\n(paper: no switchback false positives; event studies false-positive on most metrics)");
}
