//! Figure 2a: applications using one or two parallel TCP connections.
//! Every A/B test shows ~+100% throughput for two connections; the TTE
//! for throughput is ~0 while retransmissions worsen.
//!
//! The eleven k-scenarios are independent simulations, so they run
//! through the parallel scenario runner; output flows through the
//! shared figure harness (one lab world per k — the cross-k contrast,
//! not cross-seed variability, is this figure's point).
use expstats::table::pct;
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::figharness::{self as fh, FigCell, FigureReport};
use repro_bench::{lab_config, mixed_apps, Runner};

fn main() {
    let ks: Vec<usize> = (0..=10).collect();
    let results = Runner::new().map(&ks, |&k| {
        let apps = mixed_apps(10, k, |treated| AppConfig {
            connections: if treated { 2 } else { 1 },
            cc: CcKind::Reno,
            paced: false,
            pacing_ca_factor: 1.2,
        });
        let mut cfg = lab_config(apps, 40 + k as u64);
        fh::quicken_lab(&mut cfg);
        run_dumbbell(&cfg).unwrap()
    });

    let mut rep = FigureReport::new(
        "fig2a",
        "Figure 2a: 10 apps, k use two Reno connections, 200 Mb/s dumbbell",
    );
    let t = rep.add_table(
        "",
        vec![
            "k treated",
            "tput 2-conn (M)",
            "tput 1-conn (M)",
            "A/B contrast",
            "retx 2c",
            "retx 1c",
        ],
    );
    let mut tput_ends = (0.0, 0.0);
    let mut retx_ends = (0.0, 0.0);
    for (&k, res) in ks.iter().zip(&results) {
        let mt = repro_bench::app_mean(&res.apps[..k], |a| a.throughput_bps);
        let mc = repro_bench::app_mean(&res.apps[k..], |a| a.throughput_bps);
        let rt = repro_bench::app_mean(&res.apps[..k], |a| a.retx_fraction);
        let rc = repro_bench::app_mean(&res.apps[k..], |a| a.retx_fraction);
        if k == 0 {
            tput_ends.0 = mc;
            retx_ends.0 = rc;
        }
        if k == 10 {
            tput_ends.1 = mt;
            retx_ends.1 = rt;
        }
        let contrast = if mt.is_finite() && mc.is_finite() {
            FigCell::value(mt / mc - 1.0, pct(mt / mc - 1.0))
        } else {
            FigCell::missing()
        };
        rep.row(
            t,
            format!("{k}"),
            vec![
                FigCell::value(mt, format!("{:.1}", mt / 1e6)),
                FigCell::value(mc, format!("{:.1}", mc / 1e6)),
                contrast,
                FigCell::value(rt, format!("{rt:.4}")),
                FigCell::value(rc, format!("{rc:.4}")),
            ],
        );
    }
    let t2 = rep.add_table(
        "total treatment effects (k=10 vs k=0)",
        vec!["metric", "TTE"],
    );
    let tte_t = tput_ends.1 / tput_ends.0 - 1.0;
    let tte_r = retx_ends.1 / retx_ends.0 - 1.0;
    rep.row(t2, "throughput", vec![FigCell::value(tte_t, pct(tte_t))]);
    rep.row(t2, "retransmits", vec![FigCell::value(tte_r, pct(tte_r))]);
    rep.note("(paper: A/B says +100% tput at every k; TTE tput = 0, retx rise sharply)");
    rep.emit();
}
