//! Figure 2a: applications using one or two parallel TCP connections.
//! Every A/B test shows ~+100% throughput for two connections; the TTE
//! for throughput is ~0 while retransmissions worsen.
//!
//! The eleven k-scenarios are independent simulations, so they run
//! through the parallel scenario runner.
use expstats::table::{pct, Table};
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::{lab_config, mixed_apps, Runner};

fn main() {
    println!("Figure 2a: 10 apps, k use two Reno connections, 200 Mb/s dumbbell\n");
    let ks: Vec<usize> = (0..=10).collect();
    let results = Runner::new().map(&ks, |&k| {
        let apps = mixed_apps(10, k, |treated| AppConfig {
            connections: if treated { 2 } else { 1 },
            cc: CcKind::Reno,
            paced: false,
            pacing_ca_factor: 1.2,
        });
        run_dumbbell(&lab_config(apps, 40 + k as u64)).unwrap()
    });

    let mut t = Table::new(vec![
        "k treated",
        "tput 2-conn (M)",
        "tput 1-conn (M)",
        "A/B contrast",
        "retx 2c",
        "retx 1c",
    ]);
    let mut tput_all_control = 0.0;
    let mut tput_all_treated = 0.0;
    let mut retx_ends = (0.0, 0.0);
    for (&k, res) in ks.iter().zip(&results) {
        let treat: Vec<_> = res.apps[..k].iter().collect();
        let ctrl: Vec<_> = res.apps[k..].iter().collect();
        let mt = if k > 0 {
            treat.iter().map(|a| a.throughput_bps).sum::<f64>() / k as f64
        } else {
            f64::NAN
        };
        let mc = if k < 10 {
            ctrl.iter().map(|a| a.throughput_bps).sum::<f64>() / (10 - k) as f64
        } else {
            f64::NAN
        };
        let rt = if k > 0 {
            treat.iter().map(|a| a.retx_fraction).sum::<f64>() / k as f64
        } else {
            f64::NAN
        };
        let rc = if k < 10 {
            ctrl.iter().map(|a| a.retx_fraction).sum::<f64>() / (10 - k) as f64
        } else {
            f64::NAN
        };
        if k == 0 {
            tput_all_control = mc;
            retx_ends.0 = rc;
        }
        if k == 10 {
            tput_all_treated = mt;
            retx_ends.1 = rt;
        }
        t.row(vec![
            format!("{k}"),
            format!("{:.1}", mt / 1e6),
            format!("{:.1}", mc / 1e6),
            if mt.is_finite() && mc.is_finite() {
                pct(mt / mc - 1.0)
            } else {
                "-".into()
            },
            format!("{rt:.4}"),
            format!("{rc:.4}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "TTE(throughput)  = {}",
        pct(tput_all_treated / tput_all_control - 1.0)
    );
    println!(
        "TTE(retransmits) = {}",
        pct(retx_ends.1 / retx_ends.0 - 1.0)
    );
    println!("(paper: A/B says +100% tput at every k; TTE tput = 0, retx rise sharply)");
}
