//! §5.1: a gradual deployment instrumented as an event-study sequence —
//! per-stage naive ATEs plus the interference diagnostics, replicated
//! across seeds through the shared figure harness.
use repro_bench::figharness::{self as fh, fmt_pct, FigCell, FigureReport};
use repro_bench::{derive_seeds, Runner};
use streamsim::session::Metric;
use unbiased::designs::GradualDeployment;

const REPLICATIONS: usize = 6;

fn main() {
    let full_stages = [0.02, 0.10, 0.30, 0.50, 0.75, 0.95];
    // Quick mode shortens the horizon; the deployment needs one day per
    // stage, so the stage ladder is truncated with it.
    let days = fh::stream_days(full_stages.len());
    let stages = &full_stages[..days];
    let mut cfg = repro_bench::paired_config(fh::stream_scale(0.35), days);
    cfg.days = days;
    let seeds = derive_seeds(777, fh::replications(REPLICATIONS));

    let mut rep = FigureReport::new(
        "sec5_gradual_deployment",
        format!("Gradual deployment over {days} stages, instrumented per §5.1"),
    )
    .seeds(seeds.len());
    for metric in [Metric::Throughput, Metric::Bitrate] {
        let runs = Runner::new().sweep(&cfg, &seeds, |cfg, seed| {
            GradualDeployment {
                cfg: cfg.clone(),
                stages: stages.to_vec(),
                seed,
            }
            .run_and_diagnose(metric)
            .map_err(|e| e.to_string())
        });
        let t = rep.add_table(
            &format!("{} — within-stage ATE", metric.name()),
            vec!["allocation", "ATE", "estimable"],
        );
        for &p in stages {
            if p <= 0.0 || p >= 1.0 {
                continue; // no contrast within this stage
            }
            let mut estimable = 0usize;
            let cell = rep.estimator_cell(
                &runs,
                &format!("{}/allocation {:.0}%", metric.name(), p * 100.0),
                fmt_pct,
                |r| {
                    let (stages, _) = r.as_ref().map_err(Clone::clone)?;
                    stages
                        .iter()
                        .find(|s| (s.allocation - p).abs() < 1e-9)
                        .map(|s| s.ate.relative)
                        .ok_or_else(|| "stage not estimable (too few sessions)".to_string())
                },
            );
            for r in &runs {
                if let Ok((stages, _)) = &r.result {
                    estimable += stages.iter().any(|s| (s.allocation - p).abs() < 1e-9) as usize;
                }
            }
            rep.row(
                t,
                format!("{:.0}%", p * 100.0),
                vec![
                    cell,
                    FigCell::text(format!("{estimable}/{} seeds", runs.len())),
                ],
            );
        }
        let detected = runs
            .iter()
            .filter(|r| {
                r.result
                    .as_ref()
                    .is_ok_and(|(_, rep)| rep.interference_detected())
            })
            .count();
        let trend_p = rep.metric_cell(
            &runs,
            &format!("{}/trend p", metric.name()),
            |c| format!("{:.4} ({:.4}..{:.4})", c.mean, c.ci.0, c.ci.1),
            |r| {
                r.as_ref()
                    .ok()
                    .and_then(|(_, rep)| rep.trend.as_ref())
                    .map_or(f64::NAN, |tr| tr.p_value)
            },
        );
        let t2 = rep.add_table(
            &format!("{} — interference diagnostics", metric.name()),
            vec!["diagnostic", "value"],
        );
        rep.row(
            t2,
            "interference detected",
            vec![FigCell::text(format!("{detected}/{} seeds", runs.len()))],
        );
        rep.row(t2, "trend p-value", vec![trend_p]);
    }
    rep.note("(§5.1: a sloped ATE-vs-allocation curve is the interference signature)");
    rep.emit();
}
