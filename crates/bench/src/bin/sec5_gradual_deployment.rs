//! §5.1: a gradual deployment instrumented as an event-study sequence —
//! per-stage naive ATEs plus the interference diagnostics.
use expstats::table::{pct, pct_ci, Table};
use streamsim::session::Metric;
use unbiased::designs::GradualDeployment;

fn main() {
    let mut cfg = repro_bench::paired_config(0.35, 6);
    cfg.days = 6;
    let dep = GradualDeployment {
        cfg,
        stages: vec![0.02, 0.10, 0.30, 0.50, 0.75, 0.95],
        seed: 777,
    };
    for metric in [Metric::Throughput, Metric::Bitrate] {
        let (stages, report) = dep.run_and_diagnose(metric).expect("estimable");
        println!("Gradual deployment — {}\n", metric.name());
        let mut t = Table::new(vec!["allocation", "within-stage ATE", "95% CI"]);
        for s in &stages {
            t.row(vec![
                format!("{:.0}%", s.allocation * 100.0),
                pct(s.ate.relative),
                pct_ci(s.ate.ci95),
            ]);
        }
        println!("{}", t.render());
        println!(
            "interference detected: {} (trend p = {:.4})\n",
            report.interference_detected(),
            report.trend.as_ref().map_or(f64::NAN, |tr| tr.p_value)
        );
    }
    println!("(§5.1: a sloped ATE-vs-allocation curve is the interference signature)");
}
