//! Ablation: the BBR/Cubic coexistence regime vs bottleneck buffer depth
//! (the Figure 3 parameter choice documented in EXPERIMENTS.md) — each
//! buffer depth replicated across seeds (cross-seed mean ± 95% CI) via
//! the grid sweep on the parallel runner.
use expstats::table::pct;
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::figharness::{self as fh, fmt_scaled, FigureReport};
use repro_bench::{derive_seeds, lab_config, mixed_apps, Runner, SeedCi};

const REPLICATIONS: usize = 5;

/// One replication at one buffer depth: both minority-arm advantages
/// plus all-BBR utilization.
struct BufferRun {
    bbr_minority_adv: f64,
    cubic_minority_adv: f64,
    all_bbr_util: f64,
}

fn main() {
    let bufs = [0.5, 1.0, 2.0, 4.0];
    let seeds = derive_seeds(3, fh::replications(REPLICATIONS));
    let grid = Runner::new().sweep_grid(&bufs, &seeds, |&buf, seed| {
        let run = |k: usize| {
            let apps = mixed_apps(10, k, |treated| {
                AppConfig::plain(if treated { CcKind::Bbr } else { CcKind::Cubic })
            });
            let mut cfg = lab_config(apps, seed);
            fh::quicken_lab(&mut cfg);
            cfg.buffer_bdp = buf;
            run_dumbbell(&cfg).unwrap()
        };
        let r1 = run(1);
        let bbr1 = r1.apps[0].throughput_bps;
        let cubic9: f64 = r1.apps[1..].iter().map(|a| a.throughput_bps).sum::<f64>() / 9.0;
        let r9 = run(9);
        let bbr9: f64 = r9.apps[..9].iter().map(|a| a.throughput_bps).sum::<f64>() / 9.0;
        let cubic1 = r9.apps[9].throughput_bps;
        let rall = run(10);
        BufferRun {
            bbr_minority_adv: bbr1 / cubic9 - 1.0,
            cubic_minority_adv: cubic1 / bbr9 - 1.0,
            all_bbr_util: rall.total_throughput_bps() / 200e6,
        }
    });
    let mut rep = FigureReport::new(
        "ablation_fig3_buffer",
        "Ablation: minority-arm advantage vs buffer depth (10 flows)",
    )
    .seeds(seeds.len());
    let t = rep.add_table(
        "",
        vec![
            "buffer (BDP)",
            "1 BBR vs 9 Cubic",
            "1 Cubic vs 9 BBR",
            "all-BBR util",
        ],
    );
    let fmt_adv = |c: &SeedCi| format!("{} ({}..{})", pct(c.mean), pct(c.ci.0), pct(c.ci.1));
    for (&buf, runs) in bufs.iter().zip(&grid) {
        let bbr = rep.metric_cell(runs, &format!("1 BBR vs 9 Cubic/buf {buf}"), fmt_adv, |r| {
            r.bbr_minority_adv
        });
        let cubic = rep.metric_cell(runs, &format!("1 Cubic vs 9 BBR/buf {buf}"), fmt_adv, |r| {
            r.cubic_minority_adv
        });
        let util = rep.metric_cell(
            runs,
            &format!("all-BBR util/buf {buf}"),
            fmt_scaled(1.0, 2),
            |r| r.all_bbr_util,
        );
        rep.row(t, format!("{buf}"), vec![bbr, cubic, util]);
    }
    rep.note("(both minority columns positive = the paper's Figure 3 regime)");
    rep.emit();
}
