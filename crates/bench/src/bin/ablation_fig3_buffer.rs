//! Ablation: the BBR/Cubic coexistence regime vs bottleneck buffer depth
//! (the Figure 3 parameter choice documented in EXPERIMENTS.md).
use expstats::table::Table;
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::{lab_config, mixed_apps};

fn main() {
    println!("Ablation: minority-arm advantage vs buffer depth (10 flows)\n");
    let mut t = Table::new(vec![
        "buffer (BDP)",
        "1 BBR vs 9 Cubic",
        "1 Cubic vs 9 BBR",
        "all-BBR util",
    ]);
    for buf in [0.5, 1.0, 2.0, 4.0] {
        let run = |k: usize, seed: u64| {
            let apps = mixed_apps(10, k, |treated| {
                AppConfig::plain(if treated { CcKind::Bbr } else { CcKind::Cubic })
            });
            let mut cfg = lab_config(apps, seed);
            cfg.buffer_bdp = buf;
            run_dumbbell(&cfg).unwrap()
        };
        let r1 = run(1, 3);
        let bbr1 = r1.apps[0].throughput_bps;
        let cubic9: f64 = r1.apps[1..].iter().map(|a| a.throughput_bps).sum::<f64>() / 9.0;
        let r9 = run(9, 3);
        let bbr9: f64 = r9.apps[..9].iter().map(|a| a.throughput_bps).sum::<f64>() / 9.0;
        let cubic1 = r9.apps[9].throughput_bps;
        let rall = run(10, 3);
        let util = rall.total_throughput_bps() / 200e6;
        t.row(vec![
            format!("{buf}"),
            format!("{:+.0}%", 100.0 * (bbr1 / cubic9 - 1.0)),
            format!("{:+.0}%", 100.0 * (cubic1 / bbr9 - 1.0)),
            format!("{:.2}", util),
        ]);
    }
    println!("{}", t.render());
    println!("(both minority columns positive = the paper's Figure 3 regime)");
}
