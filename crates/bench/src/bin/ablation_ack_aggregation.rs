//! Ablation: receiver ACK aggregation (GRO burst size) vs the pacing
//! arm gap — the mechanism sweep behind the Figure 2b sign discussion.
use expstats::table::Table;
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::{lab_config, mixed_apps};

fn main() {
    println!("Ablation: paced/unpaced throughput ratio vs ACK aggregation (5v5 Cubic)\n");
    let mut t = Table::new(vec!["ack aggregation", "paced (M)", "unpaced (M)", "ratio"]);
    for agg in [1u32, 2, 4, 8, 16, 32] {
        let apps = mixed_apps(10, 5, |treated| AppConfig {
            connections: 1,
            cc: CcKind::Cubic,
            paced: treated,
            pacing_ca_factor: 1.2,
        });
        let mut cfg = lab_config(apps, 5);
        cfg.ack_aggregation = agg;
        let res = run_dumbbell(&cfg).unwrap();
        let p: f64 = res.apps[..5].iter().map(|a| a.throughput_bps).sum::<f64>() / 5.0;
        let u: f64 = res.apps[5..].iter().map(|a| a.throughput_bps).sum::<f64>() / 5.0;
        t.row(vec![
            format!("{agg}"),
            format!("{:.1}", p / 1e6),
            format!("{:.1}", u / 1e6),
            format!("{:.2}", p / u),
        ]);
    }
    println!("{}", t.render());
    println!("(the paper's -50% paced deficit does not re-emerge at any burst size\n with SACK/RACK recovery; see EXPERIMENTS.md for the full discussion)");
}
