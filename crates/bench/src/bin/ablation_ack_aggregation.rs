//! Ablation: receiver ACK aggregation (GRO burst size) vs the pacing
//! arm gap — the mechanism sweep behind the Figure 2b sign discussion,
//! now replicated across seeds (cross-seed mean ± 95% CI per burst
//! size) via the grid sweep on the parallel runner.
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::figharness::{self as fh, fmt_scaled, FigureReport};
use repro_bench::{derive_seeds, lab_config, mixed_apps, Runner};

const REPLICATIONS: usize = 5;

fn main() {
    let aggs = [1u32, 2, 4, 8, 16, 32];
    let seeds = derive_seeds(5, fh::replications(REPLICATIONS));
    let grid = Runner::new().sweep_grid(&aggs, &seeds, |&agg, seed| {
        let apps = mixed_apps(10, 5, |treated| AppConfig {
            connections: 1,
            cc: CcKind::Cubic,
            paced: treated,
            pacing_ca_factor: 1.2,
        });
        let mut cfg = lab_config(apps, seed);
        fh::quicken_lab(&mut cfg);
        cfg.ack_aggregation = agg;
        let res = run_dumbbell(&cfg).unwrap();
        let p: f64 = res.apps[..5].iter().map(|a| a.throughput_bps).sum::<f64>() / 5.0;
        let u: f64 = res.apps[5..].iter().map(|a| a.throughput_bps).sum::<f64>() / 5.0;
        (p, u)
    });
    let mut rep = FigureReport::new(
        "ablation_ack_aggregation",
        "Ablation: paced/unpaced throughput ratio vs ACK aggregation (5v5 Cubic)",
    )
    .seeds(seeds.len());
    let t = rep.add_table(
        "",
        vec!["ack aggregation", "paced (M)", "unpaced (M)", "ratio"],
    );
    for (&agg, runs) in aggs.iter().zip(&grid) {
        let paced = rep.metric_cell(
            runs,
            &format!("paced/agg {agg}"),
            fmt_scaled(1e-6, 1),
            |&(p, _)| p,
        );
        let unpaced = rep.metric_cell(
            runs,
            &format!("unpaced/agg {agg}"),
            fmt_scaled(1e-6, 1),
            |&(_, u)| u,
        );
        let ratio = rep.metric_cell(
            runs,
            &format!("ratio/agg {agg}"),
            fmt_scaled(1.0, 2),
            |&(p, u)| p / u,
        );
        rep.row(t, format!("{agg}"), vec![paced, unpaced, ratio]);
    }
    rep.note(
        "(the paper's -50% paced deficit does not re-emerge at any burst size\n \
         with SACK/RACK recovery; see EXPERIMENTS.md for the full discussion)",
    );
    rep.emit();
}
