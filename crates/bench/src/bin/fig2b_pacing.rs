//! Figure 2b: paced vs unpaced connections. Every A/B test shows a large
//! persistent contrast between arms while the TTE is ~0 — the bias the
//! paper demonstrates. (Sign caveat: see EXPERIMENTS.md; our SACK/RACK
//! transport model does not reproduce the *direction* of the pacing
//! penalty the paper measured on hardware.)
//!
//! The eleven k-scenarios run through the parallel scenario runner;
//! output flows through the shared figure harness.
use expstats::table::pct;
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::figharness::{self as fh, FigCell, FigureReport};
use repro_bench::{lab_config, mixed_apps, Runner};

fn main() {
    let ks: Vec<usize> = (0..=10).collect();
    let results = Runner::new().map(&ks, |&k| {
        let apps = mixed_apps(10, k, |treated| AppConfig {
            connections: 1,
            cc: CcKind::Cubic,
            paced: treated,
            pacing_ca_factor: 1.2,
        });
        let mut cfg = lab_config(apps, 60 + k as u64);
        fh::quicken_lab(&mut cfg);
        run_dumbbell(&cfg).unwrap()
    });

    let mut rep = FigureReport::new(
        "fig2b",
        "Figure 2b: 10 Cubic connections, k paced (Linux fq-style), 200 Mb/s",
    );
    let t = rep.add_table(
        "",
        vec![
            "k paced",
            "tput paced (M)",
            "tput unpaced (M)",
            "A/B contrast",
            "retx p",
            "retx u",
        ],
    );
    let mut ends = (0.0, 0.0);
    let mut retx_ends = (0.0, 0.0);
    for (&k, res) in ks.iter().zip(&results) {
        let mt = repro_bench::app_mean(&res.apps[..k], |a| a.throughput_bps);
        let mc = repro_bench::app_mean(&res.apps[k..], |a| a.throughput_bps);
        let rt = repro_bench::app_mean(&res.apps[..k], |a| a.retx_fraction);
        let rc = repro_bench::app_mean(&res.apps[k..], |a| a.retx_fraction);
        if k == 0 {
            ends.0 = mc;
            retx_ends.0 = rc;
        }
        if k == 10 {
            ends.1 = mt;
            retx_ends.1 = rt;
        }
        let contrast = if mt.is_finite() && mc.is_finite() {
            FigCell::value(mt / mc - 1.0, pct(mt / mc - 1.0))
        } else {
            FigCell::missing()
        };
        rep.row(
            t,
            format!("{k}"),
            vec![
                FigCell::value(mt, format!("{:.1}", mt / 1e6)),
                FigCell::value(mc, format!("{:.1}", mc / 1e6)),
                contrast,
                FigCell::value(rt, format!("{rt:.4}")),
                FigCell::value(rc, format!("{rc:.4}")),
            ],
        );
    }
    let t2 = rep.add_table(
        "total treatment effects (k=10 vs k=0)",
        vec!["metric", "TTE"],
    );
    let tte_t = ends.1 / ends.0 - 1.0;
    let tte_r = retx_ends.1 / retx_ends.0 - 1.0;
    rep.row(t2, "throughput", vec![FigCell::value(tte_t, pct(tte_t))]);
    rep.row(t2, "retransmits", vec![FigCell::value(tte_r, pct(tte_r))]);
    rep.note("(paper: persistent A/B contrast at every k while the TTE stays ~0)");
    rep.emit();
}
