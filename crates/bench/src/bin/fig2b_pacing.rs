//! Figure 2b: paced vs unpaced connections. Every A/B test shows a large
//! persistent contrast between arms while the TTE is ~0 — the bias the
//! paper demonstrates. (Sign caveat: see EXPERIMENTS.md; our SACK/RACK
//! transport model does not reproduce the *direction* of the pacing
//! penalty the paper measured on hardware.)
use expstats::table::{pct, Table};
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::{lab_config, mixed_apps};

fn main() {
    println!("Figure 2b: 10 Cubic connections, k paced (Linux fq-style), 200 Mb/s\n");
    let mut t = Table::new(vec![
        "k paced",
        "tput paced (M)",
        "tput unpaced (M)",
        "A/B contrast",
        "retx p",
        "retx u",
    ]);
    let (mut ends, mut retx_ends) = ((0.0, 0.0), (0.0, 0.0));
    for k in 0..=10 {
        let apps = mixed_apps(10, k, |treated| AppConfig {
            connections: 1,
            cc: CcKind::Cubic,
            paced: treated,
            pacing_ca_factor: 1.2,
        });
        let res = run_dumbbell(&lab_config(apps, 60 + k as u64)).unwrap();
        let mt = if k > 0 {
            res.apps[..k].iter().map(|a| a.throughput_bps).sum::<f64>() / k as f64
        } else {
            f64::NAN
        };
        let mc = if k < 10 {
            res.apps[k..].iter().map(|a| a.throughput_bps).sum::<f64>() / (10 - k) as f64
        } else {
            f64::NAN
        };
        let rt = if k > 0 {
            res.apps[..k].iter().map(|a| a.retx_fraction).sum::<f64>() / k as f64
        } else {
            f64::NAN
        };
        let rc = if k < 10 {
            res.apps[k..].iter().map(|a| a.retx_fraction).sum::<f64>() / (10 - k) as f64
        } else {
            f64::NAN
        };
        if k == 0 {
            ends.0 = mc;
            retx_ends.0 = rc;
        }
        if k == 10 {
            ends.1 = mt;
            retx_ends.1 = rt;
        }
        t.row(vec![
            format!("{k}"),
            format!("{:.1}", mt / 1e6),
            format!("{:.1}", mc / 1e6),
            if mt.is_finite() && mc.is_finite() {
                pct(mt / mc - 1.0)
            } else {
                "-".into()
            },
            format!("{rt:.4}"),
            format!("{rc:.4}"),
        ]);
    }
    println!("{}", t.render());
    println!("TTE(throughput)  = {}", pct(ends.1 / ends.0 - 1.0));
    println!(
        "TTE(retransmits) = {}",
        pct(retx_ends.1 / retx_ends.0 - 1.0)
    );
    println!("(paper: every A/B is biased vs TTE ~ 0; their arm gap was -50% for paced)");
}
