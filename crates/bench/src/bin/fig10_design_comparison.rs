//! Figure 10: TTE per metric as estimated by the paired-link design, an
//! emulated switchback, and an emulated event study — cross-seed mean ±
//! 95% CI over replications instead of one world, with estimator
//! failures named in the warnings section instead of silently dropping
//! the metric's row.
use causal::assignment::SwitchbackPlan;
use repro_bench::figharness::{self as fh, fmt_pct, FigureReport};
use unbiased::designs::{event_study_emulation, paired_link_effects, switchback_emulation};

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, 8);
    // Treatment on days 1, 3, 5 (paper's Figure 12); event switch
    // Thu->Fri (day 2 of the Wed-aligned run), clamped under quick mode
    // so the post-switch window stays non-empty.
    let plan = SwitchbackPlan::alternating(sweep.days, true);
    let switch_day = 2.min(sweep.days - 1);
    let mut rep =
        FigureReport::new("fig10", "Figure 10: TTE by design").seeds(sweep.replications());
    let t = rep.add_table(
        "",
        vec!["metric", "paired link", "switchback", "event study"],
    );
    for m in repro_bench::figure5_metrics() {
        let paired = rep.estimator_cell(
            &sweep.runs,
            &format!("paired link/{}", m.name()),
            fmt_pct,
            |out| {
                paired_link_effects(&out.data, m)
                    .map(|p| p.tte.relative)
                    .map_err(|e| e.to_string())
            },
        );
        let swb = rep.estimator_cell(
            &sweep.runs,
            &format!("switchback/{}", m.name()),
            fmt_pct,
            |out| {
                switchback_emulation(&out.data, &plan, m)
                    .map(|e| e.relative)
                    .map_err(|e| e.to_string())
            },
        );
        let evs = rep.estimator_cell(
            &sweep.runs,
            &format!("event study/{}", m.name()),
            fmt_pct,
            |out| {
                event_study_emulation(&out.data, switch_day, m)
                    .map(|e| e.relative)
                    .map_err(|e| e.to_string())
            },
        );
        rep.row(t, m.name(), vec![paired, swb, evs]);
    }
    rep.note("(paper: switchback CIs cover the paired TTEs; event study biased for some metrics)");
    rep.emit();
}
