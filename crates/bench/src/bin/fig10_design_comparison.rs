//! Figure 10: TTE per metric as estimated by the paired-link design, an
//! emulated switchback, and an emulated event study.
use causal::assignment::SwitchbackPlan;
use unbiased::designs::{event_study_emulation, paired_link_effects, switchback_emulation};
use unbiased::report::render_design_comparison;

fn main() {
    let out = repro_bench::main_experiment(0.35, 5, 202).run();
    // Treatment on days 1, 3, 5 (paper's Figure 12); event switch Thu->Fri
    // (day 2 of the Wed-aligned run).
    let plan = SwitchbackPlan::alternating(5, true);
    let metrics = repro_bench::figure5_metrics();
    let mut paired = Vec::new();
    let mut swb = Vec::new();
    let mut evs = Vec::new();
    let mut names = Vec::new();
    for &m in &metrics {
        let (Ok(p), Ok(s), Ok(e)) = (
            paired_link_effects(&out.data, m),
            switchback_emulation(&out.data, &plan, m),
            event_study_emulation(&out.data, 2, m),
        ) else {
            continue;
        };
        names.push(m.name());
        paired.push(p.tte);
        swb.push(s);
        evs.push(e);
    }
    println!("Figure 10: TTE by design\n");
    println!(
        "{}",
        render_design_comparison(
            &names,
            &["paired link", "switchback", "event study"],
            &[paired, swb, evs]
        )
    );
    println!("(paper: switchback CIs cover the paired TTEs; event study biased for some metrics)");
}
