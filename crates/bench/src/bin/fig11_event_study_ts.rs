//! Figure 11: throughput time series of the emulated event study
//! (95% capping deployed between Thursday and Friday) — per-hour
//! cross-seed mean ± 95% half-width instead of one world's series.
use repro_bench::figharness::{self as fh, FigureReport};
use streamsim::session::{LinkId, Metric, SessionRecord};
use unbiased::dataset::Dataset;
use unbiased::designs::PairedOutcome;

/// One seed's event-study series: normalized hourly throughput on a
/// fixed `days × 24` grid (missing hours stay NaN so seeds align).
fn series(out: &PairedOutcome, days: usize, switch_day: usize) -> Vec<f64> {
    let mut vals = vec![f64::NAN; days * 24];
    for day in 0..days {
        let recs: Vec<&SessionRecord> = if day < switch_day {
            out.data
                .filter(|r| r.link == LinkId::Two && !r.treated && r.day == day)
        } else {
            out.data
                .filter(|r| r.link == LinkId::One && r.treated && r.day == day)
        };
        for (_, h, v) in Dataset::hourly_means(&recs, Metric::Throughput) {
            vals[day * 24 + h] = v;
        }
    }
    repro_bench::normalize_to_max(&vals)
}

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, 8);
    let switch_day = 2.min(sweep.days - 1);
    let per_seed: Vec<Vec<f64>> = sweep
        .runs
        .iter()
        .map(|r| series(&r.result, sweep.days, switch_day))
        .collect();
    let (means, half_widths) = fh::series_ci(&per_seed);
    let mut rep = FigureReport::new(
        "fig11",
        format!(
            "Figure 11: event study (uncapped before day {switch_day}, 95% capped from it), \
             normalized hourly throughput"
        ),
    )
    .seeds(sweep.replications());
    rep.series_with_ci("throughput", means, half_widths);
    rep.note(
        "(paper: the deploy-day step is confounded with weekday demand, biasing the estimate)",
    );
    rep.emit();
}
