//! Figure 11: throughput time series of the emulated event study
//! (95% capping deployed between Thursday and Friday).
use streamsim::session::{LinkId, Metric, SessionRecord};
use unbiased::dataset::Dataset;
use unbiased::report::render_time_series;

fn main() {
    let out = repro_bench::main_experiment(0.35, 5, 202).run();
    let switch_day = 2;
    let mut series = Vec::new();
    for day in 0..5 {
        let recs: Vec<&SessionRecord> = if day < switch_day {
            out.data
                .filter(|r| r.link == LinkId::Two && !r.treated && r.day == day)
        } else {
            out.data
                .filter(|r| r.link == LinkId::One && r.treated && r.day == day)
        };
        let cells = Dataset::hourly_means(&recs, Metric::Throughput);
        for (_, h, v) in cells {
            series.push((day * 24 + h, v));
        }
    }
    let max = series.iter().map(|&(_, v)| v).fold(f64::MIN, f64::max);
    let vals: Vec<f64> = series.iter().map(|&(_, v)| v / max).collect();
    println!(
        "{}",
        render_time_series(
            "Figure 11: event study (uncapped Wed-Thu, 95% capped Fri-Sun), normalized hourly throughput",
            &[("throughput".into(), vals)],
        )
    );
}
