//! Ablation: Newey–West lag choice vs CI width for the paired TTE
//! (the paper fixes lag = 2; the NW auto-lag rule suggests 4–5 here) —
//! the per-lag relative SE is now a cross-seed mean ± 95% CI.
use expstats::ols::{DesignBuilder, Ols, OlsFit};
use expstats::timeseries::newey_west_auto_lag;
use expstats::CovEstimator;
use repro_bench::figharness::{self as fh, fmt_pct, fmt_scaled, FigCell, FigureReport};
use repro_bench::SeedRun;
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;
use unbiased::designs::PairedOutcome;

/// One seed's hourly throughput regression, kept so every lag reuses
/// the same fit.
struct SeedFit {
    fit: OlsFit,
    base: f64,
    n: usize,
}

fn seed_fit(out: &PairedOutcome) -> Result<SeedFit, String> {
    let m = Metric::Throughput;
    let treated = out.data.filter(|r| r.link == LinkId::One && r.treated);
    let control = out.data.filter(|r| r.link == LinkId::Two && !r.treated);
    let base = Dataset::mean(&control, m);
    // Rebuild the hourly regression by hand so the lag can be swept.
    let mut rows: Vec<(usize, usize, f64, f64)> = Vec::new();
    for (arm, cells) in [
        (1.0, Dataset::hourly_means(&treated, m)),
        (0.0, Dataset::hourly_means(&control, m)),
    ] {
        for (d, h, z) in cells {
            rows.push((d, h, arm, z));
        }
    }
    rows.sort_by_key(|&(d, h, a, _)| (d, h, a as i64));
    let n = rows.len();
    let y: Vec<f64> = rows.iter().map(|r| r.3).collect();
    let arm: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let hours: Vec<usize> = rows.iter().map(|r| r.1).collect();
    let build = || -> expstats::Result<OlsFit> {
        let x = DesignBuilder::new()
            .intercept(n)?
            .column("arm", &arm)?
            .dummies("hour", &hours)?
            .build()?;
        Ols::fit(x, &y)
    };
    build()
        .map(|fit| SeedFit { fit, base, n })
        .map_err(|e| e.to_string())
}

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, 8);
    let fits: Vec<SeedRun<Result<SeedFit, String>>> = sweep
        .runs
        .iter()
        .map(|r| SeedRun {
            seed: r.seed,
            result: seed_fit(&r.result),
        })
        .collect();
    let cells = fits
        .iter()
        .filter_map(|r| r.result.as_ref().ok())
        .map(|f| f.n)
        .next()
        .unwrap_or(0);
    let auto = newey_west_auto_lag(cells);
    let mut rep = FigureReport::new(
        "ablation_nw_lag",
        format!("Ablation: throughput-TTE standard error vs Newey-West lag ({cells} hourly cells)"),
    )
    .seeds(sweep.replications());
    let t = rep.add_table("", vec!["lag", "relative SE", "note"]);
    for lag in [0usize, 1, 2, 4, 8, 12] {
        let cell = rep.estimator_cell(&fits, &format!("lag {lag}"), fmt_scaled(1.0, 4), |f| {
            f.as_ref().map_err(Clone::clone).and_then(|sf| {
                sf.fit
                    .std_errors(CovEstimator::NeweyWest { lag })
                    .map(|se| se[1] / sf.base)
                    .map_err(|e| e.to_string())
            })
        });
        let note = match lag {
            2 => "paper's choice",
            l if l == auto => "auto-lag rule",
            _ => "",
        };
        rep.row(t, format!("{lag}"), vec![cell, FigCell::text(note)]);
    }
    let t2 = rep.add_table("lag-invariant point estimate", vec!["", "TTE"]);
    let tte = rep.estimator_cell(&fits, "TTE", fmt_pct, |f| {
        f.as_ref()
            .map(|sf| sf.fit.coef[1] / sf.base)
            .map_err(Clone::clone)
    });
    rep.row(t2, "throughput", vec![tte]);
    rep.note("(the estimate is lag-invariant; only the interval width moves)");
    rep.emit();
}
