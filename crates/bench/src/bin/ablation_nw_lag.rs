//! Ablation: Newey–West lag choice vs CI width for the paired TTE
//! (the paper fixes lag = 2; the NW auto-lag rule suggests 4–5 here).
use expstats::table::Table;
use expstats::timeseries::newey_west_auto_lag;
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;

fn main() {
    use expstats::ols::{DesignBuilder, Ols};
    use expstats::CovEstimator;
    let out = repro_bench::main_experiment(0.35, 5, 202).run();
    let treated = out.data.filter(|r| r.link == LinkId::One && r.treated);
    let control = out.data.filter(|r| r.link == LinkId::Two && !r.treated);
    let m = Metric::Throughput;
    let base = Dataset::mean(&control, m);
    // Rebuild the hourly regression by hand so we can sweep the lag.
    let mut rows: Vec<(usize, usize, f64, f64)> = Vec::new();
    for (arm, cells) in [
        (1.0, Dataset::hourly_means(&treated, m)),
        (0.0, Dataset::hourly_means(&control, m)),
    ] {
        for (d, h, z) in cells {
            rows.push((d, h, arm, z));
        }
    }
    rows.sort_by_key(|&(d, h, a, _)| (d, h, a as i64));
    let n = rows.len();
    let y: Vec<f64> = rows.iter().map(|r| r.3).collect();
    let arm: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let hours: Vec<usize> = rows.iter().map(|r| r.1).collect();
    let x = DesignBuilder::new()
        .intercept(n)
        .unwrap()
        .column("arm", &arm)
        .unwrap()
        .dummies("hour", &hours)
        .unwrap()
        .build()
        .unwrap();
    let fit = Ols::fit(x, &y).unwrap();
    println!("Ablation: throughput-TTE standard error vs Newey-West lag ({n} hourly cells)\n");
    let mut t = Table::new(vec!["lag", "relative SE", "note"]);
    for lag in [0usize, 1, 2, 4, 8, 12] {
        let se = fit.std_errors(CovEstimator::NeweyWest { lag }).unwrap()[1] / base;
        let note = match lag {
            2 => "paper's choice",
            l if l == newey_west_auto_lag(n) => "auto-lag rule",
            _ => "",
        };
        t.row(vec![
            format!("{lag}"),
            format!("{:.4}", se),
            note.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(estimate itself is lag-invariant: {:+.1}%)",
        100.0 * fit.coef[1] / base
    );
}
