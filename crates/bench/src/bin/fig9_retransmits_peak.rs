//! Figure 9: % retransmitted bytes — TTE split into peak vs off-peak,
//! aggregated across replication seeds (mean ± 95% CI of the per-seed
//! relative effects), so each day-part contrast reports cross-seed
//! variability instead of one world.
use expstats::table::{pct, pct_ci, Table};
use repro_bench::{derive_seeds, metric_ci, Runner, SeedRun};
use streamsim::session::{LinkId, Metric, SessionRecord};
use unbiased::analysis::hourly_effect;
use unbiased::dataset::Dataset;
use unbiased::designs::PairedOutcome;

const REPLICATIONS: usize = 8;

/// Per-seed relative TTE of the retransmitted-byte fraction restricted
/// to the sessions selected by `in_part` (NaN when the effect is not
/// estimable in that replication; `metric_ci` drops those seeds).
fn part_effect(out: &PairedOutcome, in_part: &dyn Fn(&SessionRecord) -> bool) -> f64 {
    let m = Metric::RetxFraction;
    let treated: Vec<&SessionRecord> = out
        .data
        .filter(|r| r.link == LinkId::One && r.treated && in_part(r));
    let control: Vec<&SessionRecord> = out
        .data
        .filter(|r| r.link == LinkId::Two && !r.treated && in_part(r));
    let base = Dataset::mean(&control, m);
    hourly_effect(m, &treated, &control, base)
        .map(|e| e.relative)
        .unwrap_or(f64::NAN)
}

fn main() {
    let design = repro_bench::main_experiment(0.35, 5, 202);
    let runs: Vec<SeedRun<PairedOutcome>> =
        Runner::new().sweep_paired(&design, &derive_seeds(202, REPLICATIONS));
    let peak = |r: &SessionRecord| (17..23).contains(&r.hour);
    println!(
        "Figure 9: retransmitted-byte fraction, capping TTE by day part \
         (mean ± 95% CI over {REPLICATIONS} seeds)\n"
    );
    let mut t = Table::new(vec!["hours", "TTE", "95% CI", "seeds"]);
    for (label, in_part) in [
        (
            "all",
            Box::new(|_: &SessionRecord| true) as Box<dyn Fn(&SessionRecord) -> bool>,
        ),
        ("peak (17-22h)", Box::new(peak)),
        ("off-peak", Box::new(move |r: &SessionRecord| !peak(r))),
    ] {
        if let Ok(ci) = metric_ci(&runs, 0.95, |out| part_effect(out, in_part.as_ref())) {
            t.row(vec![
                label.to_string(),
                pct(ci.mean),
                pct_ci(ci.ci),
                ci.n.to_string(),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(paper: overall +10%, off-peak +16%, peak -20%; absolute retx fell everywhere)");
}
