//! Figure 9: % retransmitted bytes — TTE split into peak vs off-peak,
//! cross-seed mean ± 95% CI of the per-seed relative effects through
//! the shared figure harness.
use repro_bench::figharness::{self as fh, fmt_pct, FigureReport};
use streamsim::session::{LinkId, Metric, SessionRecord};
use unbiased::analysis::hourly_effect;
use unbiased::dataset::Dataset;
use unbiased::designs::PairedOutcome;

const REPLICATIONS: usize = 8;

/// Per-seed relative TTE of the retransmitted-byte fraction restricted
/// to the sessions selected by `in_part`.
fn part_effect(
    out: &PairedOutcome,
    in_part: &dyn Fn(&SessionRecord) -> bool,
) -> Result<f64, String> {
    let m = Metric::RetxFraction;
    let treated: Vec<&SessionRecord> = out
        .data
        .filter(|r| r.link == LinkId::One && r.treated && in_part(r));
    let control: Vec<&SessionRecord> = out
        .data
        .filter(|r| r.link == LinkId::Two && !r.treated && in_part(r));
    let base = Dataset::mean(&control, m);
    hourly_effect(m, &treated, &control, base)
        .map(|e| e.relative)
        .map_err(|e| e.to_string())
}

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, REPLICATIONS);
    let peak = |r: &SessionRecord| (17..23).contains(&r.hour);
    let mut rep = FigureReport::new(
        "fig9",
        "Figure 9: retransmitted-byte fraction, capping TTE by day part",
    )
    .seeds(sweep.replications());
    let t = rep.add_table("", vec!["hours", "TTE"]);
    for (label, in_part) in [
        (
            "all",
            Box::new(|_: &SessionRecord| true) as Box<dyn Fn(&SessionRecord) -> bool>,
        ),
        ("peak (17-22h)", Box::new(peak)),
        ("off-peak", Box::new(move |r: &SessionRecord| !peak(r))),
    ] {
        let cell = rep.estimator_cell(&sweep.runs, label, fmt_pct, |out| {
            part_effect(out, in_part.as_ref())
        });
        rep.row(t, label, vec![cell]);
    }
    rep.note("(paper: overall +10%, off-peak +16%, peak -20%; absolute retx fell everywhere)");
    rep.emit();
}
