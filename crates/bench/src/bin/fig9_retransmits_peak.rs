//! Figure 9: % retransmitted bytes — TTE split into peak vs off-peak.
use expstats::table::{pct, pct_ci, Table};
use streamsim::session::{LinkId, Metric, SessionRecord};
use unbiased::analysis::hourly_effect;
use unbiased::dataset::Dataset;

fn main() {
    let out = repro_bench::main_experiment(0.35, 5, 202).run();
    let m = Metric::RetxFraction;
    let peak = |r: &SessionRecord| (17..23).contains(&r.hour);
    println!("Figure 9: retransmitted-byte fraction, capping TTE by day part\n");
    let mut t = Table::new(vec!["hours", "TTE", "95% CI"]);
    for (label, in_part) in [
        (
            "all",
            Box::new(|_: &SessionRecord| true) as Box<dyn Fn(&SessionRecord) -> bool>,
        ),
        ("peak (17-22h)", Box::new(peak)),
        ("off-peak", Box::new(move |r: &SessionRecord| !peak(r))),
    ] {
        let treated: Vec<&SessionRecord> = out
            .data
            .filter(|r| r.link == LinkId::One && r.treated && in_part(r));
        let control: Vec<&SessionRecord> = out
            .data
            .filter(|r| r.link == LinkId::Two && !r.treated && in_part(r));
        let base = Dataset::mean(&control, m);
        if let Ok(e) = hourly_effect(m, &treated, &control, base) {
            t.row(vec![label.to_string(), pct(e.relative), pct_ci(e.ci95)]);
        }
    }
    println!("{}", t.render());
    println!("(paper: overall +10%, off-peak +16%, peak -20%; absolute retx fell everywhere)");
}
