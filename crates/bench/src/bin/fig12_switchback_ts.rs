//! Figure 12: throughput time series of the emulated switchback
//! (treatment on alternating days), per-hour cross-seed mean ± 95%
//! half-width, plus the regression estimate with its
//! weekend-adjustment diagnostic.
use causal::assignment::SwitchbackPlan;
use repro_bench::figharness::{self as fh, fmt_pct, FigCell, FigureReport};
use repro_bench::SeedRun;
use streamsim::session::{LinkId, Metric, SessionRecord};
use unbiased::dataset::Dataset;
use unbiased::designs::{switchback_emulation, PairedOutcome};

/// One seed's switchback series: normalized hourly throughput of the
/// active arm on a fixed `days × 24` grid.
fn series(out: &PairedOutcome, plan: &SwitchbackPlan, days: usize) -> Vec<f64> {
    let mut vals = vec![f64::NAN; days * 24];
    for day in 0..days {
        let recs: Vec<&SessionRecord> = if plan.treated(day) {
            out.data
                .filter(|r| r.link == LinkId::One && r.treated && r.day == day)
        } else {
            out.data
                .filter(|r| r.link == LinkId::Two && !r.treated && r.day == day)
        };
        for (_, h, v) in Dataset::hourly_means(&recs, Metric::Throughput) {
            vals[day * 24 + h] = v;
        }
    }
    repro_bench::normalize_to_max(&vals)
}

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, 6);
    let plan = SwitchbackPlan::alternating(sweep.days, true);
    let per_seed: Vec<Vec<f64>> = sweep
        .runs
        .iter()
        .map(|r| series(&r.result, &plan, sweep.days))
        .collect();
    let (means, half_widths) = fh::series_ci(&per_seed);
    let mut rep = FigureReport::new(
        "fig12",
        "Figure 12: switchback (95% capped on alternating days), normalized hourly throughput",
    )
    .seeds(sweep.replications());
    rep.series_with_ci("throughput", means, half_widths);

    // One regression per seed; the TTE cell and the weekend-dummy tally
    // both read from it.
    let estimates: Vec<SeedRun<Result<_, String>>> = sweep
        .runs
        .iter()
        .map(|r| SeedRun {
            seed: r.seed,
            result: switchback_emulation(&r.result.data, &plan, Metric::Throughput)
                .map_err(|e| e.to_string()),
        })
        .collect();
    let ok_estimates = || estimates.iter().filter_map(|r| r.result.as_ref().ok());
    let estimable = ok_estimates().count();
    let adjusted = ok_estimates().filter(|e| e.weekend_adjusted).count();
    let t = rep.add_table(
        "switchback TTE (hourly regression)",
        vec!["metric", "TTE", "weekend dummy included"],
    );
    let tte = rep.estimator_cell(&estimates, "switchback TTE", fmt_pct, |e| {
        e.as_ref().map(|e| e.relative).map_err(Clone::clone)
    });
    rep.row(
        t,
        "throughput",
        vec![tte, FigCell::text(format!("{adjusted}/{estimable} seeds"))],
    );
    rep.note(
        "(the day-to-day alternation hides the clean paired-link contrast — hence \
         regression analysis; a dropped weekend dummy means it was degenerate or \
         collinear with the arm)",
    );
    rep.emit();
}
