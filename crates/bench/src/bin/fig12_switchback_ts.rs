//! Figure 12: throughput time series of the emulated switchback
//! (treatment on days 1, 3, 5), plus the regression estimate with its
//! weekend-adjustment diagnostic.
use causal::assignment::SwitchbackPlan;
use expstats::table::{pct, pct_ci};
use streamsim::session::{LinkId, Metric, SessionRecord};
use unbiased::dataset::Dataset;
use unbiased::designs::switchback_emulation;
use unbiased::report::render_time_series;

fn main() {
    let out = repro_bench::main_experiment(0.35, 5, 202).run();
    let plan = SwitchbackPlan::alternating(5, true);
    let mut vals = Vec::new();
    for day in 0..5 {
        let recs: Vec<&SessionRecord> = if plan.treated(day) {
            out.data
                .filter(|r| r.link == LinkId::One && r.treated && r.day == day)
        } else {
            out.data
                .filter(|r| r.link == LinkId::Two && !r.treated && r.day == day)
        };
        let cells = Dataset::hourly_means(&recs, Metric::Throughput);
        for (_, _, v) in cells {
            vals.push(v);
        }
    }
    let max = vals.iter().cloned().fold(f64::MIN, f64::max);
    let vals: Vec<f64> = vals.iter().map(|v| v / max).collect();
    println!(
        "{}",
        render_time_series(
            "Figure 12: switchback (95% capped on days 1,3,5), normalized hourly throughput",
            &[("throughput".into(), vals)],
        )
    );
    println!("(the day-to-day alternation hides the clean paired-link contrast — hence regression analysis)");
    match switchback_emulation(&out.data, &plan, Metric::Throughput) {
        Ok(e) => println!(
            "switchback TTE (hourly regression): {} {}  [weekend dummy {}]",
            pct(e.relative),
            pct_ci(e.ci95),
            if e.weekend_adjusted {
                "included"
            } else {
                "dropped: degenerate or collinear with the arm"
            }
        ),
        Err(err) => println!("switchback TTE unavailable: {err}"),
    }
}
