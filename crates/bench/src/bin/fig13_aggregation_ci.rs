//! Figure 13: effect sizes and CIs under hourly vs session ("account")
//! level aggregation.
use expstats::table::{pct, pct_ci, Table};
use streamsim::session::LinkId;
use unbiased::analysis::{hourly_effect, unit_effect};
use unbiased::dataset::Dataset;

fn main() {
    let out = repro_bench::main_experiment(0.35, 5, 202).run();
    println!("Figure 13: TTE by aggregation level (hour-level is the conservative default)\n");
    let mut t = Table::new(vec!["metric", "hourly TTE [CI]", "session-level TTE [CI]"]);
    for m in repro_bench::figure5_metrics() {
        let treated = out.data.filter(|r| r.link == LinkId::One && r.treated);
        let control = out.data.filter(|r| r.link == LinkId::Two && !r.treated);
        let base = Dataset::mean(&control, m);
        let (Ok(h), Ok(u)) = (
            hourly_effect(m, &treated, &control, base),
            unit_effect(m, &treated, &control, base),
        ) else {
            continue;
        };
        t.row(vec![
            m.name().to_string(),
            format!("{} {}", pct(h.relative), pct_ci(h.ci95)),
            format!("{} {}", pct(u.relative), pct_ci(u.ci95)),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: hourly aggregation gives much wider, conservative intervals)");
}
