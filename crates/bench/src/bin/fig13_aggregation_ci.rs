//! Figure 13: effect sizes and CIs under hourly vs session ("account")
//! level aggregation — cross-seed mean ± 95% CI per aggregation level.
use repro_bench::figharness::{self as fh, fmt_pct, FigureReport};
use streamsim::session::{LinkId, Metric, SessionRecord};
use unbiased::analysis::{hourly_effect, unit_effect};
use unbiased::dataset::Dataset;
use unbiased::designs::PairedOutcome;

/// One seed's TTE under the chosen aggregation.
fn tte(out: &PairedOutcome, m: Metric, hourly: bool) -> Result<f64, String> {
    let treated: Vec<&SessionRecord> = out.data.filter(|r| r.link == LinkId::One && r.treated);
    let control: Vec<&SessionRecord> = out.data.filter(|r| r.link == LinkId::Two && !r.treated);
    let base = Dataset::mean(&control, m);
    let e = if hourly {
        hourly_effect(m, &treated, &control, base)
    } else {
        unit_effect(m, &treated, &control, base)
    };
    e.map(|e| e.relative).map_err(|e| e.to_string())
}

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, 8);
    let mut rep = FigureReport::new(
        "fig13",
        "Figure 13: TTE by aggregation level (hour-level is the conservative default)",
    )
    .seeds(sweep.replications());
    let t = rep.add_table("", vec!["metric", "hourly TTE", "session-level TTE"]);
    for m in repro_bench::figure5_metrics() {
        let h = rep.estimator_cell(
            &sweep.runs,
            &format!("hourly/{}", m.name()),
            fmt_pct,
            |out| tte(out, m, true),
        );
        let u = rep.estimator_cell(
            &sweep.runs,
            &format!("session-level/{}", m.name()),
            fmt_pct,
            |out| tte(out, m, false),
        );
        rep.row(t, m.name(), vec![h, u]);
    }
    rep.note("(paper: hourly aggregation gives much wider, conservative intervals)");
    rep.emit();
}
