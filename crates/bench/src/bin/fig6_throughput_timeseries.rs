//! Figure 6: hourly client throughput, baseline Saturday vs experiment
//! Saturday, normalized to the largest hourly average.
use streamsim::scenario::AllocationSchedule;
use streamsim::session::{LinkId, Metric};
use streamsim::sim::PairedSim;
use unbiased::dataset::Dataset;
use unbiased::report::render_time_series;

fn series(data: &Dataset, link: LinkId, day: usize) -> Vec<f64> {
    let recs = data.filter(|r| r.link == link && r.day == day);
    let cells = Dataset::hourly_means(&recs, Metric::Throughput);
    (0..24)
        .map(|h| {
            cells
                .iter()
                .find(|&&(_, hh, _)| hh == h)
                .map_or(f64::NAN, |&(_, _, v)| v)
        })
        .collect()
}

fn main() {
    // Saturday is day 3 of the Wednesday-aligned week.
    let day = 3;
    let cfg = repro_bench::paired_config(0.35, 4);
    let baseline = PairedSim::with_paper_biases(
        cfg.clone(),
        [AllocationSchedule::none(), AllocationSchedule::none()],
        301,
    )
    .run();
    let base_data = Dataset::new(baseline.sessions);
    let design = repro_bench::main_experiment(0.35, 4, 302);
    let exp = design.run();
    let norm = |v: Vec<f64>| repro_bench::normalize_to_max(&v);
    println!(
        "{}",
        render_time_series(
            "Figure 6a: baseline Saturday (normalized hourly throughput)",
            &[
                ("link1".into(), norm(series(&base_data, LinkId::One, day))),
                ("link2".into(), norm(series(&base_data, LinkId::Two, day))),
            ],
        )
    );
    println!(
        "{}",
        render_time_series(
            "Figure 6b: experiment Saturday (link1 95% capped, link2 5%)",
            &[
                (
                    "link1(95%)".into(),
                    norm(series(&exp.data, LinkId::One, day))
                ),
                (
                    "link2(5%)".into(),
                    norm(series(&exp.data, LinkId::Two, day))
                ),
            ],
        )
    );
    println!("(paper: during peak hours the mostly-capped link keeps higher throughput)");
}
