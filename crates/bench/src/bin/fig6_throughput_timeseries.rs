//! Figure 6: hourly client throughput, baseline Saturday vs experiment
//! Saturday, normalized to the largest hourly average — per-hour
//! cross-seed mean ± 95% half-width through the shared figure harness.
use repro_bench::figharness::{self as fh, FigureReport};
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;

const REPLICATIONS: usize = 6;

fn series(data: &Dataset, link: LinkId, day: usize) -> Vec<f64> {
    let recs = data.filter(|r| r.link == link && r.day == day);
    let cells = Dataset::hourly_means(&recs, Metric::Throughput);
    let raw: Vec<f64> = (0..24)
        .map(|h| {
            cells
                .iter()
                .find(|&&(_, hh, _)| hh == h)
                .map_or(f64::NAN, |&(_, _, v)| v)
        })
        .collect();
    repro_bench::normalize_to_max(&raw)
}

fn main() {
    // Saturday is day 3 of the Wednesday-aligned week; quick mode
    // shortens the horizon, so plot the last simulated day instead.
    let days = fh::stream_days(4);
    let day = days - 1;
    let (baseline, _) = fh::baseline_sweep(0.35, 4, 301, REPLICATIONS);
    let baseline: Vec<Dataset> = baseline
        .into_iter()
        .map(|r| Dataset::new(r.result.0))
        .collect();
    let experiment = fh::paired_sweep(0.35, 4, 302, REPLICATIONS);

    let mut rep = FigureReport::new(
        "fig6",
        format!(
            "Figure 6: normalized hourly throughput on day {day} — baseline (6a) \
             vs experiment, link1 95% capped / link2 5% (6b)"
        ),
    )
    .seeds(experiment.replications());

    for (label, link) in [
        ("6a base link1", LinkId::One),
        ("6a base link2", LinkId::Two),
    ] {
        let per_seed: Vec<Vec<f64>> = baseline.iter().map(|d| series(d, link, day)).collect();
        let (means, hw) = fh::series_ci(&per_seed);
        rep.series_with_ci(label, means, hw);
    }
    for (label, link) in [
        ("6b link1(95%)", LinkId::One),
        ("6b link2(5%)", LinkId::Two),
    ] {
        let per_seed: Vec<Vec<f64>> = experiment
            .runs
            .iter()
            .map(|r| series(&r.result.data, link, day))
            .collect();
        let (means, hw) = fh::series_ci(&per_seed);
        rep.series_with_ci(label, means, hw);
    }
    rep.note("(paper: during peak hours the mostly-capped link keeps higher throughput)");
    rep.emit();
}
