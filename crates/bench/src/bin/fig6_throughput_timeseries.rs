//! Figure 6: hourly client throughput, baseline Saturday vs experiment
//! Saturday, normalized to the largest hourly average — aggregated
//! across replication seeds (per-hour mean with a ± 95% half-width
//! column), so the series report cross-seed variability.
use expstats::mean_ci;
use repro_bench::{derive_seeds, Runner};
use streamsim::scenario::AllocationSchedule;
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;
use unbiased::report::render_time_series;

const REPLICATIONS: usize = 6;

fn series(data: &Dataset, link: LinkId, day: usize) -> Vec<f64> {
    let recs = data.filter(|r| r.link == link && r.day == day);
    let cells = Dataset::hourly_means(&recs, Metric::Throughput);
    let raw: Vec<f64> = (0..24)
        .map(|h| {
            cells
                .iter()
                .find(|&&(_, hh, _)| hh == h)
                .map_or(f64::NAN, |&(_, _, v)| v)
        })
        .collect();
    repro_bench::normalize_to_max(&raw)
}

/// Per-hour cross-seed mean and 95% CI half-width.
fn aggregate(per_seed: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>) {
    let mut means = Vec::with_capacity(24);
    let mut widths = Vec::with_capacity(24);
    for h in 0..24 {
        let vals: Vec<f64> = per_seed
            .iter()
            .map(|s| s[h])
            .filter(|v| v.is_finite())
            .collect();
        match mean_ci(&vals, 0.95) {
            Ok(d) => {
                means.push(d.estimate);
                widths.push((d.ci.1 - d.ci.0) / 2.0);
            }
            Err(_) => {
                means.push(f64::NAN);
                widths.push(f64::NAN);
            }
        }
    }
    (means, widths)
}

fn main() {
    // Saturday is day 3 of the Wednesday-aligned week.
    let day = 3;
    let cfg = repro_bench::paired_config(0.35, 4);
    let runner = Runner::new();

    // One Dataset per replication; `series` borrows instead of cloning.
    let baseline: Vec<Dataset> = runner
        .sweep_paired_baseline(
            &cfg,
            &[AllocationSchedule::none(), AllocationSchedule::none()],
            &derive_seeds(301, REPLICATIONS),
        )
        .into_iter()
        .map(|r| Dataset::new(r.result.0))
        .collect();
    let design = repro_bench::main_experiment(0.35, 4, 302);
    let experiment = runner.sweep_paired(&design, &derive_seeds(302, REPLICATIONS));

    let base_series = |link| {
        aggregate(
            &baseline
                .iter()
                .map(|d| series(d, link, day))
                .collect::<Vec<_>>(),
        )
    };
    let exp_series = |link| {
        aggregate(
            &experiment
                .iter()
                .map(|r| series(&r.result.data, link, day))
                .collect::<Vec<_>>(),
        )
    };

    let (b1, b1w) = base_series(LinkId::One);
    let (b2, b2w) = base_series(LinkId::Two);
    println!(
        "{}",
        render_time_series(
            &format!(
                "Figure 6a: baseline Saturday (normalized hourly throughput, \
                 mean ± 95% half-width over {REPLICATIONS} seeds)"
            ),
            &[
                ("link1".into(), b1),
                ("±".into(), b1w),
                ("link2".into(), b2),
                ("±".into(), b2w),
            ],
        )
    );
    let (e1, e1w) = exp_series(LinkId::One);
    let (e2, e2w) = exp_series(LinkId::Two);
    println!(
        "{}",
        render_time_series(
            &format!(
                "Figure 6b: experiment Saturday (link1 95% capped, link2 5%; \
                 mean ± 95% half-width over {REPLICATIONS} seeds)"
            ),
            &[
                ("link1(95%)".into(), e1),
                ("±".into(), e1w),
                ("link2(5%)".into(), e2),
                ("±".into(), e2w),
            ],
        )
    );
    println!("(paper: during peak hours the mostly-capped link keeps higher throughput)");
}
