//! Bench-regression gate: compare a freshly generated bench report
//! against the committed baseline and fail loudly on large slowdowns.
//!
//! Usage: `bench_regression_check <baseline.json> <current.json>
//! [max_slowdown]`
//!
//! CI runs the quick-mode `bench_report` on a shared runner and checks
//! it against the committed `BENCH_streamsim.json` (produced by a full
//! run on a dedicated box). Shared-runner numbers are noisy, so the
//! gate is deliberately generous: a scenario fails only when
//! `current > baseline × max_slowdown` (default 2.5) **and** the
//! absolute excess is > [`ABS_SLACK_S`] — sub-hundred-millisecond
//! scenarios flap on scheduler noise alone. A scenario present in the
//! baseline but missing from the current report also fails (a renamed
//! or dropped bench must update the baseline deliberately).

use std::process::ExitCode;

use expstats::table::Table;
use repro_bench::json::{self, Value};

/// Absolute excess (seconds) a scenario must exceed, on top of the
/// ratio, before it counts as a regression.
const ABS_SLACK_S: f64 = 0.05;

/// Peak-RSS gate: fail when a scenario's current peak resident set is
/// more than this factor above the baseline's…
const RSS_FACTOR: f64 = 1.5;

/// …and exceeds it by more than this many MB. The absolute slack keeps
/// small-footprint scenarios (where allocator and runtime baseline
/// dominate) from flapping on the ratio alone.
const RSS_SLACK_MB: f64 = 32.0;

/// Scenarios whose *workload* changes under `STREAMSIM_BENCH_QUICK=1`
/// (not just the sample count), making a quick-vs-full ratio
/// meaningless. The sim scenarios run identical work in both modes.
/// `fleet_large` shrinks from 10 000×8 to 64×2 links×seeds in quick
/// mode, so neither its wall clock nor its peak RSS is comparable.
const QUICK_INCOMPARABLE: &[&str] = &["runner_overhead_sweep", "fleet_large"];

fn scenarios(v: &Value) -> Option<Vec<(String, f64, Option<f64>)>> {
    let obj = v.get("scenarios")?.as_obj()?;
    let mut out = Vec::new();
    for (name, s) in obj {
        let rss = s.get("peak_rss_mb").and_then(Value::as_f64);
        out.push((name.clone(), s.get("median_s")?.as_f64()?, rss));
    }
    Some(out)
}

fn load(path: &str) -> Result<Value, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&raw).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (baseline_path, current_path, factor) = match args.as_slice() {
        [_, b, c] => (b.clone(), c.clone(), 2.5),
        [_, b, c, f] => match f.parse::<f64>() {
            Ok(f) if f > 1.0 => (b.clone(), c.clone(), f),
            _ => {
                eprintln!("max_slowdown must be a number > 1.0");
                return ExitCode::FAILURE;
            }
        },
        _ => {
            eprintln!(
                "usage: bench_regression_check <baseline.json> <current.json> [max_slowdown]"
            );
            return ExitCode::FAILURE;
        }
    };
    let (baseline, current) = match (load(&baseline_path), load(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    let (Some(base), Some(cur)) = (scenarios(&baseline), scenarios(&current)) else {
        eprintln!(
            "error: malformed bench report (want {{\"scenarios\": {{name: {{\"median_s\": …}}}}}})"
        );
        return ExitCode::FAILURE;
    };

    let quick_current = current.get("quick") == Some(&Value::Bool(true));
    let mut t = Table::new(vec![
        "scenario",
        "baseline (s)",
        "current (s)",
        "ratio",
        "rss (MB)",
        "",
    ]);
    let mut regressions = 0usize;
    for (name, base_s, base_rss) in &base {
        if quick_current && QUICK_INCOMPARABLE.contains(&name.as_str()) {
            // The ratio is meaningless in quick mode, but the scenario
            // should still *run* — a silent skip would hide a dropped or
            // renamed bench until the next full baseline refresh.
            let note = if cur.iter().any(|(n, _, _)| n == name) {
                "skipped (quick workload differs)"
            } else {
                eprintln!(
                    "warning: quick-incomparable scenario \"{name}\" is in the baseline \
                     but missing from {current_path} — not gating, but a dropped or \
                     renamed bench must update the baseline deliberately"
                );
                "WARNING: missing from quick report"
            };
            t.row(vec![
                name.clone(),
                format!("{base_s:.4}"),
                "-".into(),
                "-".into(),
                "-".into(),
                note.into(),
            ]);
            continue;
        }
        let Some((_, cur_s, cur_rss)) = cur.iter().find(|(n, _, _)| n == name) else {
            eprintln!("error: scenario \"{name}\" missing from {current_path}");
            regressions += 1;
            continue;
        };
        let ratio = cur_s / base_s;
        let slow = ratio > factor && (cur_s - base_s) > ABS_SLACK_S;
        // Peak-RSS gate: only when both reports measured it (the
        // baseline may predate the field, or the box may not be linux).
        let (rss_cell, bloated) = match (base_rss, cur_rss) {
            (Some(b), Some(c)) => (
                format!("{b:.0} -> {c:.0}"),
                *c > b * RSS_FACTOR && (c - b) > RSS_SLACK_MB,
            ),
            _ => ("-".into(), false),
        };
        regressions += (slow || bloated) as usize;
        let verdict = match (slow, bloated) {
            (true, _) => format!("REGRESSION (> {factor:.1}x)"),
            (false, true) => format!("RSS REGRESSION (> {RSS_FACTOR:.1}x + {RSS_SLACK_MB:.0}MB)"),
            (false, false) => String::new(),
        };
        t.row(vec![
            name.clone(),
            format!("{base_s:.4}"),
            format!("{cur_s:.4}"),
            format!("{ratio:.2}x"),
            rss_cell,
            verdict,
        ]);
    }
    println!(
        "bench regression gate: {} vs {} (fail above {factor:.1}x + {ABS_SLACK_S}s wall, \
         {RSS_FACTOR:.1}x + {RSS_SLACK_MB:.0}MB peak RSS)\n",
        baseline_path, current_path
    );
    println!("{}", t.render());
    if regressions > 0 {
        eprintln!("bench_regression_check: {regressions} scenario(s) regressed");
        return ExitCode::FAILURE;
    }
    println!("no regressions");
    ExitCode::SUCCESS
}
