//! Routing spillover — what cross-link session routing does to the
//! fleet designs.
//!
//! The fleet figures so far kept links independent: each drew its own
//! arrival stream, so cluster (link-level) randomization had clean
//! clusters and recovered the total treatment effect. This figure turns
//! on the shared arrival router ([`streamsim::routing`]) and sweeps the
//! spillover strength — the number of candidate links `k` a session may
//! be routed to. At `k = 1` every session is pinned to its home link
//! (zero spillover, the pre-routing world); as `k` grows, the
//! least-loaded router reacts to the treatment itself: capped (treated)
//! links *look* lighter, so the router steers extra sessions onto them,
//! and the treated clusters are no longer exchangeable with control —
//! the Li et al. stochastic-congestion regime where cluster
//! randomization breaks.
//!
//! Two designs face the same routed fleets:
//! * **link-level** cluster randomization — its bias vs the routed
//!   counterfactual ground truth should grow with `k`;
//! * **staggered switchbacks** analyzed with an explicit carryover
//!   burn-in ([`unbiased::fleet::switchback_effect`]) — each link
//!   alternates arms daily, so the router's load-shifting follows the
//!   alternation instead of accumulating against one arm, and the
//!   within-link contrast survives.
//!
//! Secondary tables vary the routing policy and the home-link load
//! imbalance at fixed `k`.

use repro_bench::figharness::{self as fh, fmt_pct, FigureReport};
use repro_bench::{derive_seeds, FigCell, Runner, SeedRun};
use streamsim::config::StreamConfig;
use streamsim::fleet::{FleetDesign, FleetLinkRun, LinkSpec};
use streamsim::session::Metric;
use streamsim::{RoutingConfig, RoutingPolicy};
use unbiased::fleet::{
    control_mean, control_mean_summary, ground_truth_tte_from_summaries,
    link_level_effect_adjusted_summary, link_level_effect_summary, switchback_effect, FleetEffect,
    DEFAULT_SKETCH_CAP,
};

/// The congestion-coupled headline metric: routing spillover moves
/// load, and load moves throughput.
const METRIC: Metric = Metric::Throughput;

/// Hours dropped after every switchback arm flip (and at cold start):
/// the link's queue and the clients' buffers still reflect the previous
/// arm for a while after the allocation changes.
const BURN_IN_HOURS: usize = 3;

struct Scenario {
    truth: Vec<f64>,
    link: Vec<SeedRun<Result<FleetEffect, String>>>,
    link_adj: Vec<SeedRun<Result<FleetEffect, String>>>,
    switchback: Vec<SeedRun<Result<FleetEffect, String>>>,
}

/// Per-seed counterfactual ground truth under *this* routing config:
/// the same routed fleet rerun all-treated and all-control (the router
/// sees the counterfactual allocations too).
fn routed_truths(
    runner: &Runner,
    base: &StreamConfig,
    specs: &[LinkSpec],
    routing: &RoutingConfig,
    seeds: &[u64],
) -> Vec<f64> {
    seeds
        .iter()
        .map(|&seed| {
            let one = [seed];
            let at = |p: f64| {
                runner.sweep_fleet_streaming_routed(
                    base,
                    specs,
                    &FleetDesign::UserLevel { p },
                    routing,
                    &one,
                    DEFAULT_SKETCH_CAP,
                )
            };
            let all_t = at(1.0);
            let all_c = at(0.0);
            ground_truth_tte_from_summaries(&all_t[0].result, &all_c[0].result, METRIC)
                .unwrap_or(f64::NAN)
        })
        .collect()
}

fn run_scenario(
    runner: &Runner,
    base: &StreamConfig,
    specs: &[LinkSpec],
    routing: &RoutingConfig,
    seeds: &[u64],
) -> Scenario {
    let truth = routed_truths(runner, base, specs, routing, seeds);
    // Link-level design on the streaming path (summary estimators).
    let cluster = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let streaming = runner.sweep_fleet_streaming_routed(
        base,
        specs,
        &cluster,
        routing,
        seeds,
        DEFAULT_SKETCH_CAP,
    );
    let link = streaming
        .iter()
        .map(|r| {
            let links = r.result.link_refs();
            let b = control_mean_summary(&links, METRIC);
            SeedRun {
                seed: r.seed,
                result: link_level_effect_summary(&links, METRIC, b).map_err(|e| e.to_string()),
            }
        })
        .collect();
    let link_adj = streaming
        .iter()
        .map(|r| {
            let links = r.result.link_refs();
            let b = control_mean_summary(&links, METRIC);
            SeedRun {
                seed: r.seed,
                result: link_level_effect_adjusted_summary(&links, METRIC, b)
                    .map_err(|e| e.to_string()),
            }
        })
        .collect();
    // Switchback design on the record path: the burn-in estimator needs
    // each session's day and hour plus the link's realized schedule.
    let sb_design = FleetDesign::StaggeredSwitchback {
        p_hi: 0.95,
        p_lo: 0.05,
        period_days: 1,
    };
    let switchback = runner
        .sweep_fleet_routed(base, specs, &sb_design, routing, seeds)
        .into_iter()
        .map(|r| {
            let links: Vec<&FleetLinkRun> = r.result.links.iter().collect();
            let b = control_mean(&links, METRIC);
            SeedRun {
                seed: r.seed,
                result: switchback_effect(&links, METRIC, b, BURN_IN_HOURS)
                    .map_err(|e| e.to_string()),
            }
        })
        .collect();
    Scenario {
        truth,
        link,
        link_adj,
        switchback,
    }
}

/// Mean absolute bias vs the per-seed routed ground truth (NaN-truth or
/// failed seeds are skipped).
fn mean_abs_bias(runs: &[SeedRun<Result<FleetEffect, String>>], truths: &[f64]) -> f64 {
    let biases: Vec<f64> = runs
        .iter()
        .zip(truths)
        .filter_map(|(r, &t)| {
            let e = r.result.as_ref().ok()?;
            t.is_finite().then(|| (e.relative - t).abs())
        })
        .collect();
    if biases.is_empty() {
        f64::NAN
    } else {
        biases.iter().sum::<f64>() / biases.len() as f64
    }
}

fn coverage(runs: &[SeedRun<Result<FleetEffect, String>>], truths: &[f64]) -> (usize, usize) {
    let covered = runs
        .iter()
        .zip(truths)
        .filter(|(r, &t)| t.is_finite() && r.result.as_ref().is_ok_and(|e| e.covers(t)))
        .count();
    (covered, runs.len())
}

fn coverage_cell(runs: &[SeedRun<Result<FleetEffect, String>>], truths: &[f64]) -> FigCell {
    let (covered, n) = coverage(runs, truths);
    FigCell::text(format!("{covered}/{n}"))
}

fn bias_cell(runs: &[SeedRun<Result<FleetEffect, String>>], truths: &[f64]) -> FigCell {
    let b = mean_abs_bias(runs, truths);
    FigCell::value(b, format!("{:.2}pp", b * 100.0))
}

fn truth_cell(truths: &[f64]) -> FigCell {
    let finite: Vec<f64> = truths.iter().copied().filter(|t| t.is_finite()).collect();
    if finite.is_empty() {
        return FigCell::missing();
    }
    let m = finite.iter().sum::<f64>() / finite.len() as f64;
    FigCell::value(m, format!("{:+.1}%", m * 100.0))
}

fn scenario_row(rep: &mut FigureReport, table: usize, label: &str, s: &Scenario) {
    let link_est = rep.estimator_cell(&s.link, &format!("{label}/link"), fmt_pct, |r| {
        r.clone().map(|e| e.relative)
    });
    let sb_est = rep.estimator_cell(
        &s.switchback,
        &format!("{label}/switchback"),
        fmt_pct,
        |r| r.clone().map(|e| e.relative),
    );
    let cells = vec![
        truth_cell(&s.truth),
        link_est,
        bias_cell(&s.link, &s.truth),
        coverage_cell(&s.link, &s.truth),
        bias_cell(&s.link_adj, &s.truth),
        sb_est,
        bias_cell(&s.switchback, &s.truth),
        coverage_cell(&s.switchback, &s.truth),
    ];
    rep.row(table, label, cells);
}

fn main() {
    let n_links = fh::fleet_links(64);
    // Even day count so the daily switchback alternation is balanced
    // within the horizon (odd horizons leave one arm a day ahead, which
    // the slow router would read as a persistent demand difference).
    let days = fh::stream_days(6).next_multiple_of(2);
    let (base, specs) = repro_bench::fleet_population(n_links, days, 7171);
    // Floor of 5 replications even in quick mode: the headline claim is
    // *monotone* link-level bias in k, and 3-seed means still wobble a
    // couple of pp between adjacent k values.
    let seeds = derive_seeds(7171, fh::replications(8).max(5));
    let runner = Runner::new();

    let ks = [1usize, 2, 4, 8];
    let k_scenarios: Vec<Scenario> = ks
        .iter()
        .map(|&k| {
            run_scenario(
                &runner,
                &base,
                &specs,
                &RoutingConfig::new(RoutingPolicy::LeastLoad, k),
                &seeds,
            )
        })
        .collect();

    let mut rep = FigureReport::new(
        "fleet_routing_spillover",
        format!(
            "Routing spillover: cluster designs vs staggered switchbacks \
             under shared arrival routing ({n_links} links, least-load k sweep)"
        ),
    )
    .seeds(seeds.len());

    let t = rep.add_table(
        "avg throughput estimates vs routed ground truth, by candidate set size k (least-load)",
        vec![
            "k",
            "ground-truth TTE",
            "link-level",
            "|bias|",
            "covers",
            "ancova |bias|",
            "switchback (burn-in)",
            "|bias|",
            "covers",
        ],
    );
    for (k, s) in ks.iter().zip(&k_scenarios) {
        scenario_row(&mut rep, t, &format!("k={k}"), s);
    }
    rep.series(
        "link-level mean |bias| vs k",
        k_scenarios
            .iter()
            .map(|s| mean_abs_bias(&s.link, &s.truth))
            .collect(),
    );
    rep.series(
        "switchback mean |bias| vs k",
        k_scenarios
            .iter()
            .map(|s| mean_abs_bias(&s.switchback, &s.truth))
            .collect(),
    );

    // Routing-policy comparison at fixed k: the spillover needs the
    // router to *react to load* — the oblivious random walk routes
    // without looking, so it spreads sessions but cannot chase the
    // treatment.
    let pol_k = 4usize;
    let pt = rep.add_table(
        "routing-policy comparison at k=4",
        vec![
            "policy",
            "ground-truth TTE",
            "link-level",
            "|bias|",
            "covers",
            "ancova |bias|",
            "switchback (burn-in)",
            "|bias|",
            "covers",
        ],
    );
    for policy in [
        RoutingPolicy::WeightedRandom,
        RoutingPolicy::RandomWalkOblivious,
    ] {
        let s = run_scenario(
            &runner,
            &base,
            &specs,
            &RoutingConfig::new(policy, pol_k),
            &seeds,
        );
        scenario_row(&mut rep, pt, policy.name(), &s);
    }
    // The least-load row at this k is already computed on the main axis.
    if let Some(idx) = ks.iter().position(|&k| k == pol_k) {
        scenario_row(
            &mut rep,
            pt,
            RoutingPolicy::LeastLoad.name(),
            &k_scenarios[idx],
        );
    }

    // Load-imbalance sensitivity: skewing home-link popularity
    // concentrates the shared stream on a few hot links, which gives
    // the router more sessions to move.
    let it = rep.add_table(
        "home-load imbalance sensitivity at k=4 (least-load)",
        vec![
            "imbalance",
            "ground-truth TTE",
            "link-level",
            "|bias|",
            "covers",
            "ancova |bias|",
            "switchback (burn-in)",
            "|bias|",
            "covers",
        ],
    );
    for imb in [0.5f64, 2.0] {
        let mut cfg = RoutingConfig::new(RoutingPolicy::LeastLoad, pol_k);
        cfg.imbalance = imb;
        let s = run_scenario(&runner, &base, &specs, &cfg, &seeds);
        scenario_row(&mut rep, it, &format!("{imb:.1}"), &s);
    }

    rep.note(
        "(k=1 pins every session to its home link: the zero-spillover baseline, identical \
         to the unrouted fleet; larger k lets the least-load router chase the capped arm's \
         apparent headroom, so link-level cluster estimates drift from the routed ground truth)",
    );
    rep.note(format!(
        "(switchback rows: staggered daily switchbacks analyzed within-link with a \
         {BURN_IN_HOURS}h carryover burn-in after every arm flip; the router's load-shifting \
         alternates with the arms instead of accumulating against one cluster)"
    ));
    rep.note(
        "(ground truth per scenario: the same routed fleet rerun all-treated and all-control \
         under the same routing config — routing is part of the estimand, so each k has its own truth)",
    );
    rep.emit();
}
