//! CI gate for the engine exactness contract: run the same scenarios
//! on the tick and the hybrid tick/event backends and fail on any
//! divergence — bitwise on session records, ≤1e-9 relative on hourly
//! statistics.
//!
//! Usage: `cargo run --release -p repro-bench --bin engine_parity_check
//! [--with-faults]`
//!
//! The test suites already prove the contract on randomized configs
//! (`tests/engine_oracle.rs`); this binary is the cheap always-on CI
//! variant — two fixed scenarios bracketing the mode space (one mostly
//! guaranteed-decoupled, one congested with standing queues and
//! rollbacks), a table of per-scenario outcomes, nonzero exit on the
//! first mismatch.
//!
//! With `--with-faults`, each scenario's record stream is additionally
//! run through a composite [`TelemetryFaults`] pipeline (MCAR + MNAR
//! drop, duplication, NaN corruption, reordering, an outage window) on
//! both backends, and the *delivered* streams plus their
//! [`streamsim::TelemetryStats`] ledgers must match bitwise too. Faults are
//! post-engine — a pure function of `(fault seed, link, records)` — so
//! identical inputs must give identical observed streams; a divergence
//! here means the fault pipeline leaked backend-dependent state.

use std::process::ExitCode;

use expstats::table::Table;
use streamsim::engine::EngineBackend;
use streamsim::scenario::AllocationSchedule;
use streamsim::session::{LinkId, SessionRecord};
use streamsim::sim::LinkSim;
use streamsim::telemetry::OutageWindow;
use streamsim::{StreamConfig, TelemetryFaults};

/// First field (by name) where two records differ bitwise, if any.
fn record_mismatch(a: &SessionRecord, b: &SessionRecord) -> Option<&'static str> {
    if a.link != b.link {
        return Some("link");
    }
    if (a.day, a.hour, a.weekend, a.treated) != (b.day, b.hour, b.weekend, b.treated) {
        return Some("day/hour/weekend/treated");
    }
    let floats = [
        ("arrival_s", a.arrival_s, b.arrival_s),
        ("throughput_bps", a.throughput_bps, b.throughput_bps),
        ("min_rtt_s", a.min_rtt_s, b.min_rtt_s),
        ("play_delay_s", a.play_delay_s, b.play_delay_s),
        ("bitrate_bps", a.bitrate_bps, b.bitrate_bps),
        ("quality", a.quality, b.quality),
        ("bytes", a.bytes, b.bytes),
        ("retx_bytes", a.retx_bytes, b.retx_bytes),
        ("duration_s", a.duration_s, b.duration_s),
    ];
    for (name, x, y) in floats {
        if x.to_bits() != y.to_bits() {
            return Some(name);
        }
    }
    if (a.rebuffer_count, a.rebuffered, a.cancelled, a.switches)
        != (b.rebuffer_count, b.rebuffered, b.cancelled, b.switches)
    {
        return Some("rebuffer/cancel/switches");
    }
    None
}

/// The composite fault model `--with-faults` pushes each scenario's
/// records through: every fault class engaged at moderate rates, plus a
/// mid-morning outage. Fixed seed so CI runs are reproducible.
fn parity_faults() -> TelemetryFaults {
    TelemetryFaults {
        drop_mcar: 0.05,
        drop_congested: 0.3,
        duplicate_p: 0.05,
        corrupt_nan_p: 0.02,
        reorder_window: 6,
        outage: Some(OutageWindow {
            start_s: 30_000.0,
            end_s: 33_600.0,
        }),
        ..TelemetryFaults::none(43)
    }
}

/// Run `cfg` through both backends; returns an error description on the
/// first divergence.
fn check(
    cfg: StreamConfig,
    seed: u64,
    faults: Option<&TelemetryFaults>,
) -> Result<(usize, usize), String> {
    let schedule = AllocationSchedule::Constant(0.5);
    let (rt, ht) = LinkSim::new(cfg.clone(), LinkId::One, schedule.clone(), seed).run();
    let (re, he) = LinkSim::new(cfg, LinkId::One, schedule, seed).run_with(EngineBackend::Event);

    if rt.len() != re.len() {
        return Err(format!(
            "record counts differ: {} vs {}",
            rt.len(),
            re.len()
        ));
    }
    for (i, (a, b)) in rt.iter().zip(&re).enumerate() {
        if let Some(field) = record_mismatch(a, b) {
            return Err(format!("record {i} diverges in `{field}`"));
        }
    }
    if let Some(f) = faults {
        // Faults are applied post-engine to identical record streams,
        // so the delivered streams and ledgers must be bit-identical
        // too — including the NaN bit patterns of corrupted fields.
        let (da, sa) = f.apply(0, rt.clone());
        let (db, sb) = f.apply(0, re.clone());
        if sa != sb {
            return Err(format!(
                "telemetry ledgers diverge under faults: {sa:?} vs {sb:?}"
            ));
        }
        if da.len() != db.len() {
            return Err(format!(
                "delivered counts differ under faults: {} vs {}",
                da.len(),
                db.len()
            ));
        }
        for (i, (a, b)) in da.iter().zip(&db).enumerate() {
            if let Some(field) = record_mismatch(a, b) {
                return Err(format!(
                    "delivered record {i} diverges in `{field}` under faults"
                ));
            }
        }
    }
    if ht.len() != he.len() {
        return Err(format!(
            "hourly counts differ: {} vs {}",
            ht.len(),
            he.len()
        ));
    }
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
    for (a, b) in ht.iter().zip(&he) {
        if (a.day, a.hour) != (b.day, b.hour) {
            return Err(format!(
                "hourly window order diverges at d{} h{}",
                a.day, a.hour
            ));
        }
        for (name, x, y) in [
            ("utilization", a.utilization, b.utilization),
            ("rtt_s", a.rtt_s, b.rtt_s),
            ("concurrent", a.concurrent, b.concurrent),
            ("loss", a.loss, b.loss),
        ] {
            if !close(x, y) {
                return Err(format!(
                    "hourly d{} h{} `{name}` beyond 1e-9: {x} vs {y}",
                    a.day, a.hour
                ));
            }
        }
    }
    Ok((rt.len(), ht.len()))
}

fn main() -> ExitCode {
    let with_faults = std::env::args().any(|a| a == "--with-faults");
    let faults = with_faults.then(parity_faults);
    let scenarios: Vec<(&str, StreamConfig, u64)> = vec![
        (
            "one_day_light",
            StreamConfig {
                days: 1,
                capacity_bps: 400e6,
                peak_arrivals_per_s: 0.24 * 0.05,
                mean_watch_s: 1500.0,
                ..Default::default()
            },
            11,
        ),
        (
            "one_day_congested",
            StreamConfig {
                days: 1,
                capacity_bps: 200e6,
                peak_arrivals_per_s: 0.24 * 0.2,
                mean_watch_s: 1500.0,
                ..Default::default()
            },
            7,
        ),
    ];

    let mut t = Table::new(vec!["scenario", "records", "hours", "verdict"]);
    let mut failures = 0usize;
    for (name, cfg, seed) in scenarios {
        match check(cfg, seed, faults.as_ref()) {
            Ok((records, hours)) => {
                t.row(vec![
                    name.into(),
                    records.to_string(),
                    hours.to_string(),
                    if with_faults {
                        "identical (+faults)".into()
                    } else {
                        "identical".into()
                    },
                ]);
            }
            Err(why) => {
                failures += 1;
                eprintln!("error: {name}: {why}");
                t.row(vec![
                    name.into(),
                    "-".into(),
                    "-".into(),
                    format!("DIVERGED: {why}"),
                ]);
            }
        }
    }
    if with_faults {
        println!("engine parity gate: tick vs event backend, telemetry faults applied\n");
    } else {
        println!("engine parity gate: tick vs event backend\n");
    }
    println!("{}", t.render());
    if failures > 0 {
        eprintln!("engine_parity_check: {failures} scenario(s) diverged");
        return ExitCode::FAILURE;
    }
    println!("all scenarios bit-identical (hourly within 1e-9)");
    ExitCode::SUCCESS
}
