//! CI gate for the engine exactness contract: run the same scenarios
//! on the tick and the hybrid tick/event backends and fail on any
//! divergence — bitwise on session records, ≤1e-9 relative on hourly
//! statistics.
//!
//! Usage: `cargo run --release -p repro-bench --bin engine_parity_check
//! [--with-faults]`
//!
//! The test suites already prove the contract on randomized configs
//! (`tests/engine_oracle.rs`); this binary is the cheap always-on CI
//! variant — two fixed scenarios bracketing the mode space (one mostly
//! guaranteed-decoupled, one congested with standing queues and
//! rollbacks), a table of per-scenario outcomes, nonzero exit on the
//! first mismatch.
//!
//! With `--routed`, the gate instead runs a shared-arrival *routed*
//! fleet (one scenario per [`RoutingPolicy`]) on both backends through
//! the full sweep path: every per-link session record must be
//! bit-identical, and the link-level / user-level estimators computed
//! from each backend's sweep must agree to ≤1e-9 relative. This is the
//! always-on CI variant of `tests/fleet_routed.rs` — it exercises the
//! router pre-pass, the routed arrival cursor, and the estimator stack
//! in one pass.
//!
//! With `--with-faults`, each scenario's record stream is additionally
//! run through a composite [`TelemetryFaults`] pipeline (MCAR + MNAR
//! drop, duplication, NaN corruption, reordering, an outage window) on
//! both backends, and the *delivered* streams plus their
//! [`streamsim::TelemetryStats`] ledgers must match bitwise too. Faults are
//! post-engine — a pure function of `(fault seed, link, records)` — so
//! identical inputs must give identical observed streams; a divergence
//! here means the fault pipeline leaked backend-dependent state.

use std::process::ExitCode;

use expstats::table::Table;
use repro_bench::runner::{derive_seeds, Runner};
use streamsim::engine::EngineBackend;
use streamsim::fleet::{FleetDesign, LinkPopulation};
use streamsim::scenario::AllocationSchedule;
use streamsim::session::{LinkId, Metric, SessionRecord};
use streamsim::sim::LinkSim;
use streamsim::telemetry::OutageWindow;
use streamsim::{RoutingConfig, RoutingPolicy, StreamConfig, TelemetryFaults};
use unbiased::fleet::{control_mean, link_level_effect, user_level_effect};

/// First field (by name) where two records differ bitwise, if any.
fn record_mismatch(a: &SessionRecord, b: &SessionRecord) -> Option<&'static str> {
    if a.link != b.link {
        return Some("link");
    }
    if (a.day, a.hour, a.weekend, a.treated) != (b.day, b.hour, b.weekend, b.treated) {
        return Some("day/hour/weekend/treated");
    }
    let floats = [
        ("arrival_s", a.arrival_s, b.arrival_s),
        ("throughput_bps", a.throughput_bps, b.throughput_bps),
        ("min_rtt_s", a.min_rtt_s, b.min_rtt_s),
        ("play_delay_s", a.play_delay_s, b.play_delay_s),
        ("bitrate_bps", a.bitrate_bps, b.bitrate_bps),
        ("quality", a.quality, b.quality),
        ("bytes", a.bytes, b.bytes),
        ("retx_bytes", a.retx_bytes, b.retx_bytes),
        ("duration_s", a.duration_s, b.duration_s),
    ];
    for (name, x, y) in floats {
        if x.to_bits() != y.to_bits() {
            return Some(name);
        }
    }
    if (a.rebuffer_count, a.rebuffered, a.cancelled, a.switches)
        != (b.rebuffer_count, b.rebuffered, b.cancelled, b.switches)
    {
        return Some("rebuffer/cancel/switches");
    }
    None
}

/// The composite fault model `--with-faults` pushes each scenario's
/// records through: every fault class engaged at moderate rates, plus a
/// mid-morning outage. Fixed seed so CI runs are reproducible.
fn parity_faults() -> TelemetryFaults {
    TelemetryFaults {
        drop_mcar: 0.05,
        drop_congested: 0.3,
        duplicate_p: 0.05,
        corrupt_nan_p: 0.02,
        reorder_window: 6,
        outage: Some(OutageWindow {
            start_s: 30_000.0,
            end_s: 33_600.0,
        }),
        ..TelemetryFaults::none(43)
    }
}

/// Run `cfg` through both backends; returns an error description on the
/// first divergence.
fn check(
    cfg: StreamConfig,
    seed: u64,
    faults: Option<&TelemetryFaults>,
) -> Result<(usize, usize), String> {
    let schedule = AllocationSchedule::Constant(0.5);
    let (rt, ht) = LinkSim::new(cfg.clone(), LinkId::One, schedule.clone(), seed).run();
    let (re, he) = LinkSim::new(cfg, LinkId::One, schedule, seed).run_with(EngineBackend::Event);

    if rt.len() != re.len() {
        return Err(format!(
            "record counts differ: {} vs {}",
            rt.len(),
            re.len()
        ));
    }
    for (i, (a, b)) in rt.iter().zip(&re).enumerate() {
        if let Some(field) = record_mismatch(a, b) {
            return Err(format!("record {i} diverges in `{field}`"));
        }
    }
    if let Some(f) = faults {
        // Faults are applied post-engine to identical record streams,
        // so the delivered streams and ledgers must be bit-identical
        // too — including the NaN bit patterns of corrupted fields.
        let (da, sa) = f.apply(0, rt.clone());
        let (db, sb) = f.apply(0, re.clone());
        if sa != sb {
            return Err(format!(
                "telemetry ledgers diverge under faults: {sa:?} vs {sb:?}"
            ));
        }
        if da.len() != db.len() {
            return Err(format!(
                "delivered counts differ under faults: {} vs {}",
                da.len(),
                db.len()
            ));
        }
        for (i, (a, b)) in da.iter().zip(&db).enumerate() {
            if let Some(field) = record_mismatch(a, b) {
                return Err(format!(
                    "delivered record {i} diverges in `{field}` under faults"
                ));
            }
        }
    }
    if ht.len() != he.len() {
        return Err(format!(
            "hourly counts differ: {} vs {}",
            ht.len(),
            he.len()
        ));
    }
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
    for (a, b) in ht.iter().zip(&he) {
        if (a.day, a.hour) != (b.day, b.hour) {
            return Err(format!(
                "hourly window order diverges at d{} h{}",
                a.day, a.hour
            ));
        }
        for (name, x, y) in [
            ("utilization", a.utilization, b.utilization),
            ("rtt_s", a.rtt_s, b.rtt_s),
            ("concurrent", a.concurrent, b.concurrent),
            ("loss", a.loss, b.loss),
        ] {
            if !close(x, y) {
                return Err(format!(
                    "hourly d{} h{} `{name}` beyond 1e-9: {x} vs {y}",
                    a.day, a.hour
                ));
            }
        }
    }
    Ok((rt.len(), ht.len()))
}

/// Run one routed fleet scenario on both backends; returns `(records,
/// links)` on success, an error description on the first divergence.
fn check_routed(policy: RoutingPolicy) -> Result<(usize, usize), String> {
    let base = StreamConfig {
        days: 1,
        capacity_bps: 15e6,
        peak_arrivals_per_s: 0.24 * 0.015,
        mean_watch_s: 1200.0,
        ..Default::default()
    };
    let specs = LinkPopulation::moderate(base.clone(), 8, 31).sample();
    let design = FleetDesign::LinkLevel {
        p_hi: 0.95,
        p_lo: 0.05,
    };
    let routing = RoutingConfig::new(policy, 3);
    let seeds = derive_seeds(4101, 1);
    let runner = Runner::with_threads(2);
    let tick = runner.sweep_fleet_routed_with(
        &base,
        &specs,
        &design,
        &routing,
        &seeds,
        EngineBackend::Tick,
    );
    let event = runner.sweep_fleet_routed_with(
        &base,
        &specs,
        &design,
        &routing,
        &seeds,
        EngineBackend::Event,
    );
    let (t, e) = (&tick[0].result, &event[0].result);
    if t.links.len() != e.links.len() {
        return Err(format!(
            "link counts differ: {} vs {}",
            t.links.len(),
            e.links.len()
        ));
    }
    let mut n_records = 0usize;
    for (lt, le) in t.links.iter().zip(&e.links) {
        if lt.sessions.len() != le.sessions.len() {
            return Err(format!(
                "link {:?} record counts differ: {} vs {}",
                lt.link,
                lt.sessions.len(),
                le.sessions.len()
            ));
        }
        for (i, (a, b)) in lt.sessions.iter().zip(&le.sessions).enumerate() {
            if let Some(field) = record_mismatch(a, b) {
                return Err(format!(
                    "link {:?} record {i} diverges in `{field}`",
                    lt.link
                ));
            }
        }
        n_records += lt.sessions.len();
    }
    // The estimator stack must agree too: backend parity has to survive
    // the summary layer, not just the raw records.
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1e-300);
    let (lt, le) = (
        t.links.iter().collect::<Vec<_>>(),
        e.links.iter().collect::<Vec<_>>(),
    );
    for metric in [Metric::Bitrate, Metric::Throughput] {
        let (bt, be) = (control_mean(&lt, metric), control_mean(&le, metric));
        if !close(bt, be) {
            return Err(format!("{metric:?} control mean beyond 1e-9: {bt} vs {be}"));
        }
        for (name, rt, re) in [
            (
                "user_level",
                user_level_effect(&lt, metric, bt).map_err(|e| e.to_string())?,
                user_level_effect(&le, metric, be).map_err(|e| e.to_string())?,
            ),
            (
                "link_level",
                link_level_effect(&lt, metric, bt).map_err(|e| e.to_string())?,
                link_level_effect(&le, metric, be).map_err(|e| e.to_string())?,
            ),
        ] {
            if !close(rt.relative, re.relative) || !close(rt.se, re.se) {
                return Err(format!(
                    "{metric:?} {name} estimator beyond 1e-9: {} vs {}",
                    rt.relative, re.relative
                ));
            }
        }
    }
    Ok((n_records, t.links.len()))
}

fn routed_main() -> ExitCode {
    let mut t = Table::new(vec!["policy", "records", "links", "verdict"]);
    let mut failures = 0usize;
    for policy in RoutingPolicy::ALL {
        match check_routed(policy) {
            Ok((records, links)) => {
                t.row(vec![
                    policy.name().into(),
                    records.to_string(),
                    links.to_string(),
                    "identical".into(),
                ]);
            }
            Err(why) => {
                failures += 1;
                eprintln!("error: {}: {why}", policy.name());
                t.row(vec![
                    policy.name().into(),
                    "-".into(),
                    "-".into(),
                    format!("DIVERGED: {why}"),
                ]);
            }
        }
    }
    println!("engine parity gate: routed fleet, tick vs event backend\n");
    println!("{}", t.render());
    if failures > 0 {
        eprintln!("engine_parity_check: {failures} routed scenario(s) diverged");
        return ExitCode::FAILURE;
    }
    println!("all routed scenarios bit-identical (estimators within 1e-9)");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "--routed") {
        return routed_main();
    }
    let with_faults = std::env::args().any(|a| a == "--with-faults");
    let faults = with_faults.then(parity_faults);
    let scenarios: Vec<(&str, StreamConfig, u64)> = vec![
        (
            "one_day_light",
            StreamConfig {
                days: 1,
                capacity_bps: 400e6,
                peak_arrivals_per_s: 0.24 * 0.05,
                mean_watch_s: 1500.0,
                ..Default::default()
            },
            11,
        ),
        (
            "one_day_congested",
            StreamConfig {
                days: 1,
                capacity_bps: 200e6,
                peak_arrivals_per_s: 0.24 * 0.2,
                mean_watch_s: 1500.0,
                ..Default::default()
            },
            7,
        ),
    ];

    let mut t = Table::new(vec!["scenario", "records", "hours", "verdict"]);
    let mut failures = 0usize;
    for (name, cfg, seed) in scenarios {
        match check(cfg, seed, faults.as_ref()) {
            Ok((records, hours)) => {
                t.row(vec![
                    name.into(),
                    records.to_string(),
                    hours.to_string(),
                    if with_faults {
                        "identical (+faults)".into()
                    } else {
                        "identical".into()
                    },
                ]);
            }
            Err(why) => {
                failures += 1;
                eprintln!("error: {name}: {why}");
                t.row(vec![
                    name.into(),
                    "-".into(),
                    "-".into(),
                    format!("DIVERGED: {why}"),
                ]);
            }
        }
    }
    if with_faults {
        println!("engine parity gate: tick vs event backend, telemetry faults applied\n");
    } else {
        println!("engine parity gate: tick vs event backend\n");
    }
    println!("{}", t.render());
    if failures > 0 {
        eprintln!("engine_parity_check: {failures} scenario(s) diverged");
        return ExitCode::FAILURE;
    }
    println!("all scenarios bit-identical (hourly within 1e-9)");
    ExitCode::SUCCESS
}
