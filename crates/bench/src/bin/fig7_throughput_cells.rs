//! Figure 7: the four throughput cell means with estimands annotated.
use expstats::table::{pct, Table};
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;

fn main() {
    let out = repro_bench::main_experiment(0.35, 5, 202).run();
    let m = Metric::Throughput;
    let cell = |l, t| Dataset::mean(&out.data.cell(l, t), m);
    let (t1, c1) = (cell(LinkId::One, true), cell(LinkId::One, false));
    let (t2, c2) = (cell(LinkId::Two, true), cell(LinkId::Two, false));
    println!("Figure 7: average throughput per cell (Mb/s)\n");
    let mut t = Table::new(vec!["cell", "capped (T)", "uncapped (C)"]);
    t.row(vec![
        "link 1 (95% capped)".to_string(),
        format!("{:.2}", t1 / 1e6),
        format!("{:.2}", c1 / 1e6),
    ]);
    t.row(vec![
        "link 2 (5% capped)".to_string(),
        format!("{:.2}", t2 / 1e6),
        format!("{:.2}", c2 / 1e6),
    ]);
    println!("{}", t.render());
    println!(
        "tau(0.95) = {}   tau(0.05) = {}",
        pct(t1 / c1 - 1.0),
        pct(t2 / c2 - 1.0)
    );
    println!(
        "TTE ~ {}   spillover ~ {}",
        pct(t1 / c2 - 1.0),
        pct(c1 / c2 - 1.0)
    );
    println!("(paper: both A/B contrasts ~ -5%, TTE +12%, spillover +16%)");
}
