//! Figure 7: the four throughput cell means with estimands annotated —
//! cross-seed mean ± 95% CI per cell and per contrast through the
//! shared figure harness.
use repro_bench::figharness::{self as fh, fmt_pct, fmt_scaled, FigureReport};
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;
use unbiased::designs::PairedOutcome;

const REPLICATIONS: usize = 8;

fn main() {
    let sweep = fh::paired_sweep(0.35, 5, 202, REPLICATIONS);

    let mut rep = FigureReport::new("fig7", "Figure 7: average throughput per cell (Mb/s)")
        .seeds(sweep.replications());
    let t = rep.add_table("", vec!["cell", "capped (T)", "uncapped (C)"]);
    let mbs = fmt_scaled(1e-6, 2);
    for (label, link) in [
        ("link 1 (95% capped)", LinkId::One),
        ("link 2 (5% capped)", LinkId::Two),
    ] {
        let capped = rep.metric_cell(&sweep.runs, &format!("{label}/T"), &mbs, |out| {
            cell_of(out, link, true)
        });
        let uncapped = rep.metric_cell(&sweep.runs, &format!("{label}/C"), &mbs, |out| {
            cell_of(out, link, false)
        });
        rep.row(t, label, vec![capped, uncapped]);
    }

    let t2 = rep.add_table("estimands (cell ratios)", vec!["estimand", "effect"]);
    type Contrast = fn(&PairedOutcome) -> f64;
    let contrasts: [(&str, Contrast); 4] = [
        ("tau(0.95) = T1/C1 - 1", |out| {
            cell_of(out, LinkId::One, true) / cell_of(out, LinkId::One, false) - 1.0
        }),
        ("tau(0.05) = T2/C2 - 1", |out| {
            cell_of(out, LinkId::Two, true) / cell_of(out, LinkId::Two, false) - 1.0
        }),
        ("TTE ~ T1/C2 - 1", |out| {
            cell_of(out, LinkId::One, true) / cell_of(out, LinkId::Two, false) - 1.0
        }),
        ("spillover ~ C1/C2 - 1", |out| {
            cell_of(out, LinkId::One, false) / cell_of(out, LinkId::Two, false) - 1.0
        }),
    ];
    for (label, f) in contrasts {
        let cell = rep.metric_cell(&sweep.runs, label, fmt_pct, f);
        rep.row(t2, label, vec![cell]);
    }
    rep.note("(paper: both A/B contrasts ~ -5%, TTE +12%, spillover +16%)");
    rep.emit();
}

/// Mean throughput of one (link, arm) cell.
fn cell_of(out: &PairedOutcome, l: LinkId, t: bool) -> f64 {
    Dataset::mean(&out.data.cell(l, t), Metric::Throughput)
}
