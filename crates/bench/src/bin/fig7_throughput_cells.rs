//! Figure 7: the four throughput cell means with estimands annotated —
//! aggregated across replication seeds (mean ± 95% CI), so each cell and
//! contrast reports cross-seed variability.
use expstats::table::{pct, pct_ci, Table};
use repro_bench::{derive_seeds, metric_ci, Runner, SeedRun};
use streamsim::session::{LinkId, Metric};
use unbiased::dataset::Dataset;
use unbiased::designs::PairedOutcome;

const REPLICATIONS: usize = 8;

fn main() {
    let design = repro_bench::main_experiment(0.35, 5, 202);
    let runs: Vec<SeedRun<PairedOutcome>> =
        Runner::new().sweep_paired(&design, &derive_seeds(202, REPLICATIONS));
    let m = Metric::Throughput;
    let cell_of = |out: &PairedOutcome, l, t| Dataset::mean(&out.data.cell(l, t), m);

    let cell_ci = |l, t| metric_ci(&runs, 0.95, |out| cell_of(out, l, t)).unwrap();
    let contrast_ci = |f: &dyn Fn(&PairedOutcome) -> f64| metric_ci(&runs, 0.95, f).unwrap();

    println!(
        "Figure 7: average throughput per cell (Mb/s, mean ± 95% CI over {REPLICATIONS} seeds)\n"
    );
    let mbs = |c: &repro_bench::SeedCi| {
        format!(
            "{:.2} ({:.2}..{:.2})",
            c.mean / 1e6,
            c.ci.0 / 1e6,
            c.ci.1 / 1e6
        )
    };
    let (t1, c1) = (cell_ci(LinkId::One, true), cell_ci(LinkId::One, false));
    let (t2, c2) = (cell_ci(LinkId::Two, true), cell_ci(LinkId::Two, false));
    let mut t = Table::new(vec!["cell", "capped (T)", "uncapped (C)"]);
    t.row(vec!["link 1 (95% capped)".to_string(), mbs(&t1), mbs(&c1)]);
    t.row(vec!["link 2 (5% capped)".to_string(), mbs(&t2), mbs(&c2)]);
    println!("{}", t.render());

    let ratio = |num: &dyn Fn(&PairedOutcome) -> f64, den: &dyn Fn(&PairedOutcome) -> f64| {
        contrast_ci(&|out: &PairedOutcome| num(out) / den(out) - 1.0)
    };
    let t1f = |out: &PairedOutcome| cell_of(out, LinkId::One, true);
    let c1f = |out: &PairedOutcome| cell_of(out, LinkId::One, false);
    let t2f = |out: &PairedOutcome| cell_of(out, LinkId::Two, true);
    let c2f = |out: &PairedOutcome| cell_of(out, LinkId::Two, false);
    let tau_hi = ratio(&t1f, &c1f);
    let tau_lo = ratio(&t2f, &c2f);
    let tte = ratio(&t1f, &c2f);
    let spill = ratio(&c1f, &c2f);
    println!(
        "tau(0.95) = {} {}   tau(0.05) = {} {}",
        pct(tau_hi.mean),
        pct_ci(tau_hi.ci),
        pct(tau_lo.mean),
        pct_ci(tau_lo.ci)
    );
    println!(
        "TTE ~ {} {}   spillover ~ {} {}",
        pct(tte.mean),
        pct_ci(tte.ci),
        pct(spill.mean),
        pct_ci(spill.ci)
    );
    println!("(paper: both A/B contrasts ~ -5%, TTE +12%, spillover +16%)");
}
