//! Fleet design comparison — the fleet-scale generalization of
//! Figure 10: the same heterogeneous link fleet analyzed under
//! user-level (session Bernoulli) and link-level (cluster) randomized
//! designs, against the simulator's counterfactual ground-truth TTE.
//!
//! Under congestion interference the two designs answer differently:
//! the user-level contrast targets τ(p) — treated and control sessions
//! share every bottleneck, so spillover cancels out of the comparison —
//! while the link-level contrast puts whole links in one arm and keeps
//! the within-link spillover inside the estimate. The "covers truth"
//! columns count the replications whose within-seed cluster-robust 95%
//! CI covers that seed's ground-truth TTE: link-level should cover,
//! user-level should miss for the congestion-coupled metrics.
//!
//! Runs on the streaming aggregation path: each link's sessions are
//! folded into [`FleetLinkSummary`] moments as the link finishes, so
//! memory scales with links, not sessions.

use repro_bench::figharness::{self as fh, fmt_pct, FigureReport};
use repro_bench::{derive_seeds, FigCell, Runner, SeedRun};
use streamsim::config::StreamConfig;
use streamsim::fleet::{FleetDesign, LinkSpec};
use streamsim::session::Metric;
use unbiased::fleet::{
    control_mean_summary, ground_truth_tte_from_summaries, link_level_effect_summary,
    strata_summary, user_level_effect_summary, FleetEffect, FleetLinkSummary, FleetSummary,
    DEFAULT_SKETCH_CAP,
};

const METRICS: &[Metric] = &[
    Metric::Throughput,
    Metric::Bitrate,
    Metric::MinRtt,
    Metric::RebufferSessions,
];

use repro_bench::{fleet_strata_count, fleet_strata_labels};

/// Per-seed estimates for one design: `effects[m]` is metric `m`'s
/// fleet effect, `strata_effects[s]` the throughput effect within
/// congestion stratum `s`.
struct SeedEstimates {
    effects: Vec<Result<FleetEffect, String>>,
    strata_effects: Vec<Result<FleetEffect, String>>,
}

fn estimate_seed(
    summary: &FleetSummary,
    estimator: impl Fn(&[&FleetLinkSummary], Metric, f64) -> Result<FleetEffect, String>,
) -> SeedEstimates {
    let links = summary.link_refs();
    let effects = METRICS
        .iter()
        .map(|&m| {
            let base = control_mean_summary(&links, m);
            estimator(&links, m, base)
        })
        .collect();
    let strata_effects = strata_summary(summary, fleet_strata_count(summary.links.len()))
        .into_iter()
        .map(|group| {
            let base = control_mean_summary(&group, Metric::Throughput);
            estimator(&group, Metric::Throughput, base)
        })
        .collect();
    SeedEstimates {
        effects,
        strata_effects,
    }
}

/// Run one design across the seeds on the streaming path: the sweep
/// folds each link's sessions into moment summaries as jobs finish, so
/// a 200-link × 8-seed sweep never materializes its ~1M session records.
fn sweep_design(
    runner: &Runner,
    base: &StreamConfig,
    specs: &[LinkSpec],
    design: &FleetDesign,
    seeds: &[u64],
    estimator: impl Fn(&[&FleetLinkSummary], Metric, f64) -> Result<FleetEffect, String>,
) -> Vec<SeedRun<SeedEstimates>> {
    runner
        .sweep_fleet_streaming(base, specs, design, seeds, DEFAULT_SKETCH_CAP)
        .into_iter()
        .map(|r| SeedRun {
            seed: r.seed,
            result: estimate_seed(&r.result, &estimator),
        })
        .collect()
}

/// Count replications whose within-seed 95% CI covers that seed's
/// ground truth, rendered as `k/n` (seeds where the estimator failed
/// count as not covering).
fn coverage_cell(runs: &[SeedRun<SeedEstimates>], truths: &[f64], metric_idx: usize) -> FigCell {
    let covered = runs
        .iter()
        .zip(truths)
        .filter(|(r, &t)| {
            r.result.effects[metric_idx]
                .as_ref()
                .is_ok_and(|e| e.covers(t))
        })
        .count();
    FigCell::text(format!("{covered}/{}", runs.len()))
}

fn main() {
    let n_links = fh::fleet_links(200);
    let days = fh::stream_days(2);
    let (base, specs) = repro_bench::fleet_population(n_links, days, 4041);
    let seeds = derive_seeds(4041, fh::replications(8));
    let runner = Runner::new();

    let user_est = |links: &[&FleetLinkSummary], m: Metric, b: f64| {
        user_level_effect_summary(links, m, b).map_err(|e| e.to_string())
    };
    let link_est = |links: &[&FleetLinkSummary], m: Metric, b: f64| {
        link_level_effect_summary(links, m, b).map_err(|e| e.to_string())
    };

    // Counterfactual ground truth per seed: the same fleet (same
    // per-link seeds) rerun all-treated and all-control. Only the two
    // counterfactual summaries are alive at a time — the TTE needs just
    // the pooled per-arm moments. truths[m][seed_idx]: relative TTE.
    let mut truths: Vec<Vec<f64>> = vec![Vec::with_capacity(seeds.len()); METRICS.len()];
    for &seed in &seeds {
        let one = [seed];
        let all_t = runner.sweep_fleet_streaming(
            &base,
            &specs,
            &FleetDesign::UserLevel { p: 1.0 },
            &one,
            DEFAULT_SKETCH_CAP,
        );
        let all_c = runner.sweep_fleet_streaming(
            &base,
            &specs,
            &FleetDesign::UserLevel { p: 0.0 },
            &one,
            DEFAULT_SKETCH_CAP,
        );
        for (mi, &m) in METRICS.iter().enumerate() {
            let tte = ground_truth_tte_from_summaries(&all_t[0].result, &all_c[0].result, m)
                .unwrap_or(f64::NAN);
            truths[mi].push(tte);
        }
    }

    let user = sweep_design(
        &runner,
        &base,
        &specs,
        &FleetDesign::UserLevel { p: 0.5 },
        &seeds,
        user_est,
    );
    let link = sweep_design(
        &runner,
        &base,
        &specs,
        &FleetDesign::LinkLevel {
            p_hi: 0.95,
            p_lo: 0.05,
        },
        &seeds,
        link_est,
    );

    let mut rep = FigureReport::new(
        "fleet_design_comparison",
        format!(
            "Fleet design comparison: user-level vs link-level randomization \
             ({n_links} heterogeneous links)"
        ),
    )
    .seeds(seeds.len());
    let t = rep.add_table(
        "",
        vec![
            "metric",
            "ground-truth TTE",
            "user-level (link-clustered)",
            "covers truth",
            "link-level (cluster)",
            "covers truth",
        ],
    );
    for (mi, &m) in METRICS.iter().enumerate() {
        let truth_runs: Vec<SeedRun<f64>> = seeds
            .iter()
            .zip(&truths[mi])
            .map(|(&seed, &v)| SeedRun { seed, result: v })
            .collect();
        let truth_cell = rep.metric_cell(
            &truth_runs,
            &format!("ground truth/{}", m.name()),
            fmt_pct,
            |&v| v,
        );
        let user_cell =
            rep.estimator_cell(&user, &format!("user-level/{}", m.name()), fmt_pct, |est| {
                est.effects[mi].clone().map(|e| e.relative)
            });
        let user_cov = coverage_cell(&user, &truths[mi], mi);
        let link_cell =
            rep.estimator_cell(&link, &format!("link-level/{}", m.name()), fmt_pct, |est| {
                est.effects[mi].clone().map(|e| e.relative)
            });
        let link_cov = coverage_cell(&link, &truths[mi], mi);
        rep.row(
            t,
            m.name(),
            vec![truth_cell, user_cell, user_cov, link_cell, link_cov],
        );
    }

    // Per-stratum throughput effects: the interference gap grows with
    // congestion, which the offered-load strata make visible.
    let st = rep.add_table(
        "avg throughput by congestion stratum (links sorted by offered-load covariate)",
        vec!["stratum", "user-level", "link-level"],
    );
    for (si, label) in fleet_strata_labels(n_links).iter().enumerate() {
        let u = rep.estimator_cell(&user, &format!("user-level/{label}"), fmt_pct, |est| {
            est.strata_effects
                .get(si)
                .cloned()
                .unwrap_or_else(|| Err("stratum missing".into()))
                .map(|e| e.relative)
        });
        let l = rep.estimator_cell(&link, &format!("link-level/{label}"), fmt_pct, |est| {
            est.strata_effects
                .get(si)
                .cloned()
                .unwrap_or_else(|| Err("stratum missing".into()))
                .map(|e| e.relative)
        });
        rep.row(st, *label, vec![u, l]);
    }

    rep.note(
        "(user-level targets tau(0.5): spillover reaches its control arm, so it misses \
         the TTE that link-level cluster randomization recovers; cf. Li et al. 2023)",
    );
    rep.note(
        "(covers truth: replications whose within-seed cluster-robust 95% CI covers that \
         seed's counterfactual all-treated-minus-all-control effect)",
    );
    rep.emit();
}
