//! Figure 3: Cubic vs BBR. Deploying *either* algorithm at 10% looks
//! like a huge win in an A/B test; at 100% they are equivalent.
//!
//! The eleven k-scenarios run through the parallel scenario runner;
//! output flows through the shared figure harness.
use expstats::table::pct;
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::figharness::{self as fh, FigCell, FigureReport};
use repro_bench::{lab_config, mixed_apps, Runner};

fn main() {
    let ks: Vec<usize> = (0..=10).collect();
    let results = Runner::new().map(&ks, |&k| {
        let apps = mixed_apps(10, k, |treated| {
            AppConfig::plain(if treated { CcKind::Bbr } else { CcKind::Cubic })
        });
        let mut cfg = lab_config(apps, 80 + k as u64);
        cfg.buffer_bdp = 2.0; // coexistence regime; see EXPERIMENTS.md
        fh::quicken_lab(&mut cfg);
        run_dumbbell(&cfg).unwrap()
    });

    let mut rep = FigureReport::new(
        "fig3",
        "Figure 3: 10 connections, k run BBR, 10-k run Cubic (2 BDP buffer)",
    );
    let t = rep.add_table(
        "",
        vec!["k BBR", "tput BBR (M)", "tput Cubic (M)", "BBR vs Cubic"],
    );
    let (mut all_cubic, mut all_bbr) = (0.0, 0.0);
    for (&k, res) in ks.iter().zip(&results) {
        let mb = repro_bench::app_mean(&res.apps[..k], |a| a.throughput_bps);
        let mc = repro_bench::app_mean(&res.apps[k..], |a| a.throughput_bps);
        if k == 0 {
            all_cubic = mc;
        }
        if k == 10 {
            all_bbr = mb;
        }
        let contrast = if mb.is_finite() && mc.is_finite() {
            FigCell::value(mb / mc - 1.0, pct(mb / mc - 1.0))
        } else {
            FigCell::missing()
        };
        rep.row(
            t,
            format!("{k}"),
            vec![
                FigCell::value(mb, format!("{:.1}", mb / 1e6)),
                FigCell::value(mc, format!("{:.1}", mc / 1e6)),
                contrast,
            ],
        );
    }
    let t2 = rep.add_table("endpoints", vec!["contrast", "effect"]);
    let tte = all_bbr / all_cubic - 1.0;
    rep.row(
        t2,
        "all-BBR vs all-Cubic mean throughput",
        vec![FigCell::value(tte, pct(tte))],
    );
    rep.note("(paper: both 10% deployments look like big wins; endpoints equal)");
    rep.emit();
}
