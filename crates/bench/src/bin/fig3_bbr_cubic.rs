//! Figure 3: Cubic vs BBR. Deploying *either* algorithm at 10% looks
//! like a huge win in an A/B test; at 100% they are equivalent.
use expstats::table::{pct, Table};
use netsim::config::{AppConfig, CcKind};
use netsim::run_dumbbell;
use repro_bench::{lab_config, mixed_apps};

fn main() {
    println!("Figure 3: 10 connections, k run BBR, 10-k run Cubic (2 BDP buffer)\n");
    let mut t = Table::new(vec![
        "k BBR",
        "tput BBR (M)",
        "tput Cubic (M)",
        "BBR vs Cubic",
    ]);
    let (mut all_cubic, mut all_bbr) = (0.0, 0.0);
    for k in 0..=10 {
        let apps = mixed_apps(10, k, |treated| {
            AppConfig::plain(if treated { CcKind::Bbr } else { CcKind::Cubic })
        });
        let mut cfg = lab_config(apps, 80 + k as u64);
        cfg.buffer_bdp = 2.0; // coexistence regime; see EXPERIMENTS.md
        let res = run_dumbbell(&cfg).unwrap();
        let mb = if k > 0 {
            res.apps[..k].iter().map(|a| a.throughput_bps).sum::<f64>() / k as f64
        } else {
            f64::NAN
        };
        let mc = if k < 10 {
            res.apps[k..].iter().map(|a| a.throughput_bps).sum::<f64>() / (10 - k) as f64
        } else {
            f64::NAN
        };
        if k == 0 {
            all_cubic = mc;
        }
        if k == 10 {
            all_bbr = mb;
        }
        t.row(vec![
            format!("{k}"),
            format!("{:.1}", mb / 1e6),
            format!("{:.1}", mc / 1e6),
            if mb.is_finite() && mc.is_finite() {
                pct(mb / mc - 1.0)
            } else {
                "-".into()
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "all-BBR vs all-Cubic mean throughput: {}",
        pct(all_bbr / all_cubic - 1.0)
    );
    println!("(paper: both 10% deployments look like big wins; endpoints equal)");
}
