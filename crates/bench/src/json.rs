//! Minimal JSON support for the figure harness and the CI gate tools.
//!
//! The workspace is dependency-free by policy (see ROADMAP on the
//! offline shims), so the machine-readable figure reports are emitted
//! and re-read with a small hand-rolled JSON layer: [`escape`] and
//! [`fmt_f64`] on the write side, and a strict recursive-descent
//! [`parse`] on the read side. The parser accepts exactly the RFC 8259
//! grammar (no trailing commas, no comments, no bare NaN) — that
//! strictness is the point: the CI `figure-smoke` job uses it to reject
//! a figure binary that emits malformed output.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is not preserved (sorted); duplicate keys
    /// are rejected at parse time.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (one value plus optional trailing
/// whitespace). Errors carry a byte offset and a short description.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after JSON value"));
    }
    Ok(v)
}

/// Validate without keeping the value.
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(self.err(&format!("duplicate object key \"{key}\"")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            // from_str_radix tolerates a leading sign;
                            // RFC 8259 requires exactly four hex digits.
                            if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
                                return Err(self.err("invalid \\u escape"));
                            }
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced rather than paired:
                            // the harness never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-borrow the full UTF-8 character (the byte-wise
                    // scan above only dispatched on the leading byte).
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 | [1-9][0-9]*
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("unparseable number"))
    }
}

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values become `null` (readers treat them as "not
/// estimable", mirroring how `metric_ci` drops non-finite seeds).
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".into())
        );
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let Value::Arr(items) = v.get("a").unwrap() else {
            panic!("array")
        };
        assert_eq!(items[1], Value::Num(2.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad\\q\"",
            "{\"a\":1}{",
            "{\"dup\":1,\"dup\":2}",
            "NaN",
            "\"\\u+041\"",
            "\"\\u00 1\"",
        ] {
            assert!(validate(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline \"quoted\" \\ tab\t\u{0007} μ±";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap(), Value::Str(original.into()));
    }

    #[test]
    fn fmt_f64_is_valid_json_and_round_trips() {
        for x in [0.0, 1.0, -0.25, 1e-14, std::f64::consts::PI, 1e300] {
            let s = fmt_f64(x);
            assert_eq!(parse(&s).unwrap(), Value::Num(x), "{s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
