//! Deterministic discrete-event simulation kernel.
//!
//! Everything in this workspace that "runs over time" — the packet-level
//! network simulator (`netsim`) and the fluid streaming simulator
//! (`streamsim`) — is driven by this kernel. Design goals, in order:
//!
//! 1. **Determinism.** Identical seeds and configurations produce
//!    bit-identical event orderings. Ties in event time are broken by
//!    insertion order (FIFO), never by heap internals.
//! 2. **Simplicity.** A virtual clock, a binary-heap event queue and a
//!    `Model::handle` callback. No async runtime: simulation is CPU-bound,
//!    and the networking guides are explicit that async buys nothing for
//!    CPU-bound work.
//! 3. **Explicit randomness.** Components draw from [`rng::SimRng`]
//!    streams forked from a root seed, so adding a component never
//!    perturbs the draws seen by others.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fastmath;
pub mod queue;
pub mod rng;
pub mod sim;
pub mod time;

pub use fastmath::fast_exp;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use sim::{Model, Scheduler, Simulation};
pub use time::{SimDuration, SimTime};
