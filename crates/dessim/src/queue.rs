//! The event queue: a priority queue ordered by event time with FIFO
//! tie-breaking for determinism.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // pops first. seq breaks ties in insertion order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same instant pop in the order they were
/// pushed, which keeps simulations reproducible regardless of heap
/// internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for simulation stats).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        let t = |n| SimTime::from_nanos(n);
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_nanos(9), ());
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(3));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
