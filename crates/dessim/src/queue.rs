//! The event queue: a priority queue ordered by event time with FIFO
//! tie-breaking for determinism.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq)
        // pops first. seq breaks ties in insertion order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same instant pop in the order they were
/// pushed, which keeps simulations reproducible regardless of heap
/// internals.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedule `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The earliest pending event without removing it, with its time.
    /// FIFO tie-breaking applies: this is exactly the event the next
    /// [`EventQueue::pop`] would return.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Remove and return the earliest event only if it is due at or
    /// before `t` — the "advance the clock to `t`" primitive hybrid
    /// tick/event drivers drain due events with, leaving the future
    /// calendar untouched.
    pub fn pop_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(due) if due <= t => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for simulation stats).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |s| SimTime::ZERO + SimDuration::from_secs(s);
        q.push(t(3), "c");
        q.push(t(1), "a");
        q.push(t(2), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        let t = |n| SimTime::from_nanos(n);
        q.push(t(10), 1);
        q.push(t(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t(7), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_nanos(9), ());
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(3));
    }

    #[test]
    fn counters_track_activity() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    mod properties {
        //! Property tests for the determinism contract: the queue drains
        //! as a *stable* sort by time — events at equal instants pop in
        //! push order, under any interleaving of pushes and pops. The
        //! hybrid engine's within-tick ordering (hour flush before
        //! arrivals) rides on exactly this guarantee.
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Draining a batch of pushes yields the stable time-sort of
            /// the inputs. Times are drawn from a tiny range so nearly
            /// every case exercises duplicate timestamps.
            #[test]
            fn drain_is_stable_time_sort(times in prop::collection::vec(0u64..8, 1..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(t), i);
                }
                let mut expect: Vec<(u64, usize)> =
                    times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
                // `sort_by_key` is stable: ties keep push order, which is
                // the queue's documented FIFO tie-break.
                expect.sort_by_key(|&(t, _)| t);
                prop_assert_eq!(q.len(), expect.len());
                for &(t, i) in &expect {
                    let (pt, pi) = q.pop().unwrap();
                    prop_assert_eq!(pt, SimTime::from_nanos(t));
                    prop_assert_eq!(pi, i);
                }
                prop_assert!(q.pop().is_none());
                prop_assert_eq!(q.scheduled_total(), times.len() as u64);
            }

            /// Interleaved pushes and pops match a model that re-sorts
            /// (stably) on every pop: a pop mid-stream returns the
            /// earliest (time, push-seq) among events pushed *so far*,
            /// and later pushes at the same instant never jump ahead.
            #[test]
            fn interleaved_push_pop_matches_model(
                ops in prop::collection::vec((0u64..8, prop::bool::weighted(0.4)), 1..200),
            ) {
                let mut q = EventQueue::new();
                let mut model: Vec<(u64, usize)> = Vec::new();
                let mut seq = 0usize;
                for &(t, is_pop) in &ops {
                    if is_pop {
                        let got = q.pop();
                        if model.is_empty() {
                            prop_assert!(got.is_none());
                        } else {
                            let best = *model
                                .iter()
                                .min_by_key(|&&(bt, bs)| (bt, bs))
                                .unwrap();
                            model.retain(|&e| e != best);
                            let (pt, ps) = got.unwrap();
                            prop_assert_eq!(pt, SimTime::from_nanos(best.0));
                            prop_assert_eq!(ps, best.1);
                        }
                    } else {
                        q.push(SimTime::from_nanos(t), seq);
                        model.push((t, seq));
                        seq += 1;
                    }
                    match q.peek() {
                        Some((pt, &pe)) => {
                            let &(bt, bs) =
                                model.iter().min_by_key(|&&(bt, bs)| (bt, bs)).unwrap();
                            prop_assert_eq!(pt, SimTime::from_nanos(bt));
                            prop_assert_eq!(pe, bs);
                        }
                        None => prop_assert!(model.is_empty()),
                    }
                }
            }

            /// `pop_before(t)` drains exactly the due prefix: every event
            /// at or before `t` in stable order, and never one after it.
            #[test]
            fn pop_before_respects_bound(
                times in prop::collection::vec(0u64..16, 1..100),
                bound in 0u64..16,
            ) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_nanos(t), i);
                }
                let cut = SimTime::from_nanos(bound);
                let mut due: Vec<(u64, usize)> = times
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|&(_, t)| t <= bound)
                    .map(|(i, t)| (t, i))
                    .collect();
                due.sort_by_key(|&(t, _)| t);
                for &(t, i) in &due {
                    let (pt, pi) = q.pop_before(cut).unwrap();
                    prop_assert_eq!(pt, SimTime::from_nanos(t));
                    prop_assert_eq!(pi, i);
                }
                prop_assert!(q.pop_before(cut).is_none());
                prop_assert_eq!(q.len(), times.len() - due.len());
            }
        }
    }
}
