//! The simulation driver: pops events in time order and dispatches them to
//! a user-supplied model, which may schedule further events.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Interface between the kernel and a domain model.
///
/// The model owns all domain state; the kernel owns the clock and queue.
/// `handle` receives the current virtual time, one event, and a
/// [`Scheduler`] through which it can enqueue follow-up events.
pub trait Model {
    /// Domain event type.
    type Event;

    /// Process one event. Called exactly once per scheduled event, in
    /// non-decreasing time order.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Handle for scheduling events from inside `Model::handle`.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at an absolute time (clamped to now if earlier,
    /// since the past cannot be scheduled).
    pub fn at(&mut self, time: SimTime, event: E) {
        let t = time.max(self.now);
        self.queue.push(t, event);
    }

    /// Schedule an event `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }
}

/// A running simulation: a model plus the kernel state.
pub struct Simulation<M: Model> {
    /// The domain model (public so callers can inspect state mid-run).
    pub model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
}

impl<M: Model> Simulation<M> {
    /// Wrap a model with an empty queue at time zero.
    pub fn new(model: M) -> Simulation<M> {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seed an initial event before running.
    pub fn schedule(&mut self, time: SimTime, event: M::Event) {
        self.queue.push(time.max(self.now), event);
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            None => false,
            Some((t, ev)) => {
                debug_assert!(t >= self.now, "event queue went backwards in time");
                self.now = t;
                let mut sched = Scheduler {
                    now: t,
                    queue: &mut self.queue,
                };
                self.model.handle(t, ev, &mut sched);
                self.processed += 1;
                true
            }
        }
    }

    /// Run until the queue empties or virtual time would exceed `until`.
    ///
    /// Events scheduled exactly at `until` are processed; later events
    /// stay queued (the simulation can be resumed).
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            self.step();
        }
        self.now = self.now.max(until);
    }

    /// Run until the queue is fully drained.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts ticks and re-schedules itself `limit` times.
    struct Ticker {
        ticks: u64,
        limit: u64,
        times: Vec<SimTime>,
    }

    enum TickEvent {
        Tick,
    }

    impl Model for Ticker {
        type Event = TickEvent;
        fn handle(&mut self, now: SimTime, _ev: TickEvent, sched: &mut Scheduler<TickEvent>) {
            self.ticks += 1;
            self.times.push(now);
            if self.ticks < self.limit {
                sched.after(SimDuration::from_millis(10), TickEvent::Tick);
            }
        }
    }

    #[test]
    fn ticker_runs_to_completion() {
        let mut sim = Simulation::new(Ticker {
            ticks: 0,
            limit: 5,
            times: vec![],
        });
        sim.schedule(SimTime::ZERO, TickEvent::Tick);
        sim.run_to_completion();
        assert_eq!(sim.model.ticks, 5);
        assert_eq!(sim.processed(), 5);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(40));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulation::new(Ticker {
            ticks: 0,
            limit: 100,
            times: vec![],
        });
        sim.schedule(SimTime::ZERO, TickEvent::Tick);
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(25));
        // Ticks at 0, 10, 20 ms processed; 30 ms still pending.
        assert_eq!(sim.model.ticks, 3);
        assert_eq!(sim.pending(), 1);
        // Resume.
        sim.run_until(SimTime::ZERO + SimDuration::from_millis(45));
        assert_eq!(sim.model.ticks, 5);
    }

    #[test]
    fn time_is_monotone() {
        let mut sim = Simulation::new(Ticker {
            ticks: 0,
            limit: 50,
            times: vec![],
        });
        sim.schedule(SimTime::ZERO, TickEvent::Tick);
        sim.run_to_completion();
        let times = &sim.model.times;
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn clock_advances_to_horizon_even_when_idle() {
        let mut sim = Simulation::new(Ticker {
            ticks: 0,
            limit: 1,
            times: vec![],
        });
        sim.schedule(SimTime::ZERO, TickEvent::Tick);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(10));
    }

    /// Model used to verify same-time FIFO dispatch.
    struct Recorder {
        seen: Vec<u32>,
    }

    impl Model for Recorder {
        type Event = u32;
        fn handle(&mut self, _now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
            self.seen.push(ev);
        }
    }

    #[test]
    fn same_time_events_dispatch_fifo() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        let t = SimTime::from_nanos(5);
        for i in 0..20 {
            sim.schedule(t, i);
        }
        sim.run_to_completion();
        assert_eq!(sim.model.seen, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        struct PastScheduler {
            fired: Vec<SimTime>,
        }
        impl Model for PastScheduler {
            type Event = bool;
            fn handle(&mut self, now: SimTime, first: bool, sched: &mut Scheduler<bool>) {
                self.fired.push(now);
                if first {
                    // Attempt to schedule in the past: must clamp to now.
                    sched.at(SimTime::ZERO, false);
                }
            }
        }
        let mut sim = Simulation::new(PastScheduler { fired: vec![] });
        sim.schedule(SimTime::from_nanos(100), true);
        sim.run_to_completion();
        assert_eq!(sim.model.fired.len(), 2);
        assert_eq!(sim.model.fired[1], SimTime::from_nanos(100));
    }
}
