//! Fast scalar math for simulation hot loops.
//!
//! [`fast_exp`] exists because the streaming simulator redraws a
//! lognormal chunk-noise factor at every chunk boundary — tens of
//! millions of `exp` calls per five-day run, where libm's `exp` was
//! measured at ~12 ns/call and ~45% of the whole boundary slow path.
//! The table-driven version below is ~3× faster at ~1e-14 relative
//! accuracy (tens of ulps), far below the simulator's statistical
//! noise floor. It is a
//! *deterministic, portable* function (pure f64 arithmetic and table
//! lookups, no platform intrinsics), so results remain bit-identical
//! across machines and between the scalar reference client and the SoA
//! arena, both of which call it.

/// `2^(j/32)` for `j = 0..32`, correctly rounded.
const EXP2_TAB: [f64; 32] = [
    f64::from_bits(0x3ff0000000000000),
    f64::from_bits(0x3ff059b0d3158574),
    f64::from_bits(0x3ff0b5586cf9890f),
    f64::from_bits(0x3ff11301d0125b51),
    f64::from_bits(0x3ff172b83c7d517b),
    f64::from_bits(0x3ff1d4873168b9aa),
    f64::from_bits(0x3ff2387a6e756238),
    f64::from_bits(0x3ff29e9df51fdee1),
    f64::from_bits(0x3ff306fe0a31b715),
    f64::from_bits(0x3ff371a7373aa9cb),
    f64::from_bits(0x3ff3dea64c123422),
    f64::from_bits(0x3ff44e086061892d),
    f64::from_bits(0x3ff4bfdad5362a27),
    f64::from_bits(0x3ff5342b569d4f82),
    f64::from_bits(0x3ff5ab07dd485429),
    f64::from_bits(0x3ff6247eb03a5585),
    f64::from_bits(0x3ff6a09e667f3bcd),
    f64::from_bits(0x3ff71f75e8ec5f74),
    f64::from_bits(0x3ff7a11473eb0187),
    f64::from_bits(0x3ff82589994cce13),
    f64::from_bits(0x3ff8ace5422aa0db),
    f64::from_bits(0x3ff93737b0cdc5e5),
    f64::from_bits(0x3ff9c49182a3f090),
    f64::from_bits(0x3ffa5503b23e255d),
    f64::from_bits(0x3ffae89f995ad3ad),
    f64::from_bits(0x3ffb7f76f2fb5e47),
    f64::from_bits(0x3ffc199bdd85529c),
    f64::from_bits(0x3ffcb720dcef9069),
    f64::from_bits(0x3ffd5818dcfba487),
    f64::from_bits(0x3ffdfc97337b9b5f),
    f64::from_bits(0x3ffea4afa2a490da),
    f64::from_bits(0x3fff50765b6e4540),
];

/// `32 / ln 2`.
const INV_LN2_32: f64 = 46.16624130844683;
/// `ln 2 / 32`, split into a 26-bit head and a correction tail so the
/// range reduction `x − k·(HI+LO)` is exact to well below an ulp of r.
const LN2_32_HI: f64 = 0.021_660_849_219_188_094;
const LN2_32_LO: f64 = 1.733_101_960_554_872_5e-10;

/// `e^x` to within ~1e-14 relative error (tens of ulps; the property
/// tests bound the worst case), ~3× faster than libm.
///
/// Strategy: write `x = (32n + j)·ln2/32 + r` with `|r| ≤ ln2/64`, then
/// `e^x = 2^n · 2^(j/32) · e^r`, where `e^r` needs only a degree-5
/// Taylor polynomial (truncation ~3·10⁻¹⁵ relative, the dominant error
/// term together with the reduction rounding) and `2^n` is exponent
/// bit arithmetic. Inputs outside `±700` (including NaN/∞) fall back to
/// the libm `exp` so the edge behavior is unchanged.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    if x.is_nan() || x.abs() > 700.0 {
        // NaN, infinities, and magnitudes near the overflow/underflow
        // boundary: take libm's slow-but-careful path.
        return x.exp();
    }
    let kf = (x * INV_LN2_32).round();
    let k = kf as i64;
    let j = (k & 31) as usize;
    let n = (k - j as i64) >> 5;
    let r = (x - kf * LN2_32_HI) - kf * LN2_32_LO;
    // e^r by Horner; |r| ≤ 0.01083 so five terms reach f64 precision.
    let p = 1.0 + r * (1.0 + r * (0.5 + r * (1.0 / 6.0 + r * (1.0 / 24.0 + r * (1.0 / 120.0)))));
    let two_n = f64::from_bits(((n + 1023) as u64) << 52);
    EXP2_TAB[j] * p * two_n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    fn rel_err(a: f64, b: f64) -> f64 {
        if b == 0.0 {
            a.abs()
        } else {
            ((a - b) / b).abs()
        }
    }

    #[test]
    fn matches_libm_on_grid() {
        // Dense sweep over the simulator's realistic argument range and
        // a coarser one over the full guarded range.
        let mut worst = 0.0f64;
        let mut x = -5.0;
        while x <= 5.0 {
            worst = worst.max(rel_err(fast_exp(x), x.exp()));
            x += 1e-3;
        }
        assert!(worst < 1e-14, "worst relative error {worst:.3e}");
        let mut x = -700.0;
        while x <= 700.0 {
            worst = worst.max(rel_err(fast_exp(x), x.exp()));
            x += 0.37;
        }
        assert!(worst < 1e-13, "worst relative error {worst:.3e}");
    }

    #[test]
    fn matches_libm_on_random_inputs() {
        let mut rng = SimRng::new(99);
        let mut worst = 0.0f64;
        for _ in 0..200_000 {
            let x = rng.uniform(-30.0, 30.0);
            worst = worst.max(rel_err(fast_exp(x), x.exp()));
        }
        assert!(worst < 1e-14, "worst relative error {worst:.3e}");
    }

    #[test]
    fn edge_cases_delegate_to_libm() {
        assert!(fast_exp(f64::NAN).is_nan());
        assert_eq!(fast_exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert_eq!(fast_exp(800.0), f64::INFINITY);
        assert_eq!(fast_exp(-800.0), 0.0);
        assert_eq!(fast_exp(0.0), 1.0);
        // Exact powers of two at table boundaries.
        assert_eq!(fast_exp(std::f64::consts::LN_2), 2.0);
    }

    #[test]
    fn deterministic() {
        for x in [-3.2, -0.045, 0.0, 0.45, 2.1] {
            assert_eq!(fast_exp(x).to_bits(), fast_exp(x).to_bits());
        }
    }
}
