//! Virtual time: nanosecond-resolution instants and durations.
//!
//! Integer nanoseconds avoid the accumulation error of floating-point
//! clocks and make event ordering exact. At `u64` width the clock can
//! represent ~584 years of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since an earlier instant.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "SimTime::since: earlier is after self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiply by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Scale by a float factor, clamping at zero.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_invalid() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let u = t + SimDuration::from_millis(500);
        assert_eq!(u.since(t), SimDuration::from_millis(500));
        assert_eq!(u - t, SimDuration::from_millis(500));
        assert!(t < u);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(2).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(10)), "10ns");
        assert_eq!(format!("{}", SimDuration::from_micros(10)), "10.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(10)), "10.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(10)), "10.000s");
    }
}
