//! Seeded random-number streams for simulation components.
//!
//! Each component forks its own [`SimRng`] from a root seed, so
//! adding/removing a component never shifts the random draws any other
//! component sees — a prerequisite for meaningful A/B comparisons between
//! simulation runs.

/// A deterministic random stream.
///
/// Wraps a fast non-cryptographic generator (xoshiro256++, seeded via
/// SplitMix64 — self-contained so the workspace builds offline) and
/// layers on the distributions the simulators need (exponential,
/// normal, Pareto — implemented here rather than pulling in
/// `rand_distr`).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// Ziggurat layer count (indexed by 8 random bits).
const ZIG_LAYERS: usize = 256;
/// Right edge of the rightmost rectangular layer.
const ZIG_R: f64 = 3.654_152_885_361_009;
/// Common area of every layer (the bottom layer's area includes the
/// tail beyond `ZIG_R`).
const ZIG_V: f64 = 0.004_928_673_233_974_658;

/// Precomputed ziggurat tables for the standard normal: `x[i]` is the
/// right edge of layer `i` (descending; `x[0] = V/f(R)` is the bottom
/// layer's pseudo-edge, `x[1] = R`, `x[256] = 0`), `f[i] = exp(-x[i]²/2)`.
struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    f: [f64; ZIG_LAYERS + 1],
}

/// Tables are built once at first use (exp/ln are not const-evaluable);
/// afterwards each draw pays one atomic load to fetch the reference.
fn zig_tables() -> &'static ZigTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |x: f64| (-0.5 * x * x).exp();
        let mut x = [0.0; ZIG_LAYERS + 1];
        let mut f = [0.0; ZIG_LAYERS + 1];
        x[0] = ZIG_V / pdf(ZIG_R);
        x[1] = ZIG_R;
        // Each layer has area V: x[i] · (f(x[i+1]) − f(x[i])) = V, solved
        // downward from the outermost edge.
        for i in 2..ZIG_LAYERS {
            let prev = x[i - 1];
            x[i] = (-2.0 * (ZIG_V / prev + pdf(prev)).ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        for i in 0..=ZIG_LAYERS {
            f[i] = pdf(x[i]);
        }
        ZigTables { x, f }
    })
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        // Expand the seed through SplitMix64, per the xoshiro authors'
        // recommendation; guarantees a non-zero state.
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Fork an independent child stream (reproducibly derived from this
    /// stream's state).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Uniform float in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform: lo must not exceed hi");
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift; the
    /// ~2^-64 modulo bias is irrelevant at simulation scales).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below: bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform01() < p.clamp(0.0, 1.0)
    }

    /// Exponential with the given rate (mean `1/rate`).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0, "exponential: rate must be positive");
        // Inverse transform; 1-U avoids ln(0).
        -(1.0 - self.uniform01()).ln() / rate
    }

    /// Standard normal via the ziggurat method (Marsaglia–Tsang, 256
    /// layers): ~99% of draws cost one `next_u64`, two table loads, a
    /// multiply and a compare — no transcendentals. This is the
    /// simulator's dominant sampler (per-chunk throughput noise), so the
    /// log/sqrt/cos of Box–Muller were a measurable fraction of the
    /// streaming hot loop. [`SimRng::standard_normal_boxmuller`] is the
    /// retained reference implementation; `tests/sampler_properties.rs`
    /// proves distributional agreement (moments, tail mass, KS).
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        let tables = zig_tables();
        loop {
            let bits = self.next_u64();
            // 8 bits pick the layer, 53 bits make a signed uniform in
            // [-1, 1); the three bits in between stay unused so the two
            // are independent.
            let i = (bits & 0xFF) as usize;
            let u = (bits >> 11) as f64 * (1.0 / (1u64 << 52) as f64) - 1.0;
            let x = u * tables.x[i];
            if x.abs() < tables.x[i + 1] {
                return x; // wholly inside layer i: accept (~99%)
            }
            if i == 0 {
                return self.normal_tail(u < 0.0);
            }
            // Wedge between the inscribed and circumscribed rectangles:
            // draw y uniform over the layer's density span and accept
            // where it falls under the true density. Note the edges: x
            // descends with the layer index, so `f[i]` is the *lower*
            // density edge and `f[i+1]` the upper.
            let f_lower = tables.f[i];
            let f_upper = tables.f[i + 1];
            if f_upper + (f_lower - f_upper) * self.uniform01() < (-0.5 * x * x).exp() {
                return x;
            }
        }
    }

    /// Marsaglia's exact tail sampler for `|x| > ZIG_R` (the layer-0
    /// overflow case of the ziggurat; ~0.03% of draws).
    #[cold]
    fn normal_tail(&mut self, negative: bool) -> f64 {
        loop {
            // 1-U keeps the logs finite: uniform01 is [0,1).
            let x = (1.0 - self.uniform01()).ln() / ZIG_R; // <= 0
            let y = (1.0 - self.uniform01()).ln(); // <= 0
            if -2.0 * y >= x * x {
                return if negative { x - ZIG_R } else { ZIG_R - x };
            }
        }
    }

    /// Standard normal via the Box–Muller transform — the reference
    /// implementation the ziggurat sampler is property-tested against.
    /// Costs a log, a sqrt and a cosine per draw; prefer
    /// [`SimRng::standard_normal`] in hot paths.
    #[inline]
    pub fn standard_normal_boxmuller(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform01(); // (0,1]
        let u2: f64 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        debug_assert!(sd >= 0.0, "normal: sd must be non-negative");
        mean + sd * self.standard_normal()
    }

    /// Log-normal: `exp(N(mu, sigma))` (parameters on the log scale).
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto with scale `x_min > 0` and shape `alpha > 0` (heavy-tailed
    /// file sizes / session durations).
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0, "pareto: invalid parameters");
        x_min / (1.0 - self.uniform01()).powf(1.0 / alpha)
    }

    /// Raw 64-bit draw (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_do_not_collide() {
        let mut root = SimRng::new(1);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::new(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(9);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn ziggurat_tables_well_formed() {
        let t = zig_tables();
        // Edges descend strictly from x[0] > R down to 0.
        assert!(t.x[0] > t.x[1]);
        assert_eq!(t.x[1], ZIG_R);
        assert_eq!(t.x[ZIG_LAYERS], 0.0);
        for w in t.x.windows(2) {
            assert!(w[0] > w[1], "edges must descend: {} vs {}", w[0], w[1]);
        }
        // Every rectangular layer i >= 1 has area V.
        for i in 1..ZIG_LAYERS {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!((area - ZIG_V).abs() < 1e-12, "layer {i} area {area}");
        }
        // The bottom layer's rectangle-plus-tail also has area V:
        // x[0]·f(R) = R·f(R) + tail, by construction of x[0].
        assert!((t.x[0] * t.f[1] - ZIG_V).abs() < 1e-15);
    }

    #[test]
    fn ziggurat_moments_match_reference() {
        // Same moments as Box–Muller from independent streams (the
        // full distributional property suite lives in
        // tests/sampler_properties.rs).
        let n = 400_000;
        let mut zig = SimRng::new(21);
        let mut bm = SimRng::new(22);
        let stats = |xs: &[f64]| {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
            (mean, var)
        };
        let zs: Vec<f64> = (0..n).map(|_| zig.standard_normal()).collect();
        let bs: Vec<f64> = (0..n).map(|_| bm.standard_normal_boxmuller()).collect();
        let (zm, zv) = stats(&zs);
        let (bm_mean, bv) = stats(&bs);
        assert!(zm.abs() < 0.01, "ziggurat mean {zm}");
        assert!((zv - 1.0).abs() < 0.02, "ziggurat var {zv}");
        assert!((zm - bm_mean).abs() < 0.02);
        assert!((zv - bv).abs() < 0.04);
    }

    #[test]
    fn ziggurat_tail_mass() {
        // P(|Z| > 3.6541...) ≈ 2.58e-4: the tail path must fire and
        // produce values beyond R on both sides.
        let mut r = SimRng::new(23);
        let n = 2_000_000;
        let mut beyond_pos = 0usize;
        let mut beyond_neg = 0usize;
        for _ in 0..n {
            let z = r.standard_normal();
            if z > ZIG_R {
                beyond_pos += 1;
            } else if z < -ZIG_R {
                beyond_neg += 1;
            }
        }
        let frac = (beyond_pos + beyond_neg) as f64 / n as f64;
        assert!(
            (1e-4..6e-4).contains(&frac),
            "tail mass {frac} (pos {beyond_pos}, neg {beyond_neg})"
        );
        assert!(beyond_pos > 0 && beyond_neg > 0);
    }

    #[test]
    fn ziggurat_deterministic_per_seed() {
        let mut a = SimRng::new(31);
        let mut b = SimRng::new(31);
        for _ in 0..10_000 {
            assert_eq!(a.standard_normal().to_bits(), b.standard_normal().to_bits());
        }
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(13);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(17);
        for _ in 0..10_000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
