//! Seeded random-number streams for simulation components.
//!
//! Each component forks its own [`SimRng`] from a root seed, so
//! adding/removing a component never shifts the random draws any other
//! component sees — a prerequisite for meaningful A/B comparisons between
//! simulation runs.

/// A deterministic random stream.
///
/// Wraps a fast non-cryptographic generator (xoshiro256++, seeded via
/// SplitMix64 — self-contained so the workspace builds offline) and
/// layers on the distributions the simulators need (exponential,
/// normal, Pareto — implemented here rather than pulling in
/// `rand_distr`).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        // Expand the seed through SplitMix64, per the xoshiro authors'
        // recommendation; guarantees a non-zero state.
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Fork an independent child stream (reproducibly derived from this
    /// stream's state).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Uniform float in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform: lo must not exceed hi");
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift; the
    /// ~2^-64 modulo bias is irrelevant at simulation scales).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below: bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform01() < p.clamp(0.0, 1.0)
    }

    /// Exponential with the given rate (mean `1/rate`).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0, "exponential: rate must be positive");
        // Inverse transform; 1-U avoids ln(0).
        -(1.0 - self.uniform01()).ln() / rate
    }

    /// Standard normal via the Box–Muller transform.
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform01(); // (0,1]
        let u2: f64 = self.uniform01();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Two independent standard normals from one Box–Muller transform
    /// (the cosine and sine branches share the log/sqrt radius work, so
    /// hot loops that consume normals in bulk pay half the
    /// transcendental cost). The first element is bit-identical to what
    /// [`SimRng::standard_normal`] would have returned from the same
    /// state.
    #[inline]
    pub fn standard_normal_pair(&mut self) -> (f64, f64) {
        let u1: f64 = 1.0 - self.uniform01(); // (0,1]
        let u2: f64 = self.uniform01();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        (r * theta.cos(), r * theta.sin())
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        debug_assert!(sd >= 0.0, "normal: sd must be non-negative");
        mean + sd * self.standard_normal()
    }

    /// Log-normal: `exp(N(mu, sigma))` (parameters on the log scale).
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto with scale `x_min > 0` and shape `alpha > 0` (heavy-tailed
    /// file sizes / session durations).
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        debug_assert!(x_min > 0.0 && alpha > 0.0, "pareto: invalid parameters");
        x_min / (1.0 - self.uniform01()).powf(1.0 / alpha)
    }

    /// Raw 64-bit draw (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_do_not_collide() {
        let mut root = SimRng::new(1);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::new(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(9);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(13);
        for _ in 0..10_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(17);
        for _ in 0..10_000 {
            let x = r.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
