//! The simulation drivers: one link ([`LinkSim`]) and the paired-link
//! world ([`PairedSim`]) of §4.

use crate::abr::Ladder;
use crate::client::Client;
use crate::config::StreamConfig;
use crate::demand::DiurnalDemand;
use crate::link::FluidLink;
use crate::scenario::AllocationSchedule;
use crate::session::{LinkId, SessionRecord};
use dessim::SimRng;

/// Hourly aggregate of link state (for the time-series figures).
#[derive(Debug, Clone, Copy)]
pub struct HourlyLinkStats {
    /// Simulation day.
    pub day: usize,
    /// Local hour.
    pub hour: usize,
    /// Mean utilization over the hour.
    pub utilization: f64,
    /// Mean RTT over the hour, seconds.
    pub rtt_s: f64,
    /// Mean concurrent active sessions.
    pub concurrent: f64,
    /// Mean loss fraction.
    pub loss: f64,
}

/// One streaming link plus its active session population.
pub struct LinkSim {
    cfg: StreamConfig,
    link_id: LinkId,
    ladder: Ladder,
    link: FluidLink,
    demand: DiurnalDemand,
    schedule: AllocationSchedule,
    clients: Vec<Client>,
    records: Vec<SessionRecord>,
    hourly: Vec<HourlyLinkStats>,
    // Accumulators for the current hour.
    acc_util: f64,
    acc_rtt: f64,
    acc_conc: f64,
    acc_loss: f64,
    acc_ticks: usize,
    current_hour: (usize, usize),
    now_s: f64,
    rng: SimRng,
}

impl LinkSim {
    /// Build a link world. `schedule` decides each arriving session's arm.
    pub fn new(
        cfg: StreamConfig,
        link_id: LinkId,
        schedule: AllocationSchedule,
        seed: u64,
    ) -> LinkSim {
        let ladder = Ladder::new(cfg.ladder_bps.clone());
        let link = FluidLink::new(cfg.capacity_bps, cfg.base_rtt_s, cfg.queue_capacity_s);
        let demand = DiurnalDemand::paper_week(cfg.peak_arrivals_per_s);
        LinkSim {
            link_id,
            ladder,
            link,
            demand,
            schedule,
            clients: Vec::new(),
            records: Vec::new(),
            hourly: Vec::new(),
            acc_util: 0.0,
            acc_rtt: 0.0,
            acc_conc: 0.0,
            acc_loss: 0.0,
            acc_ticks: 0,
            current_hour: (0, 0),
            now_s: 0.0,
            rng: SimRng::new(seed),
            cfg,
        }
    }

    /// Current number of active sessions.
    pub fn active_sessions(&self) -> usize {
        self.clients.len()
    }

    /// Advance one tick.
    pub fn step(&mut self) {
        let dt = self.cfg.dt_s;
        let day = DiurnalDemand::day_index(self.now_s);
        let hour = DiurnalDemand::hour_of_day(self.now_s);

        // Hour rollover: flush aggregates.
        if (day, hour) != self.current_hour && self.acc_ticks > 0 {
            self.flush_hour();
        }
        self.current_hour = (day, hour);

        // Arrivals.
        let n_arrivals = self.demand.arrivals(self.now_s, dt, &mut self.rng);
        let p = self.schedule.allocation(day);
        let share_now = self.link.capacity_bps() / (self.clients.len() as f64 + 1.0).max(1.0);
        for _ in 0..n_arrivals {
            let treated = self.rng.bernoulli(p);
            let child = self.rng.fork();
            self.clients.push(Client::new(
                &self.cfg,
                &self.ladder,
                self.link_id,
                day,
                hour,
                self.demand.is_weekend(day),
                self.now_s,
                treated,
                share_now.min(self.cfg.session_max_bps),
                child,
            ));
        }

        // Bandwidth allocation.
        let demands: Vec<f64> = self
            .clients
            .iter()
            .map(|c| c.demand(&self.cfg).rate_bps)
            .collect();
        let shares = self.link.allocate(&demands, dt);
        let rtt = self.link.rtt_s();
        let loss = self.link.loss();

        // Client progress; collect finished sessions.
        let mut i = 0;
        while i < self.clients.len() {
            let done = self.clients[i].step(
                &self.cfg,
                &self.ladder,
                shares[i],
                rtt,
                loss,
                self.now_s + dt,
                dt,
            );
            if let Some(rec) = done {
                self.records.push(rec);
                self.clients.swap_remove(i);
                // swap_remove moved the last share too — but shares were
                // consumed this tick already, so just continue.
            } else {
                i += 1;
            }
        }

        // Hourly accumulators.
        self.acc_util += self.link.utilization();
        self.acc_rtt += rtt;
        self.acc_conc += self.clients.len() as f64;
        self.acc_loss += loss;
        self.acc_ticks += 1;

        self.now_s += dt;
    }

    fn flush_hour(&mut self) {
        let n = self.acc_ticks.max(1) as f64;
        self.hourly.push(HourlyLinkStats {
            day: self.current_hour.0,
            hour: self.current_hour.1,
            utilization: self.acc_util / n,
            rtt_s: self.acc_rtt / n,
            concurrent: self.acc_conc / n,
            loss: self.acc_loss / n,
        });
        self.acc_util = 0.0;
        self.acc_rtt = 0.0;
        self.acc_conc = 0.0;
        self.acc_loss = 0.0;
        self.acc_ticks = 0;
    }

    /// Run to the configured horizon and return all session records plus
    /// hourly link statistics.
    pub fn run(mut self) -> (Vec<SessionRecord>, Vec<HourlyLinkStats>) {
        let horizon = self.cfg.horizon_s();
        while self.now_s < horizon {
            self.step();
        }
        if self.acc_ticks > 0 {
            self.flush_hour();
        }
        (self.records, self.hourly)
    }
}

/// The paired-link world: two statistically similar links driven by
/// *independent draws from the same demand process*, with configurable
/// small imbalances (§4.1: +5% traffic and a rebuffer quirk on link 1).
pub struct PairedSim {
    /// Shared configuration (links may override bias fields).
    pub cfg: StreamConfig,
    /// Allocation schedule per link.
    pub schedules: [AllocationSchedule; 2],
    /// Arrival-rate multipliers per link (paper: 50.8% vs 49.2% ⇒
    /// roughly 1.03 : 0.97 around the mean).
    pub arrival_bias: [f64; 2],
    /// Rebuffer-noise bias per link (paper: link 1 ~20% more rebuffers).
    pub rebuffer_bias: [f64; 2],
    /// Root seed.
    pub seed: u64,
}

/// Everything a paired run produces.
pub struct PairedRun {
    /// Session records from both links.
    pub sessions: Vec<SessionRecord>,
    /// Hourly link stats per link.
    pub hourly: [Vec<HourlyLinkStats>; 2],
}

impl PairedSim {
    /// Symmetric paired world with the paper's reported imbalances.
    pub fn with_paper_biases(
        cfg: StreamConfig,
        schedules: [AllocationSchedule; 2],
        seed: u64,
    ) -> PairedSim {
        PairedSim {
            cfg,
            schedules,
            arrival_bias: [1.01, 0.99],
            rebuffer_bias: [1.3, 1.0],
            seed,
        }
    }

    /// Run both links (sequentially; each has its own RNG stream).
    pub fn run(self) -> PairedRun {
        let mut root = SimRng::new(self.seed);
        let seeds = [root.next_u64(), root.next_u64()];
        let mut all = Vec::new();
        let mut hourly = [Vec::new(), Vec::new()];
        for (idx, link_id) in [LinkId::One, LinkId::Two].into_iter().enumerate() {
            let mut cfg = self.cfg.clone();
            cfg.peak_arrivals_per_s *= self.arrival_bias[idx];
            cfg.rebuffer_bias = self.rebuffer_bias[idx];
            let sim = LinkSim::new(cfg, link_id, self.schedules[idx].clone(), seeds[idx]);
            let (mut recs, hstats) = sim.run();
            all.append(&mut recs);
            hourly[idx] = hstats;
        }
        PairedRun {
            sessions: all,
            hourly,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast world: one day, modest load, scaled-down link.
    /// Arrivals scale with capacity so the congestion regime matches the
    /// default configuration's (peak demand ≈ 1.2× capacity uncapped).
    fn small_cfg() -> StreamConfig {
        StreamConfig {
            days: 1,
            peak_arrivals_per_s: 0.24 * 0.4,
            capacity_bps: 400e6,
            mean_watch_s: 1500.0,
            ..Default::default()
        }
    }

    #[test]
    fn sessions_complete_and_record() {
        let sim = LinkSim::new(small_cfg(), LinkId::One, AllocationSchedule::none(), 1);
        let (records, hourly) = sim.run();
        assert!(records.len() > 1000, "records {}", records.len());
        assert_eq!(hourly.len(), 24);
        // Sanity: all records carry valid hours/days and positive bytes
        // for non-cancelled sessions.
        for r in &records {
            assert!(r.hour < 24);
            assert_eq!(r.day, 0);
            if !r.cancelled {
                assert!(r.bytes > 0.0, "{r:?}");
                assert!(r.bitrate_bps >= 235e3);
            }
        }
    }

    #[test]
    fn peak_hours_are_congested() {
        let cfg = small_cfg();
        let sim = LinkSim::new(cfg, LinkId::One, AllocationSchedule::none(), 2);
        let (_, hourly) = sim.run();
        let peak = &hourly[20]; // 20:00
        let trough = &hourly[4]; // 04:00
        assert!(peak.utilization > 0.95, "peak util {}", peak.utilization);
        assert!(
            trough.utilization < 0.5,
            "trough util {}",
            trough.utilization
        );
        assert!(peak.rtt_s > trough.rtt_s, "queueing delay at peak");
    }

    #[test]
    fn capping_everyone_reduces_congestion() {
        // The headline mechanism: at high allocation the link carries the
        // same users with less traffic, so peak RTT and loss drop.
        let cfg = small_cfg();
        let uncapped = LinkSim::new(
            cfg.clone(),
            LinkId::One,
            AllocationSchedule::Constant(0.0),
            3,
        );
        let capped = LinkSim::new(cfg, LinkId::One, AllocationSchedule::Constant(0.95), 3);
        let (_, h_un) = uncapped.run();
        let (_, h_cap) = capped.run();
        let peak_rtt_un: f64 = (18..23).map(|h| h_un[h].rtt_s).sum::<f64>() / 5.0;
        let peak_rtt_cap: f64 = (18..23).map(|h| h_cap[h].rtt_s).sum::<f64>() / 5.0;
        assert!(
            peak_rtt_cap < peak_rtt_un * 0.9,
            "capped peak RTT {peak_rtt_cap} vs uncapped {peak_rtt_un}"
        );
    }

    #[test]
    fn allocation_fraction_respected() {
        let sim = LinkSim::new(
            small_cfg(),
            LinkId::One,
            AllocationSchedule::Constant(0.3),
            4,
        );
        let (records, _) = sim.run();
        let treated = records.iter().filter(|r| r.treated).count() as f64;
        let frac = treated / records.len() as f64;
        assert!((frac - 0.3).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn paired_links_similar_at_baseline() {
        let cfg = small_cfg();
        let paired = PairedSim::with_paper_biases(
            cfg,
            [AllocationSchedule::none(), AllocationSchedule::none()],
            7,
        );
        let run = paired.run();
        let (l1, l2): (Vec<_>, Vec<_>) = run.sessions.iter().partition(|r| r.link == LinkId::One);
        assert!(!l1.is_empty() && !l2.is_empty());
        // Similar session volumes (within the configured ~5% bias + noise)...
        let ratio = l1.len() as f64 / l2.len() as f64;
        assert!((0.9..1.25).contains(&ratio), "volume ratio {ratio}");
        // ...similar mean throughput...
        let t1: f64 = l1.iter().map(|r| r.throughput_bps).sum::<f64>() / l1.len() as f64;
        let t2: f64 = l2.iter().map(|r| r.throughput_bps).sum::<f64>() / l2.len() as f64;
        assert!((t1 / t2 - 1.0).abs() < 0.1, "throughput ratio {}", t1 / t2);
        // ...but link 1 rebuffers more (the §4.1 quirk).
        let rb1: f64 = l1.iter().map(|r| r.rebuffer_indicator()).sum::<f64>() / l1.len() as f64;
        let rb2: f64 = l2.iter().map(|r| r.rebuffer_indicator()).sum::<f64>() / l2.len() as f64;
        assert!(rb1 > rb2, "rebuffer rates {rb1} vs {rb2}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let sim = LinkSim::new(
                small_cfg(),
                LinkId::One,
                AllocationSchedule::Constant(0.5),
                seed,
            );
            let (records, _) = sim.run();
            (records.len(), records.iter().map(|r| r.bytes).sum::<f64>())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
