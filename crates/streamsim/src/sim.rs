//! The simulation drivers: one link ([`LinkSim`]) and the paired-link
//! world ([`PairedSim`]) of §4.

use crate::abr::Ladder;
use crate::arena::{ClientArena, SpanArrival};
use crate::client::Client;
use crate::config::StreamConfig;
use crate::demand::DiurnalDemand;
use crate::engine::EngineBackend;
use crate::link::FluidLink;
use crate::scenario::AllocationSchedule;
use crate::session::{LinkId, SessionRecord};
use dessim::SimRng;

/// Hourly aggregate of link state (for the time-series figures).
#[derive(Debug, Clone, Copy)]
pub struct HourlyLinkStats {
    /// Simulation day.
    pub day: usize,
    /// Local hour.
    pub hour: usize,
    /// Mean utilization over the hour.
    pub utilization: f64,
    /// Mean RTT over the hour, seconds.
    pub rtt_s: f64,
    /// Mean concurrent active sessions.
    pub concurrent: f64,
    /// Mean loss fraction.
    pub loss: f64,
}

/// One streaming link plus its active session population.
///
/// The tick pipeline is allocation-free in steady state: the session
/// population lives in a struct-of-arrays [`ClientArena`] (hot fields as
/// contiguous columns, cold identity in a side table), all the `Vec`s
/// below are persistent scratch buffers, and the demand-sorted
/// permutation the water-filling allocator consumes is maintained
/// incrementally instead of re-sorted every tick. The key structural
/// fact (see [`Client::demand`]) is that a session's demand is
/// *two-valued*: its access-capped rate — constant for the session's
/// lifetime — or zero while it idles on a full buffer. So `by_peak`
/// keeps the session indices sorted by that static peak demand (binary
/// insertion on arrival, order-preserving remap on exit), and each tick
/// a single stable partition pass — idle sessions first, then the rest
/// in `by_peak` order — yields a permutation that sorts the *current*
/// demands, with zero comparisons of floats that didn't change.
pub struct LinkSim {
    // Fields are crate-visible so the hybrid tick/event driver in
    // `crate::engine` can share the tick loop's state verbatim.
    pub(crate) cfg: StreamConfig,
    pub(crate) link_id: LinkId,
    pub(crate) ladder: Ladder,
    pub(crate) link: FluidLink,
    pub(crate) demand: DiurnalDemand,
    pub(crate) schedule: AllocationSchedule,
    pub(crate) arena: ClientArena,
    pub(crate) records: Vec<SessionRecord>,
    pub(crate) hourly: Vec<HourlyLinkStats>,
    // Persistent hot-loop buffers (see struct docs).
    pub(crate) shares: Vec<f64>,
    pub(crate) by_peak: Vec<usize>,
    pub(crate) order: Vec<usize>,
    pub(crate) finished: Vec<bool>,
    pub(crate) remap: Vec<usize>,
    // Accumulators for the current hour.
    pub(crate) acc_util: f64,
    pub(crate) acc_rtt: f64,
    pub(crate) acc_conc: f64,
    pub(crate) acc_loss: f64,
    pub(crate) acc_ticks: usize,
    pub(crate) current_hour: (usize, usize),
    pub(crate) now_s: f64,
    pub(crate) rng: SimRng,
}

impl LinkSim {
    /// Build a link world. `schedule` decides each arriving session's arm.
    ///
    /// Panics on an invalid schedule (empty `PerDay`, out-of-range
    /// allocations — see [`AllocationSchedule::validate`]): an empty
    /// schedule used to silently run the whole horizon untreated.
    pub fn new(
        cfg: StreamConfig,
        link_id: LinkId,
        schedule: AllocationSchedule,
        seed: u64,
    ) -> LinkSim {
        if let Err(e) = schedule.validate() {
            panic!("LinkSim::new: invalid allocation schedule: {e}");
        }
        let ladder = Ladder::new(cfg.ladder_bps.clone());
        let link = FluidLink::new(cfg.capacity_bps, cfg.base_rtt_s, cfg.queue_capacity_s);
        let demand = DiurnalDemand::paper_week(cfg.peak_arrivals_per_s);
        LinkSim {
            link_id,
            ladder,
            link,
            demand,
            schedule,
            arena: ClientArena::new(),
            records: Vec::new(),
            hourly: Vec::new(),
            shares: Vec::new(),
            by_peak: Vec::new(),
            order: Vec::new(),
            finished: Vec::new(),
            remap: Vec::new(),
            acc_util: 0.0,
            acc_rtt: 0.0,
            acc_conc: 0.0,
            acc_loss: 0.0,
            acc_ticks: 0,
            current_hour: (0, 0),
            now_s: 0.0,
            rng: SimRng::new(seed),
            cfg,
        }
    }

    /// Current number of active sessions.
    pub fn active_sessions(&self) -> usize {
        self.arena.live_sessions()
    }

    /// Session records completed so far.
    pub fn records(&self) -> &[SessionRecord] {
        &self.records
    }

    /// Insert an already-constructed client into the active population.
    /// Normal arrivals come from the demand process; this hook exists
    /// for hand-built scenarios (tests, tooling).
    pub fn inject(&mut self, client: Client) {
        let idx = self.arena.len();
        // Keyed on the session's *peak* demand (not its current demand,
        // which is zero for an injected idle client): `by_peak` must
        // stay sorted by the same constant the arena records.
        let peak = client.access_bps.min(self.cfg.session_max_bps);
        let peaks = self.arena.peak_demands();
        let pos = self.by_peak.partition_point(|&j| peaks[j] <= peak);
        self.by_peak.insert(pos, idx);
        self.arena.push(&self.cfg, client);
    }

    /// Advance one tick of the reference loop: hour rollover, the
    /// arrival draws (Poisson count, then per-arrival arm Bernoulli and
    /// RNG fork, in that order — the stream order the hybrid engine's
    /// pre-scan reproduces), then the shared tick core.
    pub fn step(&mut self) {
        let dt = self.cfg.dt_s;
        let day = DiurnalDemand::day_index(self.now_s);
        let hour = DiurnalDemand::hour_of_day(self.now_s);

        // Hour rollover: flush aggregates.
        if (day, hour) != self.current_hour && self.acc_ticks > 0 {
            self.flush_hour();
        }
        self.current_hour = (day, hour);

        // Arrivals: binary-inserted into the static peak-demand order.
        let n_arrivals = self.demand.arrivals(self.now_s, dt, &mut self.rng);
        let p = self.schedule.allocation(day);
        let share_now =
            self.link.capacity_bps() / (self.arena.live_sessions() as f64 + 1.0).max(1.0);
        for _ in 0..n_arrivals {
            let treated = self.rng.bernoulli(p);
            let child = self.rng.fork();
            let client = Client::new(
                &self.cfg,
                &self.ladder,
                self.link_id,
                day,
                hour,
                self.demand.is_weekend(day),
                self.now_s,
                treated,
                share_now.min(self.cfg.session_max_bps),
                child,
            );
            self.inject(client);
        }

        self.tick_core();
    }

    /// One coupled tick whose arrival randomness was already consumed by
    /// the hybrid engine's span pre-scan (see [`crate::engine`]): the
    /// Poisson count, arm Bernoullis and RNG forks for this tick were
    /// drawn — in the tick loop's own order — while sizing the span, so
    /// this tick must not touch `self.rng`. Everything else (client
    /// construction from the pre-drawn draws, injection, the tick core)
    /// is the verbatim [`LinkSim::step`].
    pub(crate) fn step_tick_prescanned(&mut self, arrivals: &[SpanArrival]) {
        let day = DiurnalDemand::day_index(self.now_s);
        let hour = DiurnalDemand::hour_of_day(self.now_s);
        if (day, hour) != self.current_hour && self.acc_ticks > 0 {
            self.flush_hour();
        }
        self.current_hour = (day, hour);

        let share_now =
            self.link.capacity_bps() / (self.arena.live_sessions() as f64 + 1.0).max(1.0);
        for a in arrivals {
            let client = Client::new(
                &self.cfg,
                &self.ladder,
                self.link_id,
                day,
                hour,
                self.demand.is_weekend(day),
                self.now_s,
                a.treated,
                share_now.min(self.cfg.session_max_bps),
                a.rng.clone(),
            );
            self.inject(client);
        }

        self.tick_core();
    }

    /// The arrival-independent back half of a tick: allocation, the
    /// arena sweep, finished-slot retirement, hourly accumulators and
    /// the clock. Shared verbatim by [`LinkSim::step`] and
    /// [`LinkSim::step_tick_prescanned`].
    fn tick_core(&mut self) {
        let dt = self.cfg.dt_s;
        // Bandwidth allocation from the persistent buffers. The demand
        // column was produced incrementally (refreshed in place by last
        // tick's arena pass, appended to by `inject`), and demands are
        // two-valued (idle sessions ask for 0, the rest for their
        // constant peak rate), so listing the *active* sessions in
        // peak-sorted order — one filter pass over `by_peak` — yields an
        // ascending order of the current demands without sorting: O(n)
        // per tick, zero comparisons, zero heap allocations.
        // Branchless compaction: idle-vs-active is effectively a coin
        // flip per session, so a filter branch would mispredict heavily.
        // `order` is a monotone scratch (never shrunk) so steady-state
        // ticks skip even the resize memset.
        if self.order.len() < self.by_peak.len() {
            self.order.resize(self.by_peak.len(), 0);
        }
        let demands = self.arena.demands();
        let mut active = 0usize;
        for &i in &self.by_peak {
            self.order[active] = i;
            active += usize::from(demands[i] != 0.0);
        }
        self.link
            .allocate_ordered(demands, &self.order[..active], dt, &mut self.shares);
        let rtt = self.link.rtt_s();
        let loss = self.link.loss();

        // Session progress: the arena's three-pass column sweep steps
        // every session with *its own* share, appends finished records,
        // and refreshes survivors' demands while their state is hot in
        // cache (see `ClientArena::step_all`). The active allocation
        // order doubles as the download pass's worklist: idle sessions
        // hold zero demand and zero share, so the arena can skip them.
        let now_next = self.now_s + dt;
        let any_finished = self.arena.step_all(
            &self.cfg,
            &self.ladder,
            &self.shares,
            &self.order[..active],
            rtt,
            loss,
            now_next,
            dt,
            &mut self.records,
            &mut self.finished,
        );

        // Drop finished sessions from the allocation order immediately
        // (their slots are tombstoned with zero demand); the arena's
        // column compaction itself is deferred until enough tombstones
        // accumulate to amortize it, at which point the peak-demand
        // permutation is remapped to the new (still sorted) indices.
        if any_finished {
            let finished = &self.finished;
            self.by_peak.retain(|&i| !finished[i]);
            if self.arena.needs_compaction() {
                self.arena.compact_stale(&mut self.remap);
                let remap = &self.remap;
                for o in &mut self.by_peak {
                    *o = remap[*o];
                }
            }
        }

        // Hourly accumulators.
        self.acc_util += self.link.utilization();
        self.acc_rtt += rtt;
        self.acc_conc += self.arena.live_sessions() as f64;
        self.acc_loss += loss;
        self.acc_ticks += 1;

        self.now_s += dt;
    }

    pub(crate) fn flush_hour(&mut self) {
        let n = self.acc_ticks.max(1) as f64;
        self.hourly.push(HourlyLinkStats {
            day: self.current_hour.0,
            hour: self.current_hour.1,
            utilization: self.acc_util / n,
            rtt_s: self.acc_rtt / n,
            concurrent: self.acc_conc / n,
            loss: self.acc_loss / n,
        });
        self.acc_util = 0.0;
        self.acc_rtt = 0.0;
        self.acc_conc = 0.0;
        self.acc_loss = 0.0;
        self.acc_ticks = 0;
    }

    /// Run to the configured horizon and return all session records plus
    /// hourly link statistics.
    pub fn run(mut self) -> (Vec<SessionRecord>, Vec<HourlyLinkStats>) {
        let horizon = self.cfg.horizon_s();
        while self.now_s < horizon {
            self.step();
        }
        if self.acc_ticks > 0 {
            self.flush_hour();
        }
        (self.records, self.hourly)
    }

    /// Run to the configured horizon on the selected engine backend.
    ///
    /// [`EngineBackend::Tick`] is [`LinkSim::run`]; [`EngineBackend::Event`]
    /// is the hybrid tick/event driver, which reproduces the tick loop's
    /// [`SessionRecord`]s bit-identically and its [`HourlyLinkStats`] to
    /// within a ≤1e-9 relative re-association tolerance (see
    /// [`crate::engine`] for the invariants).
    pub fn run_with(self, backend: EngineBackend) -> (Vec<SessionRecord>, Vec<HourlyLinkStats>) {
        match backend {
            EngineBackend::Tick => self.run(),
            EngineBackend::Event => crate::engine::run_event(self),
        }
    }

    /// Run to the horizon consuming an externally routed arrival stream
    /// (see [`crate::routing`]) instead of the link's own demand
    /// process. The link's RNG is never consumed — session randomness
    /// rides in on the router's forked streams — so per-link simulation
    /// state stays independent of every other link.
    pub(crate) fn run_routed(
        self,
        arrivals: &[crate::routing::RoutedArrival],
        backend: EngineBackend,
    ) -> (Vec<SessionRecord>, Vec<HourlyLinkStats>) {
        match backend {
            EngineBackend::Tick => crate::engine::run_tick_routed(self, arrivals),
            EngineBackend::Event => crate::engine::run_event_routed(self, arrivals),
        }
    }
}

/// The paired-link world: two statistically similar links driven by
/// *independent draws from the same demand process*, with configurable
/// small imbalances (§4.1: +5% traffic and a rebuffer quirk on link 1).
pub struct PairedSim {
    /// Shared configuration (links may override bias fields).
    pub cfg: StreamConfig,
    /// Allocation schedule per link.
    pub schedules: [AllocationSchedule; 2],
    /// Arrival-rate multipliers per link (paper: 50.8% vs 49.2% ⇒
    /// roughly 1.03 : 0.97 around the mean).
    pub arrival_bias: [f64; 2],
    /// Rebuffer-noise bias per link (paper: link 1 ~20% more rebuffers).
    pub rebuffer_bias: [f64; 2],
    /// Root seed.
    pub seed: u64,
}

/// Everything a paired run produces.
pub struct PairedRun {
    /// Session records from both links.
    pub sessions: Vec<SessionRecord>,
    /// Hourly link stats per link.
    pub hourly: [Vec<HourlyLinkStats>; 2],
}

impl PairedSim {
    /// Symmetric paired world with the paper's reported imbalances.
    pub fn with_paper_biases(
        cfg: StreamConfig,
        schedules: [AllocationSchedule; 2],
        seed: u64,
    ) -> PairedSim {
        PairedSim {
            cfg,
            schedules,
            arrival_bias: [1.01, 0.99],
            rebuffer_bias: [1.3, 1.0],
            seed,
        }
    }

    /// Run both links (sequentially; each has its own RNG stream).
    pub fn run(self) -> PairedRun {
        let mut root = SimRng::new(self.seed);
        let seeds = [root.next_u64(), root.next_u64()];
        let mut all = Vec::new();
        let mut hourly = [Vec::new(), Vec::new()];
        for (idx, link_id) in [LinkId::One, LinkId::Two].into_iter().enumerate() {
            let mut cfg = self.cfg.clone();
            cfg.peak_arrivals_per_s *= self.arrival_bias[idx];
            cfg.rebuffer_bias = self.rebuffer_bias[idx];
            let sim = LinkSim::new(cfg, link_id, self.schedules[idx].clone(), seeds[idx]);
            let (mut recs, hstats) = sim.run();
            all.append(&mut recs);
            hourly[idx] = hstats;
        }
        PairedRun {
            sessions: all,
            hourly,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small, fast world: one day, modest load, scaled-down link.
    /// Arrivals scale with capacity so the congestion regime matches the
    /// default configuration's (peak demand ≈ 1.2× capacity uncapped).
    fn small_cfg() -> StreamConfig {
        StreamConfig {
            days: 1,
            peak_arrivals_per_s: 0.24 * 0.4,
            capacity_bps: 400e6,
            mean_watch_s: 1500.0,
            ..Default::default()
        }
    }

    #[test]
    fn sessions_complete_and_record() {
        let sim = LinkSim::new(small_cfg(), LinkId::One, AllocationSchedule::none(), 1);
        let (records, hourly) = sim.run();
        assert!(records.len() > 1000, "records {}", records.len());
        assert_eq!(hourly.len(), 24);
        // Sanity: all records carry valid hours/days and positive bytes
        // for non-cancelled sessions.
        for r in &records {
            assert!(r.hour < 24);
            assert_eq!(r.day, 0);
            if !r.cancelled {
                assert!(r.bytes > 0.0, "{r:?}");
                assert!(r.bitrate_bps >= 235e3);
            }
        }
    }

    #[test]
    fn peak_hours_are_congested() {
        let cfg = small_cfg();
        let sim = LinkSim::new(cfg, LinkId::One, AllocationSchedule::none(), 2);
        let (_, hourly) = sim.run();
        let peak = &hourly[20]; // 20:00
        let trough = &hourly[4]; // 04:00
        assert!(peak.utilization > 0.95, "peak util {}", peak.utilization);
        assert!(
            trough.utilization < 0.5,
            "trough util {}",
            trough.utilization
        );
        assert!(peak.rtt_s > trough.rtt_s, "queueing delay at peak");
    }

    #[test]
    fn capping_everyone_reduces_congestion() {
        // The headline mechanism: at high allocation the link carries the
        // same users with less traffic, so peak RTT and loss drop.
        let cfg = small_cfg();
        let uncapped = LinkSim::new(
            cfg.clone(),
            LinkId::One,
            AllocationSchedule::Constant(0.0),
            3,
        );
        let capped = LinkSim::new(cfg, LinkId::One, AllocationSchedule::Constant(0.95), 3);
        let (_, h_un) = uncapped.run();
        let (_, h_cap) = capped.run();
        let peak_rtt_un: f64 = (18..23).map(|h| h_un[h].rtt_s).sum::<f64>() / 5.0;
        let peak_rtt_cap: f64 = (18..23).map(|h| h_cap[h].rtt_s).sum::<f64>() / 5.0;
        assert!(
            peak_rtt_cap < peak_rtt_un * 0.9,
            "capped peak RTT {peak_rtt_cap} vs uncapped {peak_rtt_un}"
        );
    }

    #[test]
    fn allocation_fraction_respected() {
        let sim = LinkSim::new(
            small_cfg(),
            LinkId::One,
            AllocationSchedule::Constant(0.3),
            4,
        );
        let (records, _) = sim.run();
        let treated = records.iter().filter(|r| r.treated).count() as f64;
        let frac = treated / records.len() as f64;
        assert!((frac - 0.3).abs() < 0.03, "frac {frac}");
    }

    /// Baseline similarity of the paired links, asserted as a
    /// **multi-seed pass fraction** instead of a single-seed boolean.
    /// The single-seed version of this test was reseeded twice (PR 1:
    /// 7→9 after an estimator change; PR 2: margin +0.04) because every
    /// RNG-trajectory change re-rolls one marginal statistical draw.
    /// Running a small battery of seeds and asserting on the pass
    /// fraction makes the test robust to trajectory changes while still
    /// catching real symmetry regressions: a genuinely broken pairing
    /// fails *every* seed, a re-rolled marginal seed fails one.
    #[test]
    fn paired_links_similar_at_baseline() {
        // Scaled to 0.2 so the 8-seed battery stays affordable in debug
        // test runs (the per-seed checks get noisier, which the pass
        // threshold below accounts for).
        let cfg = StreamConfig {
            days: 1,
            peak_arrivals_per_s: 0.24 * 0.2,
            capacity_bps: 200e6,
            mean_watch_s: 1500.0,
            ..Default::default()
        };
        const SEEDS: u64 = 8;
        // Measured over seeds 0..8 at this config (PR 3 trajectory):
        // 7/8 seeds pass all three checks — volume ratios 0.95–1.05,
        // throughput ratios within ±9%, rebuffer-rate gaps −0.7 to
        // +2.4 pp (seed 7 re-rolled the rebuffer direction). Demanding
        // 6/8 leaves room for one more marginal re-roll before flaking.
        const PASS_MIN: usize = 6;
        let mut passes = 0usize;
        for seed in 0..SEEDS {
            let paired = PairedSim::with_paper_biases(
                cfg.clone(),
                [AllocationSchedule::none(), AllocationSchedule::none()],
                seed,
            );
            let run = paired.run();
            let (l1, l2): (Vec<_>, Vec<_>) =
                run.sessions.iter().partition(|r| r.link == LinkId::One);
            assert!(!l1.is_empty() && !l2.is_empty());
            // Similar session volumes (within the ~2% bias + noise)...
            let volume_ratio = l1.len() as f64 / l2.len() as f64;
            // ...similar mean throughput...
            let t1: f64 = l1.iter().map(|r| r.throughput_bps).sum::<f64>() / l1.len() as f64;
            let t2: f64 = l2.iter().map(|r| r.throughput_bps).sum::<f64>() / l2.len() as f64;
            let tput_ratio = t1 / t2;
            // ...but link 1 rebuffers more (the §4.1 quirk).
            let rb1: f64 = l1.iter().map(|r| r.rebuffer_indicator()).sum::<f64>() / l1.len() as f64;
            let rb2: f64 = l2.iter().map(|r| r.rebuffer_indicator()).sum::<f64>() / l2.len() as f64;
            let ok =
                (0.9..1.25).contains(&volume_ratio) && (tput_ratio - 1.0).abs() < 0.1 && rb1 > rb2;
            // Margins stay visible in `--nocapture` runs so the next
            // trajectory change can recalibrate without archaeology.
            println!(
                "seed {seed}: volume {volume_ratio:.3}, throughput {tput_ratio:.3}, \
                 rebuffer {rb1:.4} vs {rb2:.4} => {}",
                if ok { "pass" } else { "FAIL" }
            );
            passes += usize::from(ok);
        }
        assert!(
            passes >= PASS_MIN,
            "baseline similarity held on only {passes}/{SEEDS} seeds (need {PASS_MIN})"
        );
    }

    /// Regression test for the swap_remove share-misalignment bug: when
    /// a short session finished mid-tick, the last client was moved into
    /// its slot and stepped with the *finished* client's share. Survivor
    /// outcomes must be independent of the order clients were inserted
    /// in (the allocator is permutation-equivariant), so reversing the
    /// insertion order is a permutation-independent oracle: per-session
    /// records must be bit-identical either way.
    #[test]
    fn survivor_records_independent_of_insertion_order() {
        // One short session with a *small* access line (so its share is
        // strictly below the survivors') plus two long sessions with big
        // access lines, no background arrivals, ample capacity.
        let base = StreamConfig {
            days: 1,
            peak_arrivals_per_s: 1e-15, // effectively no Poisson arrivals
            capacity_bps: 100e6,
            access_sigma: 0.01,
            ..Default::default()
        };
        let ladder = Ladder::new(base.ladder_bps.clone());
        // `hour` doubles as a session id so records can be matched up.
        let make = |id: usize, mean_watch_s: f64, access_bps: f64| {
            let cfg = StreamConfig {
                mean_watch_s,
                access_median_bps: access_bps,
                ..base.clone()
            };
            Client::new(
                &cfg,
                &ladder,
                LinkId::One,
                0,
                id,
                false,
                0.0,
                false,
                access_bps,
                SimRng::new(1000 + id as u64),
            )
        };
        let run = |ids: &[usize]| {
            let mut sim = LinkSim::new(base.clone(), LinkId::One, AllocationSchedule::none(), 77);
            for &id in ids {
                // id 0 is the short session on a slow line; the rest are
                // long sessions on fast lines.
                let (watch, access) = if id == 0 {
                    (1.0, 1_200e3)
                } else {
                    (4000.0, 9e6)
                };
                sim.inject(make(id, watch, access));
            }
            for _ in 0..20_000 {
                sim.step();
            }
            let mut recs = sim.records().to_vec();
            assert_eq!(recs.len(), ids.len(), "all sessions should finish");
            recs.sort_by_key(|r| r.hour);
            recs
        };
        let forward = run(&[0, 1, 2]);
        let reversed = run(&[2, 1, 0]);
        for (f, r) in forward.iter().zip(&reversed) {
            assert_eq!(f.hour, r.hour);
            assert_eq!(
                f.bytes.to_bits(),
                r.bytes.to_bits(),
                "session {} bytes {} vs {}",
                f.hour,
                f.bytes,
                r.bytes
            );
            assert_eq!(f.throughput_bps.to_bits(), r.throughput_bps.to_bits());
            assert_eq!(f.duration_s.to_bits(), r.duration_s.to_bits());
        }
    }

    /// Regression: an empty `PerDay` schedule silently allocated 0.0
    /// forever; construction must now reject it loudly.
    #[test]
    #[should_panic(expected = "invalid allocation schedule")]
    fn empty_per_day_schedule_rejected() {
        let _ = LinkSim::new(
            small_cfg(),
            LinkId::One,
            AllocationSchedule::PerDay(vec![]),
            1,
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let sim = LinkSim::new(
                small_cfg(),
                LinkId::One,
                AllocationSchedule::Constant(0.5),
                seed,
            );
            let (records, _) = sim.run();
            (records.len(), records.iter().map(|r| r.bytes).sum::<f64>())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
