//! Telemetry fault injection: what the collection pipeline does to a
//! link's session records *after* the simulation produced them.
//!
//! The paper's experiments run on a production CDN where telemetry is
//! lossy, and the loss is **not** independent of congestion: exactly the
//! sessions an experiment most affects — rebuffering, cancelled, starved
//! of throughput — are the ones most likely to report late, duplicated,
//! or not at all (Li–Johari–Kuang–Wager call this congestion-coupled
//! measurement). This module models that pipeline as a deterministic,
//! seeded transformation of a record stream:
//!
//! * **MCAR drop** ([`TelemetryFaults::drop_mcar`]): every record lost
//!   independently with fixed probability — the benign kind, which only
//!   shrinks sample sizes;
//! * **congestion-correlated (MNAR) drop**
//!   ([`TelemetryFaults::drop_congested`]): the drop probability scales
//!   with [`congestion_severity`] — rebuffers, cancellation, slow
//!   streaming rates — the malign kind, which skews *which* sessions are
//!   observed and biases estimates;
//! * **duplication**, **NaN field corruption**, **out-of-order
//!   delivery** within a bounded window, and a **mid-run outage** that
//!   loses every record in a wall-clock interval;
//! * a receiver-side [`ReorderBuffer`] that restores sequence order and
//!   discards duplicate copies, so downstream folds see a clean (if
//!   thinned) stream.
//!
//! The fault stream is driven by its own RNG, derived from
//! [`TelemetryFaults::seed`] and the link index only — **independent of
//! the simulation RNG** — so the same physical world can be observed
//! through different fault processes and vice versa. Faults compose per
//! [`crate::fleet::FleetLinkJob`]; the per-arm accounting lands in
//! [`TelemetryStats`], which the analysis layer turns into data-quality
//! guardrails (sample-ratio-mismatch tests, missingness differentials).
//!
//! The packet-level twin of this module is [`netsim::fault`]
//! (`RandomLoss` and friends), which drops *packets inside* the
//! simulated transport; this module drops *records about* sessions after
//! the fact. The first changes the world, the second only the
//! measurement of it.
//!
//! [`netsim::fault`]: ../../netsim/fault/index.html

use std::collections::BTreeMap;

use crate::session::SessionRecord;
use dessim::SimRng;

/// Streaming rate below which a session starts to look congested to the
/// severity model (see [`congestion_severity`]). Compared against the
/// *lower* of the delivered video bitrate and the network download
/// throughput: a bitrate-capped session streams slowly even when its
/// chunks download fast, and a congested session downloads slowly no
/// matter what rung it requests.
pub const SLOW_RATE_BPS: f64 = 3.0e6;

/// A wall-clock interval during which the link's telemetry path is down:
/// every record whose session *arrived* inside it is lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageWindow {
    /// Outage start, seconds since simulation start.
    pub start_s: f64,
    /// Outage end, seconds since simulation start.
    pub end_s: f64,
}

impl OutageWindow {
    fn contains(&self, t: f64) -> bool {
        self.start_s <= t && t < self.end_s
    }
}

/// How congested a session's experience was, in `[0, 1]` — the knob the
/// MNAR drop scales with.
///
/// Cancelled starts score 1.0 (the user gave up; the beacon very likely
/// never flushed), rebuffering sessions score 0.6 plus 0.1 per rebuffer
/// (capped at 1.0), and otherwise the score rises linearly as the
/// streaming rate falls below [`SLOW_RATE_BPS`]. Note the slow-rate term
/// couples the drop to the *treatment itself* in a bitrate-capping
/// experiment: capped sessions stream at lower rates, so their reports
/// are preferentially lost — the mechanism that skews arm ratios.
pub fn congestion_severity(r: &SessionRecord) -> f64 {
    if r.cancelled {
        return 1.0;
    }
    let rebuffer = if r.rebuffered {
        (0.6 + 0.1 * f64::from(r.rebuffer_count.min(4))).min(1.0)
    } else {
        0.0
    };
    // f64::min ignores a NaN side, so a corrupted/degenerate bitrate
    // falls back to the network throughput alone.
    let rate = r.bitrate_bps.min(r.throughput_bps);
    let slow = (1.0 - rate / SLOW_RATE_BPS).clamp(0.0, 1.0);
    rebuffer.max(slow)
}

/// A composable, seeded fault model for one link's record stream.
///
/// All probabilities are per record. [`TelemetryFaults::apply`] consumes
/// the simulator's records in emission order (the sequence number is the
/// record's index), runs them through the wire-side faults, and hands
/// the survivors to a [`ReorderBuffer`]; the result is the delivered
/// stream in sequence order plus a [`TelemetryStats`] ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFaults {
    /// Missing-completely-at-random drop probability.
    pub drop_mcar: f64,
    /// Congestion-correlated drop scale: a record is dropped with
    /// probability `drop_congested × congestion_severity(record)`.
    pub drop_congested: f64,
    /// Probability a delivered record is duplicated on the wire.
    pub duplicate_p: f64,
    /// Probability one float field of a delivered record is corrupted to
    /// NaN (the analysis layer's finite-value filters then skip it for
    /// that metric only).
    pub corrupt_nan_p: f64,
    /// Maximum forward displacement (in sequence positions) a record can
    /// suffer on the wire; 0 = in-order delivery.
    pub reorder_window: usize,
    /// Optional mid-run outage window.
    pub outage: Option<OutageWindow>,
    /// Links whose collection job dies outright: [`TelemetryFaults::should_crash`]
    /// makes the fleet job panic, which exercises the sweep-level
    /// `FailurePolicy::Quarantine` path (chaos testing, not a wire fault).
    pub crash_links: Vec<usize>,
    /// Root seed of the fault process. Per-link streams are derived from
    /// `(seed, link)` only, never from the simulation RNG.
    pub seed: u64,
}

impl TelemetryFaults {
    /// The identity fault model: nothing dropped, duplicated, corrupted,
    /// reordered or crashed.
    pub fn none(seed: u64) -> TelemetryFaults {
        TelemetryFaults {
            drop_mcar: 0.0,
            drop_congested: 0.0,
            duplicate_p: 0.0,
            corrupt_nan_p: 0.0,
            reorder_window: 0,
            outage: None,
            crash_links: Vec::new(),
            seed,
        }
    }

    /// Check every knob is in its domain: probabilities finite in
    /// `[0, 1]`, outage bounds finite and ordered.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("drop_mcar", self.drop_mcar),
            ("drop_congested", self.drop_congested),
            ("duplicate_p", self.duplicate_p),
            ("corrupt_nan_p", self.corrupt_nan_p),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0,1], got {p}"));
            }
        }
        if let Some(w) = self.outage {
            if !w.start_s.is_finite() || !w.end_s.is_finite() || w.start_s > w.end_s {
                return Err(format!(
                    "outage window must be finite and ordered, got [{}, {})",
                    w.start_s, w.end_s
                ));
            }
        }
        Ok(())
    }

    /// Whether this fault model scripts `link`'s whole job to die.
    pub fn should_crash(&self, link: usize) -> bool {
        self.crash_links.contains(&link)
    }

    /// The fault RNG for one link: a fixed function of `(seed, link)`,
    /// so the fault stream is identical whatever the simulation did and
    /// whatever order the scheduler ran links in.
    fn link_rng(&self, link: usize) -> SimRng {
        // Golden-ratio odd multiplier keeps adjacent link indices far
        // apart in seed space before SimRng's own SplitMix64 expansion.
        SimRng::new(self.seed ^ (link as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Run one link's records through the fault pipeline. Returns the
    /// delivered records in sequence order (duplicates removed by the
    /// receiver) and the per-arm accounting.
    ///
    /// Deterministic in `(self.seed, link, records)`; the draw sequence
    /// is fixed per record, so two applications to the same stream are
    /// bit-identical.
    pub fn apply(
        &self,
        link: usize,
        records: Vec<SessionRecord>,
    ) -> (Vec<SessionRecord>, TelemetryStats) {
        let mut rng = self.link_rng(link);
        let mut stats = TelemetryStats::default();
        // (sort key, record); key = sequence + wire jitter, stable sort
        // keeps equal keys in emission order.
        let mut wire: Vec<(u64, u64, SessionRecord)> = Vec::with_capacity(records.len());
        for (seq, mut r) in records.into_iter().enumerate() {
            let seq = seq as u64;
            let arm = usize::from(r.treated);
            stats.sent[arm] += 1;
            if self.outage.is_some_and(|w| w.contains(r.arrival_s)) {
                stats.dropped_outage[arm] += 1;
                continue;
            }
            if rng.bernoulli(self.drop_mcar) {
                stats.dropped_mcar[arm] += 1;
                continue;
            }
            let severity = congestion_severity(&r);
            if rng.bernoulli(self.drop_congested * severity) {
                stats.dropped_congested[arm] += 1;
                continue;
            }
            if rng.bernoulli(self.corrupt_nan_p) {
                corrupt_one_field(&mut r, rng.below(6));
                stats.corrupted[arm] += 1;
            }
            let duplicate = rng.bernoulli(self.duplicate_p);
            let jitter = |rng: &mut SimRng| {
                if self.reorder_window == 0 {
                    0
                } else {
                    rng.below(self.reorder_window as u64 + 1)
                }
            };
            let key = seq + jitter(&mut rng);
            if duplicate {
                stats.duplicated[arm] += 1;
                let dup_key = seq + jitter(&mut rng);
                wire.push((dup_key, seq, r.clone()));
            }
            wire.push((key, seq, r));
        }
        wire.sort_by_key(|&(key, _, _)| key);

        // Receiver side: a buffer twice the wire's displacement bound
        // (plus slack for duplicate copies) provably never force-emits
        // past a still-in-flight record, so reordering is fully repaired
        // and the only receiver-side discards are duplicate copies.
        let mut buffer = ReorderBuffer::new(2 * self.reorder_window + 2);
        let mut delivered = Vec::with_capacity(wire.len());
        let mut high_water: Option<u64> = None;
        for (_, seq, r) in wire {
            if high_water.is_some_and(|hw| seq < hw) {
                stats.out_of_order[usize::from(r.treated)] += 1;
            }
            high_water = Some(high_water.map_or(seq, |hw| hw.max(seq)));
            buffer.push(seq, r, &mut delivered);
        }
        let (dup_discards, late_drops) = buffer.finish(&mut delivered);
        debug_assert_eq!(late_drops, 0, "adequately sized buffer never late-drops");
        debug_assert_eq!(
            dup_discards,
            stats.duplicated[0] + stats.duplicated[1],
            "every duplicate copy is discarded exactly once"
        );
        for r in &delivered {
            stats.delivered[usize::from(r.treated)] += 1;
        }
        (delivered, stats)
    }
}

/// Corrupt one float field of a record to NaN; `pick` selects among the
/// six metric-bearing floats.
fn corrupt_one_field(r: &mut SessionRecord, pick: u64) {
    match pick {
        0 => r.throughput_bps = f64::NAN,
        1 => r.min_rtt_s = f64::NAN,
        2 => r.play_delay_s = f64::NAN,
        3 => r.bitrate_bps = f64::NAN,
        4 => r.quality = f64::NAN,
        _ => r.bytes = f64::NAN,
    }
}

/// Receiver-side reassembly: restores sequence order within a bounded
/// buffer and discards duplicate sequence numbers.
///
/// `push` emits records (in sequence order) whenever the buffer exceeds
/// its capacity; `finish` drains the rest. A record whose sequence is
/// already in the buffer, or behind the emission watermark, is discarded
/// as a duplicate — unless it was never seen before, in which case it is
/// a late drop (only possible when the wire's displacement exceeds the
/// buffer capacity).
#[derive(Debug)]
pub struct ReorderBuffer {
    cap: usize,
    buf: BTreeMap<u64, SessionRecord>,
    /// Sequences `< watermark` have already been emitted or abandoned.
    watermark: u64,
    /// Sequences emitted so far (to tell a duplicate of an emitted
    /// record from a genuinely late one). Bounded: only sequences in
    /// `[watermark - cap, watermark)` can still arrive as duplicates, so
    /// the set is pruned against the watermark.
    recent: BTreeMap<u64, ()>,
    duplicates: u64,
    late_drops: u64,
}

impl ReorderBuffer {
    /// Buffer holding at most `cap` in-flight records.
    pub fn new(cap: usize) -> ReorderBuffer {
        ReorderBuffer {
            cap: cap.max(1),
            buf: BTreeMap::new(),
            watermark: 0,
            recent: BTreeMap::new(),
            duplicates: 0,
            late_drops: 0,
        }
    }

    /// Offer one wire arrival; emits to `out` when the buffer overflows.
    pub fn push(&mut self, seq: u64, record: SessionRecord, out: &mut Vec<SessionRecord>) {
        if seq < self.watermark {
            if self.recent.remove(&seq).is_some() {
                self.duplicates += 1;
            } else {
                self.late_drops += 1;
            }
            return;
        }
        if self.buf.contains_key(&seq) {
            self.duplicates += 1;
            return;
        }
        self.buf.insert(seq, record);
        while self.buf.len() > self.cap {
            self.emit_min(out);
        }
    }

    fn emit_min(&mut self, out: &mut Vec<SessionRecord>) {
        if let Some((&seq, _)) = self.buf.iter().next() {
            let record = self.buf.remove(&seq).expect("min key present");
            self.watermark = seq + 1;
            self.recent.insert(seq, ());
            let floor = self.watermark.saturating_sub(2 * self.cap as u64);
            self.recent = self.recent.split_off(&floor);
            out.push(record);
        }
    }

    /// Drain the buffer in sequence order; returns `(duplicates
    /// discarded, late drops)`.
    pub fn finish(mut self, out: &mut Vec<SessionRecord>) -> (u64, u64) {
        while !self.buf.is_empty() {
            self.emit_min(out);
        }
        (self.duplicates, self.late_drops)
    }
}

/// Per-arm accounting of one link's (or a whole fleet's) trip through
/// the telemetry pipeline; arm 0 = control, arm 1 = treated. Mergeable
/// by field-wise addition, so fleet summaries can aggregate it exactly
/// like the metric cells.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryStats {
    /// Records the simulator produced.
    pub sent: [u64; 2],
    /// Records the receiver delivered (post drop/dedup).
    pub delivered: [u64; 2],
    /// Records lost to the outage window.
    pub dropped_outage: [u64; 2],
    /// Records lost completely at random.
    pub dropped_mcar: [u64; 2],
    /// Records lost to congestion-correlated (MNAR) drop.
    pub dropped_congested: [u64; 2],
    /// Duplicate copies injected on the wire (all discarded by the
    /// receiver, but their rate is an arm-skew diagnostic).
    pub duplicated: [u64; 2],
    /// Delivered records carrying one NaN-corrupted field.
    pub corrupted: [u64; 2],
    /// Wire arrivals observed behind the sequence high-water mark.
    pub out_of_order: [u64; 2],
}

impl TelemetryStats {
    /// The ledger of a fault-free link: everything sent was delivered.
    pub fn clean(records: &[SessionRecord]) -> TelemetryStats {
        let mut s = TelemetryStats::default();
        for r in records {
            let arm = usize::from(r.treated);
            s.sent[arm] += 1;
            s.delivered[arm] += 1;
        }
        s
    }

    /// Field-wise accumulate (the fleet-summary merge).
    pub fn merge(&mut self, other: &TelemetryStats) {
        for (a, b) in [
            (&mut self.sent, &other.sent),
            (&mut self.delivered, &other.delivered),
            (&mut self.dropped_outage, &other.dropped_outage),
            (&mut self.dropped_mcar, &other.dropped_mcar),
            (&mut self.dropped_congested, &other.dropped_congested),
            (&mut self.duplicated, &other.duplicated),
            (&mut self.corrupted, &other.corrupted),
            (&mut self.out_of_order, &other.out_of_order),
        ] {
            a[0] += b[0];
            a[1] += b[1];
        }
    }

    /// Total records sent across arms.
    pub fn sent_total(&self) -> u64 {
        self.sent[0] + self.sent[1]
    }

    /// Total records delivered across arms.
    pub fn delivered_total(&self) -> u64 {
        self.delivered[0] + self.delivered[1]
    }

    /// Overall fraction of sent records that never arrived.
    pub fn loss_fraction(&self) -> f64 {
        let sent = self.sent_total();
        if sent == 0 {
            0.0
        } else {
            1.0 - self.delivered_total() as f64 / sent as f64
        }
    }

    /// Fraction of one arm's sent records that never arrived
    /// (`arm` 0 = control, 1 = treated).
    pub fn missing_fraction(&self, arm: usize) -> f64 {
        if self.sent[arm] == 0 {
            0.0
        } else {
            1.0 - self.delivered[arm] as f64 / self.sent[arm] as f64
        }
    }

    /// Fraction of one arm's sent records that were duplicated on the
    /// wire.
    pub fn duplicate_fraction(&self, arm: usize) -> f64 {
        if self.sent[arm] == 0 {
            0.0
        } else {
            self.duplicated[arm] as f64 / self.sent[arm] as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::LinkId;

    fn record(seq: usize, treated: bool) -> SessionRecord {
        SessionRecord {
            link: LinkId::One,
            day: 0,
            hour: seq % 24,
            weekend: false,
            arrival_s: seq as f64 * 10.0,
            treated,
            throughput_bps: 6e6,
            min_rtt_s: 0.02,
            play_delay_s: 1.0,
            bitrate_bps: 3e6,
            quality: 70.0,
            rebuffer_count: 0,
            rebuffered: false,
            cancelled: false,
            bytes: 1e8,
            retx_bytes: 1e5,
            switches: 1,
            duration_s: 900.0,
        }
    }

    fn stream(n: usize) -> Vec<SessionRecord> {
        (0..n).map(|i| record(i, i % 2 == 0)).collect()
    }

    #[test]
    fn identity_faults_pass_everything_through() {
        let f = TelemetryFaults::none(7);
        let input = stream(100);
        let (out, stats) = f.apply(3, input.clone());
        assert_eq!(out.len(), 100);
        assert_eq!(stats.sent_total(), 100);
        assert_eq!(stats.delivered_total(), 100);
        assert_eq!(stats.loss_fraction(), 0.0);
        for (a, b) in out.iter().zip(&input) {
            assert_eq!(a.arrival_s.to_bits(), b.arrival_s.to_bits());
        }
    }

    #[test]
    fn apply_is_deterministic_per_seed_and_link() {
        let f = TelemetryFaults {
            drop_mcar: 0.1,
            drop_congested: 0.2,
            duplicate_p: 0.1,
            corrupt_nan_p: 0.05,
            reorder_window: 5,
            ..TelemetryFaults::none(42)
        };
        let fingerprint = |out: &[SessionRecord]| -> Vec<u64> {
            out.iter().map(|r| r.arrival_s.to_bits()).collect()
        };
        let (a, sa) = f.apply(3, stream(500));
        let (b, sb) = f.apply(3, stream(500));
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(sa, sb);
        // A different link index gives a different fault stream.
        let (c, _) = f.apply(4, stream(500));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        // A different fault seed too.
        let (d, _) = TelemetryFaults { seed: 43, ..f }.apply(3, stream(500));
        assert_ne!(fingerprint(&a), fingerprint(&d));
    }

    #[test]
    fn mcar_drop_rate_is_honored() {
        let f = TelemetryFaults {
            drop_mcar: 0.2,
            ..TelemetryFaults::none(1)
        };
        let (out, stats) = f.apply(0, stream(20_000));
        let frac = 1.0 - out.len() as f64 / 20_000.0;
        assert!((frac - 0.2).abs() < 0.01, "loss {frac}");
        assert!((stats.loss_fraction() - 0.2).abs() < 0.01);
        // MCAR is arm-blind: both arms lose at the same rate.
        assert!((stats.missing_fraction(0) - stats.missing_fraction(1)).abs() < 0.02);
    }

    #[test]
    fn congested_drop_targets_congested_sessions_only() {
        // Half the stream rebuffers; MNAR drop must hit only that half.
        let records: Vec<SessionRecord> = (0..10_000)
            .map(|i| {
                let mut r = record(i, i % 2 == 0);
                if i % 2 == 0 {
                    r.rebuffered = true;
                    r.rebuffer_count = 4;
                    r.throughput_bps = 1e6;
                }
                r
            })
            .collect();
        let f = TelemetryFaults {
            drop_congested: 0.5,
            ..TelemetryFaults::none(9)
        };
        let (_, stats) = f.apply(0, records);
        // Treated arm (even indices) is the congested one here.
        assert!(stats.missing_fraction(1) > 0.4, "{stats:?}");
        assert_eq!(stats.dropped_congested[0], 0, "healthy arm untouched");
        assert_eq!(stats.dropped_mcar, [0, 0]);
    }

    #[test]
    fn severity_ranks_experiences() {
        let healthy = record(0, false);
        assert_eq!(congestion_severity(&healthy), 0.0);
        let mut slow = record(1, false);
        slow.throughput_bps = 1e6;
        assert!(congestion_severity(&slow) > 0.5);
        let mut rebuf = record(2, false);
        rebuf.rebuffered = true;
        rebuf.rebuffer_count = 1;
        assert!(congestion_severity(&rebuf) >= 0.6);
        let mut cancelled = record(3, false);
        cancelled.cancelled = true;
        assert_eq!(congestion_severity(&cancelled), 1.0);
        // More rebuffers, more severity, capped at 1.
        let mut worse = rebuf.clone();
        worse.rebuffer_count = 10;
        assert!(congestion_severity(&worse) >= congestion_severity(&rebuf));
        assert!(congestion_severity(&worse) <= 1.0);
    }

    #[test]
    fn reorder_round_trips_to_sequence_order() {
        let f = TelemetryFaults {
            reorder_window: 7,
            ..TelemetryFaults::none(5)
        };
        let input = stream(1000);
        let (out, stats) = f.apply(2, input.clone());
        assert_eq!(out.len(), 1000, "reordering alone loses nothing");
        assert!(
            stats.out_of_order[0] + stats.out_of_order[1] > 0,
            "window 7 over 1000 records must reorder something"
        );
        for (a, b) in out.iter().zip(&input) {
            assert_eq!(a.arrival_s.to_bits(), b.arrival_s.to_bits());
        }
    }

    #[test]
    fn duplicates_are_discarded_by_the_receiver() {
        let f = TelemetryFaults {
            duplicate_p: 0.3,
            reorder_window: 4,
            ..TelemetryFaults::none(11)
        };
        let input = stream(2000);
        let (out, stats) = f.apply(1, input.clone());
        assert_eq!(out.len(), 2000, "dedup restores the original stream");
        let dup = stats.duplicated[0] + stats.duplicated[1];
        assert!(dup > 400, "duplicate copies injected: {dup}");
        for (a, b) in out.iter().zip(&input) {
            assert_eq!(a.arrival_s.to_bits(), b.arrival_s.to_bits());
        }
    }

    #[test]
    fn corruption_nans_one_field_and_is_counted() {
        let f = TelemetryFaults {
            corrupt_nan_p: 0.5,
            ..TelemetryFaults::none(3)
        };
        let (out, stats) = f.apply(0, stream(4000));
        let corrupted = stats.corrupted[0] + stats.corrupted[1];
        assert!((1500..2500).contains(&(corrupted as usize)), "{corrupted}");
        let nan_records = out
            .iter()
            .filter(|r| {
                r.throughput_bps.is_nan()
                    || r.min_rtt_s.is_nan()
                    || r.play_delay_s.is_nan()
                    || r.bitrate_bps.is_nan()
                    || r.quality.is_nan()
                    || r.bytes.is_nan()
            })
            .count();
        assert_eq!(nan_records as u64, corrupted);
    }

    #[test]
    fn outage_loses_exactly_the_window() {
        let f = TelemetryFaults {
            outage: Some(OutageWindow {
                start_s: 1000.0,
                end_s: 3000.0,
            }),
            ..TelemetryFaults::none(1)
        };
        // Arrivals at 0, 10, 20, … — the window covers [1000, 3000).
        let (out, stats) = f.apply(0, stream(1000));
        assert!(out.iter().all(|r| !(1000.0..3000.0).contains(&r.arrival_s)));
        assert_eq!(
            stats.dropped_outage[0] + stats.dropped_outage[1],
            200,
            "arrivals every 10 s over a 2000 s window"
        );
    }

    #[test]
    fn stats_merge_is_fieldwise_addition() {
        let f = TelemetryFaults {
            drop_mcar: 0.1,
            duplicate_p: 0.2,
            ..TelemetryFaults::none(6)
        };
        let (_, a) = f.apply(0, stream(500));
        let (_, b) = f.apply(1, stream(300));
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.sent_total(), 800);
        assert_eq!(
            merged.delivered_total(),
            a.delivered_total() + b.delivered_total()
        );
        assert_eq!(merged.duplicated[0], a.duplicated[0] + b.duplicated[0]);
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut f = TelemetryFaults::none(0);
        assert!(f.validate().is_ok());
        f.drop_mcar = 1.5;
        assert!(f.validate().is_err());
        f.drop_mcar = f64::NAN;
        assert!(f.validate().is_err());
        f.drop_mcar = 0.0;
        f.outage = Some(OutageWindow {
            start_s: 10.0,
            end_s: 5.0,
        });
        assert!(f.validate().is_err());
    }

    #[test]
    fn crash_list_matches_links() {
        let f = TelemetryFaults {
            crash_links: vec![2, 5],
            ..TelemetryFaults::none(0)
        };
        assert!(f.should_crash(2));
        assert!(f.should_crash(5));
        assert!(!f.should_crash(0));
    }

    #[test]
    fn reorder_buffer_repairs_adversarial_shuffles() {
        // Any shuffle with displacement ≤ W, plus duplicates, must come
        // out sorted and deduplicated through a buffer of 2W + 2.
        let input = stream(200);
        let w = 6usize;
        let mut wire: Vec<(u64, u64, SessionRecord)> = Vec::new();
        let mut rng = SimRng::new(77);
        for (i, r) in input.iter().enumerate() {
            let key = i as u64 + rng.below(w as u64 + 1);
            wire.push((key, i as u64, r.clone()));
            if rng.bernoulli(0.25) {
                let key = i as u64 + rng.below(w as u64 + 1);
                wire.push((key, i as u64, r.clone()));
            }
        }
        wire.sort_by_key(|&(k, _, _)| k);
        let mut buffer = ReorderBuffer::new(2 * w + 2);
        let mut out = Vec::new();
        for (_, seq, r) in wire {
            buffer.push(seq, r, &mut out);
        }
        let (_, late) = buffer.finish(&mut out);
        assert_eq!(late, 0);
        assert_eq!(out.len(), input.len());
        for (a, b) in out.iter().zip(&input) {
            assert_eq!(a.arrival_s.to_bits(), b.arrival_s.to_bits());
        }
    }
}
