//! Fluid-level video streaming simulator: the substrate for the paper's
//! paired-link bitrate-capping experiment (§4).
//!
//! The original experiment ran on two reliably congested 100 Gb/s Netflix
//! peering links carrying ~14 M production sessions. This crate replaces
//! that substrate with a synthetic equivalent that preserves the causal
//! mechanism under study:
//!
//! * sessions arrive via a non-homogeneous Poisson process with a
//!   diurnal (and weekday/weekend) demand curve — [`demand`];
//! * each session is a video client with an ABR bitrate ladder, playback
//!   buffer, startup/rebuffer dynamics and a patience limit —
//!   [`client`], [`abr`];
//! * each link is a fluid bottleneck: active sessions share capacity
//!   max–min fairly; excess demand builds a standing queue that inflates
//!   every session's RTT and sheds load as loss — [`link`];
//! * **bitrate capping** is the treatment: capped sessions select from a
//!   truncated ladder, lowering offered load, which delays congestion
//!   onset for *everyone* on the link — the congestion interference the
//!   paper measures;
//! * two statistically similar links run side by side with configurable
//!   imbalance (including the link-1 rebuffer quirk reported in §4.1) —
//!   [`sim::PairedSim`];
//! * a whole fleet of links ([`fleet`]) can additionally share one
//!   *routed* arrival stream ([`routing`]): each session chooses among
//!   k candidate links, which couples clusters through the router — the
//!   cross-cluster interference channel the fleet designs are
//!   stress-tested against.
//!
//! Outputs are per-session records ([`session::SessionRecord`]) carrying
//! every §4 metric; the `unbiased` crate's designs and analyses consume
//! them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abr;
pub mod arena;
pub mod client;
pub mod config;
pub mod demand;
pub mod engine;
pub mod fleet;
pub mod link;
pub mod routing;
pub mod scenario;
pub mod session;
pub mod sim;
pub mod telemetry;

pub use arena::ClientArena;
pub use config::StreamConfig;
pub use engine::EngineBackend;
pub use fleet::{FleetDesign, FleetRun, FleetSim, LinkPopulation, LinkSpec};
pub use routing::{RoutedArrival, RoutingConfig, RoutingPolicy};
pub use scenario::AllocationSchedule;
pub use session::SessionRecord;
pub use sim::{LinkSim, PairedSim};
pub use telemetry::{TelemetryFaults, TelemetryStats};
