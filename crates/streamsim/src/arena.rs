//! Struct-of-arrays storage for the active session population.
//!
//! The per-tick client pass used to iterate a `Vec<Client>` of ~230-byte
//! structs, pulling four cache lines per session to touch a dozen hot
//! floats. [`ClientArena`] stores those hot fields as parallel columns
//! (`Vec<f64>`/`Vec<u64>`/one-byte phases) so the tick streams over
//! contiguous memory, and keeps the cold per-session identity
//! ([`SessionRecord`] fields, patience, RNG) in side tables touched only
//! on events.
//!
//! The tick is split into three passes, each preserving the scalar
//! [`Client::step`] order *per client* (clients are independent within a
//! tick, so running the passes column-wise is bit-identical to stepping
//! each client alone):
//!
//! 1. a **download pass** over only the sessions that can be
//!    downloading (the caller's active list — idle sessions provably
//!    no-op, so they are skipped entirely), which collects
//!    chunk-boundary events into a scratch list;
//! 2. a **slow path** over the collected boundaries only (EWMA update,
//!    ziggurat noise redraw, ABR ladder walk, segment folding);
//! 3. a **phase pass** over everyone (startup/playing/rebuffering
//!    transitions, session completion) that also refreshes each
//!    survivor's next-tick demand while its state is in cache.
//!
//! Per-session minimum-RTT tracking is global rather than per client:
//! a monotone suffix-min stack over the tick RTT series answers "min
//! RTT over this session's lifetime" with one binary search at finish
//! (see `rtt_min_stack`), eliminating a load/compare per client-tick.
//!
//! `Client` remains the retained scalar reference implementation:
//! `tests/arena_oracle.rs` proves the arena's records and demand stream
//! bit-identical to stepping each `Client` individually under random
//! arrival/exit sequences.

use crate::abr::{perceptual_quality, Ladder};
use crate::client::{Client, Phase};
use crate::config::StreamConfig;
use crate::session::{LinkId, SessionRecord};
use dessim::SimRng;

/// Cold per-session state: record identity plus fields touched only on
/// phase transitions, kept out of the hot columns so the download pass
/// streams over exactly what it needs.
#[derive(Debug, Clone)]
struct Cold {
    link: LinkId,
    day: usize,
    hour: usize,
    weekend: bool,
    arrival_s: f64,
    treated: bool,
    patience_s: f64,
    play_delay_s: f64,
    rebuffer_count: u32,
    switches: u32,
    bitrate_time_product: f64,
    quality_time_product: f64,
}

/// Per-session chunk-boundary parameters, packed into one 24-byte row so
/// the boundary slow path pays a single gather instead of three spread
/// across the cold table. `permitted` is the session's permitted ladder
/// prefix (`Ladder::permitted_rungs(cap)`, the whole ladder when
/// untreated), precomputed once so every chunk's ABR walk skips the
/// per-rung ceiling comparisons.
#[derive(Debug, Clone, Copy)]
struct ChunkParams {
    sigma: f64,
    dip_prob: f64,
    permitted: usize,
}

/// The active session population in struct-of-arrays layout.
///
/// Columns are index-aligned: slot `i` of every column belongs to the
/// same session. [`ClientArena::compact`] removes finished sessions from
/// all columns order-preservingly, so callers that maintain index
/// permutations (e.g. `LinkSim`'s peak-demand order) can remap them.
#[derive(Debug, Default)]
pub struct ClientArena {
    // Hot columns: read/written by the per-tick download or phase pass.
    phase: Vec<Phase>,
    buffer_s: Vec<f64>,
    bitrate: Vec<f64>,
    chunk_noise: Vec<f64>,
    chunk_progress_s: Vec<f64>,
    access_bps: Vec<f64>,
    watched_s: Vec<f64>,
    watch_target_s: Vec<f64>,
    /// Minimum RTT carried *into* the arena at push time (∞ for fresh
    /// sessions). The per-tick minimum tracking itself is global — see
    /// `rtt_min_stack` — so this column is never written after push.
    min_rtt_s: Vec<f64>,
    bytes: Vec<f64>,
    retx_bytes: Vec<f64>,
    active_dl_s: Vec<f64>,
    /// Value of [`ClientArena::tick_count`] when the session entered
    /// (minus any ticks it had already lived). A session's ticks-alive
    /// count — needed only for the volume-independent retransmission
    /// term at finish — is `tick_count - arrival_tick`, which saves a
    /// per-client counter increment every tick.
    arrival_tick: Vec<u64>,
    /// Actual tick the session was pushed at (no pre-life adjustment):
    /// the start of its RTT observation window in `rtt_min_stack`.
    push_tick: Vec<u64>,
    seg_play_ticks: Vec<u64>,
    /// Next-tick demand (bits/s), refreshed by the phase pass; the
    /// allocator reads this column directly.
    demand: Vec<f64>,
    /// The session's constant non-zero demand value (access rate capped
    /// by the transport ceiling); demands are two-valued, so this is the
    /// only other value `demand` ever takes.
    peak_demand: Vec<f64>,
    // Event columns: touched only at chunk boundaries.
    throughput_est: Vec<f64>,
    chunk_params: Vec<ChunkParams>,
    rng: Vec<SimRng>,
    // Cold side table.
    cold: Vec<Cold>,
    /// Tombstones: finished sessions stay in place (demand zeroed, no
    /// allocation-order entry, skipped by the phase pass) until enough
    /// accumulate to amortize a whole-arena compaction — see
    /// [`ClientArena::needs_compaction`].
    dead: Vec<bool>,
    dead_count: usize,
    /// Scratch: chunk-boundary events collected by the download pass,
    /// as (index, effective rate) pairs.
    boundary: Vec<(u32, f64)>,
    /// Scratch: survivor indices for compaction.
    keep: Vec<u32>,
    /// Monotone suffix-min structure over the per-tick RTT series:
    /// entries `(tick, rtt)` with both strictly ascending, where an
    /// entry's `rtt` is the minimum over every tick from its `tick` to
    /// now. Replaces a per-client min update (70M loads/compares on the
    /// five-day run) with amortized O(1) per *tick* plus one binary
    /// search per session finish; the result is the min over the same
    /// value set, hence bit-identical. Worst case (monotonically rising
    /// RTT forever) grows one entry per tick — a few MB over five days,
    /// accepted for the hot-loop win.
    rtt_min_stack: Vec<(u64, f64)>,
    /// Ticks stepped so far (incremented at the top of
    /// [`ClientArena::step_all`]); see `arrival_tick`.
    tick_count: u64,
}

impl ClientArena {
    /// Empty arena.
    pub fn new() -> ClientArena {
        ClientArena::default()
    }

    /// Number of session slots, including tombstoned (dead) slots that
    /// have not been compacted away yet. Columns and the shares buffer
    /// are sized by this.
    pub fn len(&self) -> usize {
        self.phase.len()
    }

    /// Whether the arena holds no session slots.
    pub fn is_empty(&self) -> bool {
        self.phase.is_empty()
    }

    /// Number of live (not finished) sessions.
    pub fn live_sessions(&self) -> usize {
        self.len() - self.dead_count
    }

    /// Current per-session demands (bits/s), index-aligned with the
    /// arena. This is the column the bandwidth allocator consumes.
    pub fn demands(&self) -> &[f64] {
        &self.demand
    }

    /// Per-session peak demand (the constant non-zero demand value).
    pub fn peak_demands(&self) -> &[f64] {
        &self.peak_demand
    }

    /// Admit a client: decompose it into the columns. Its initial
    /// demand is whatever the scalar [`Client::demand`] reports.
    pub fn push(&mut self, cfg: &StreamConfig, client: Client) {
        // The download pass checks chunk boundaries only for sessions
        // that made progress this tick; that is sound because progress
        // is always below the chunk length between ticks.
        debug_assert!(
            client.chunk_progress_s < cfg.chunk_s,
            "client injected mid-boundary"
        );
        let demand_now = client.demand(cfg).rate_bps;
        let peak = client.access_bps.min(cfg.session_max_bps);
        self.phase.push(client.phase);
        self.buffer_s.push(client.buffer_s);
        self.bitrate.push(client.bitrate);
        self.chunk_noise.push(client.chunk_noise);
        self.chunk_progress_s.push(client.chunk_progress_s);
        self.access_bps.push(client.access_bps);
        self.watched_s.push(client.watched_s);
        self.watch_target_s.push(client.watch_target_s);
        self.min_rtt_s.push(client.min_rtt_s);
        self.bytes.push(client.bytes);
        self.retx_bytes.push(client.retx_bytes);
        self.active_dl_s.push(client.active_dl_s);
        // Wrapping keeps pre-stepped injected clients exact: the finish
        // subtraction re-adds the same wrap.
        self.arrival_tick
            .push(self.tick_count.wrapping_sub(client.ticks_alive));
        self.push_tick.push(self.tick_count);
        self.seg_play_ticks.push(client.seg_play_ticks);
        self.demand.push(demand_now);
        self.peak_demand.push(peak);
        self.throughput_est.push(client.throughput_est);
        self.chunk_params.push(ChunkParams {
            sigma: client.noise_sigma,
            dip_prob: client.dip_prob,
            permitted: if client.treated {
                Ladder::permitted_rungs_in(&cfg.ladder_bps, cfg.cap_bps)
            } else {
                cfg.ladder_bps.len()
            },
        });
        self.rng.push(client.rng);
        self.dead.push(false);
        self.cold.push(Cold {
            link: client.link,
            day: client.day,
            hour: client.hour,
            weekend: client.weekend,
            arrival_s: client.arrival_s,
            treated: client.treated,
            patience_s: client.patience_s,
            play_delay_s: client.play_delay_s,
            rebuffer_count: client.rebuffer_count,
            switches: client.switches,
            bitrate_time_product: client.bitrate_time_product,
            quality_time_product: client.quality_time_product,
        });
    }

    /// Advance every session one tick given its allocated rate and the
    /// shared link state. Finished sessions' records are appended to
    /// `records` and their slots flagged in `finished` (cleared and
    /// resized to the population); returns whether any session finished.
    ///
    /// `downloaders` lists the sessions that may be downloading this
    /// tick — it must be duplicate-free and include every session whose
    /// share is positive and whose download gate is open (extra
    /// sessions are harmless: their download block no-ops exactly like
    /// the scalar skip). `LinkSim` passes its active allocation order;
    /// `0..len` is always a valid, conservative choice. Idle sessions
    /// provably transfer nothing (zero share ⇒ zero rate), so skipping
    /// them keeps the download pass proportional to the *active*
    /// population.
    ///
    /// Survivors' next-tick demands are refreshed in the
    /// [`ClientArena::demands`] column. Call [`ClientArena::compact`]
    /// afterwards when any finished.
    #[allow(clippy::too_many_arguments)]
    pub fn step_all(
        &mut self,
        cfg: &StreamConfig,
        ladder: &Ladder,
        shares: &[f64],
        downloaders: &[usize],
        rtt_s: f64,
        loss: f64,
        now_s: f64,
        dt_s: f64,
        records: &mut Vec<SessionRecord>,
        finished: &mut Vec<bool>,
    ) -> bool {
        let n = self.len();
        debug_assert_eq!(shares.len(), n, "one share per session");
        // The permitted-rung prefixes in `chunk_params` were computed
        // from `cfg.ladder_bps` at push time; the ladder stepped with
        // must be the same one.
        debug_assert_eq!(ladder.rates(), &cfg.ladder_bps[..]);
        self.tick_count += 1;
        finished.clear();
        finished.resize(n, false);

        // Record this tick's RTT in the global suffix-min structure:
        // pop entries whose minima the new value subsumes, then push it
        // with the earliest tick it now covers. Amortized O(1).
        {
            let mut covers_from = self.tick_count;
            while let Some(&(t, v)) = self.rtt_min_stack.last() {
                if v >= rtt_s {
                    covers_from = t;
                    self.rtt_min_stack.pop();
                } else {
                    break;
                }
            }
            self.rtt_min_stack.push((covers_from, rtt_s));
        }

        // Destructure into same-length slices: with every column sliced
        // to `..n` the optimizer proves `i < n` once per indexed loop
        // and elides the per-access bounds checks.
        let ClientArena {
            phase,
            buffer_s,
            bitrate,
            chunk_noise,
            chunk_progress_s,
            access_bps,
            watched_s,
            watch_target_s,
            min_rtt_s,
            bytes,
            retx_bytes,
            active_dl_s,
            arrival_tick,
            push_tick,
            seg_play_ticks,
            demand,
            peak_demand,
            throughput_est,
            chunk_params,
            rng,
            cold,
            dead,
            dead_count,
            boundary,
            keep: _,
            rtt_min_stack,
            tick_count,
        } = self;
        let rtt_min_stack = &rtt_min_stack[..];
        let tick_count = *tick_count;
        let shares = &shares[..n];
        let phase = &mut phase[..n];
        let buffer_s = &mut buffer_s[..n];
        let bitrate = &mut bitrate[..n];
        let chunk_noise = &mut chunk_noise[..n];
        let chunk_progress_s = &mut chunk_progress_s[..n];
        let access_bps = &access_bps[..n];
        let watched_s = &mut watched_s[..n];
        let watch_target_s = &watch_target_s[..n];
        let min_rtt_s = &mut min_rtt_s[..n];
        let bytes = &mut bytes[..n];
        let retx_bytes = &mut retx_bytes[..n];
        let active_dl_s = &mut active_dl_s[..n];
        let arrival_tick = &arrival_tick[..n];
        let push_tick = &push_tick[..n];
        let seg_play_ticks = &mut seg_play_ticks[..n];
        let demand = &mut demand[..n];
        let peak_demand = &peak_demand[..n];
        let throughput_est = &mut throughput_est[..n];
        let chunk_params = &chunk_params[..n];
        let rng = &mut rng[..n];
        let cold = &mut cold[..n];
        let dead = &mut dead[..n];

        // Pass 1: download arithmetic, only over the sessions that can
        // transfer. The loss factors are tick-constant and hoisted; the
        // per-client expressions are term-for-term those of
        // `Client::step`. The chunk-boundary test lives inside the
        // `rate > 0` block because progress is below the chunk length
        // between ticks (a boundary resets it the tick it fires), so
        // only sessions that added progress this tick can cross; the
        // collection itself is branch-free — an unconditional write at
        // the list head plus a conditional advance (the same pattern as
        // `LinkSim`'s order build).
        let one_minus_loss = 1.0 - loss;
        let retx_factor = cfg.loss_floor + loss * cfg.loss_to_retx;
        let max_buffer_s = cfg.max_buffer_s;
        let chunk_s = cfg.chunk_s;
        if boundary.len() < n {
            boundary.resize(n, (0, 0.0));
        }
        let boundary_scratch = &mut boundary[..n];
        let mut n_boundary = 0usize;
        for &i in downloaders {
            let downloading = phase[i] != Phase::Playing || buffer_s[i] < max_buffer_s;
            if downloading {
                let rate = shares[i].min(access_bps[i]) * chunk_noise[i] * one_minus_loss;
                if rate > 0.0 {
                    let payload_bytes = rate * dt_s / 8.0;
                    bytes[i] += payload_bytes;
                    retx_bytes[i] += payload_bytes * retx_factor;
                    active_dl_s[i] += dt_s;
                    let video_s = rate * dt_s / bitrate[i];
                    buffer_s[i] += video_s;
                    let progress = chunk_progress_s[i] + video_s;
                    chunk_progress_s[i] = progress;
                    boundary_scratch[n_boundary] = (i as u32, rate);
                    n_boundary += usize::from(progress >= chunk_s);
                }
            }
        }

        // Pass 2 (slow path), split into two loops over the collected
        // boundaries. Pass 2a batches the RNG work: each session's two
        // draws (ziggurat normal, then the dip Bernoulli — the same
        // per-stream order as the scalar reference, so records stay
        // bit-identical) plus the `fast_exp` noise rebuild, touching
        // only the rng/chunk_params/chunk_noise columns. Pass 2b then
        // does the ABR bookkeeping (EWMA, ladder walk, segment fold)
        // with no RNG in the loop body. Measured interleaved old-vs-new
        // on the 1-vCPU reference box: five_day_default 1.370 s vs
        // 1.392 s means over six rounds — neutral within the ±5% noise
        // band (the hoped-for cross-session overlap of the serial
        // xoshiro chains did not show up as wall-clock). Kept because
        // the draw loop is now a self-contained batch point: a SIMD or
        // table-sharing sampler can replace pass 2a without touching
        // the ABR logic.
        for &(iu, _) in boundary_scratch[..n_boundary].iter() {
            let i = iu as usize;
            let p = chunk_params[i];
            let z = rng[i].standard_normal();
            let mut noise = dessim::fast_exp(-0.5 * p.sigma * p.sigma + p.sigma * z);
            // Rare difficulty dips: a transient collapse that can drain
            // the buffer (rebuffer driver independent of link congestion).
            if rng[i].bernoulli(p.dip_prob) {
                noise *= 0.12;
            }
            chunk_noise[i] = noise;
        }
        for &(iu, rate) in boundary_scratch[..n_boundary].iter() {
            let i = iu as usize;
            chunk_progress_s[i] = 0.0;
            // `rate > 0` held when the boundary was collected, but the
            // scalar reference guards the EWMA on it, so keep the guard
            // for exactness under future collection changes.
            if rate > 0.0 {
                throughput_est[i] = 0.8 * throughput_est[i] + 0.2 * rate;
            }
            let p = chunk_params[i];
            let next = ladder.select_from_top(p.permitted, throughput_est[i], cfg.abr_safety);
            if next != bitrate[i] {
                if phase[i] != Phase::Startup && (next - bitrate[i]).abs() > 1.0 {
                    cold[i].switches += 1;
                }
                fold_products(&mut seg_play_ticks[i], bitrate[i], &mut cold[i], dt_s);
                bitrate[i] = next;
            }
        }

        // Pass 3: phase transitions, completions (whose records pull
        // the session's minimum RTT out of the global suffix-min stack
        // — the min over the same per-tick values the scalar folds
        // incrementally, hence the same f64), and the fused demand
        // refresh for survivors.
        let mut any_finished = false;
        for i in 0..n {
            if dead[i] {
                continue; // tombstone awaiting compaction
            }
            match phase[i] {
                Phase::Startup => {
                    if buffer_s[i] >= cfg.startup_buffer_s {
                        phase[i] = Phase::Playing;
                        // Startup cost: fill time plus connection setup RTTs.
                        cold[i].play_delay_s = (now_s - cold[i].arrival_s) + 3.0 * rtt_s;
                    } else if now_s - cold[i].arrival_s > cold[i].patience_s {
                        records.push(finish_record(
                            FinishSlot {
                                ticks_alive: tick_count.wrapping_sub(arrival_tick[i]),
                                watched_s: watched_s[i],
                                active_dl_s: active_dl_s[i],
                                min_rtt_s: min_rtt_s[i]
                                    .min(window_min_rtt(rtt_min_stack, push_tick[i] + 1)),
                                bitrate: bitrate[i],
                                seg_play_ticks: &mut seg_play_ticks[i],
                                bytes: bytes[i],
                                retx_bytes: &mut retx_bytes[i],
                                cold: &mut cold[i],
                            },
                            cfg,
                            dt_s,
                            now_s,
                            true,
                        ));
                        finished[i] = true;
                        dead[i] = true;
                        *dead_count += 1;
                        // Dead slots are omitted from the allocation
                        // order, whose contract requires their demand
                        // to be zero.
                        demand[i] = 0.0;
                        any_finished = true;
                        continue;
                    }
                }
                Phase::Playing => {
                    watched_s[i] += dt_s;
                    buffer_s[i] -= dt_s;
                    seg_play_ticks[i] += 1;
                    if buffer_s[i] <= 0.0 {
                        buffer_s[i] = 0.0;
                        phase[i] = Phase::Rebuffering;
                        cold[i].rebuffer_count += 1;
                    }
                    if watched_s[i] >= watch_target_s[i] {
                        records.push(finish_record(
                            FinishSlot {
                                ticks_alive: tick_count.wrapping_sub(arrival_tick[i]),
                                watched_s: watched_s[i],
                                active_dl_s: active_dl_s[i],
                                min_rtt_s: min_rtt_s[i]
                                    .min(window_min_rtt(rtt_min_stack, push_tick[i] + 1)),
                                bitrate: bitrate[i],
                                seg_play_ticks: &mut seg_play_ticks[i],
                                bytes: bytes[i],
                                retx_bytes: &mut retx_bytes[i],
                                cold: &mut cold[i],
                            },
                            cfg,
                            dt_s,
                            now_s,
                            false,
                        ));
                        finished[i] = true;
                        dead[i] = true;
                        *dead_count += 1;
                        demand[i] = 0.0;
                        any_finished = true;
                        continue;
                    }
                }
                Phase::Rebuffering => {
                    if buffer_s[i] >= cfg.resume_buffer_s {
                        phase[i] = Phase::Playing;
                    }
                }
            }
            // Demand is two-valued: zero while idling on a full playback
            // buffer, the constant peak rate otherwise (see
            // `Client::demand`).
            demand[i] = if phase[i] == Phase::Playing && buffer_s[i] >= max_buffer_s {
                0.0
            } else {
                peak_demand[i]
            };
        }
        any_finished
    }

    /// Whether enough tombstones have accumulated that a compaction
    /// pays for itself. The threshold (at least 32 dead and at least a
    /// quarter of the slots) amortizes the whole-arena gather over many
    /// finishes: per-tick compaction was ~10% of the five-day run.
    pub fn needs_compaction(&self) -> bool {
        self.dead_count >= 32 && 4 * self.dead_count >= self.len()
    }

    /// Remove every tombstoned slot from every column, preserving the
    /// order of survivors, and record the old→new index mapping in
    /// `remap` (`usize::MAX` for removed slots) so callers can fix up
    /// index permutations.
    pub fn compact_stale(&mut self, remap: &mut Vec<usize>) {
        // Survivor indices once, then one branch-free gather per column
        // (a per-column `retain` re-pays the flag branch 20 times).
        let mut keep = std::mem::take(&mut self.keep);
        keep.clear();
        remap.clear();
        remap.resize(self.len(), usize::MAX);
        for (i, &done) in self.dead.iter().enumerate() {
            if !done {
                remap[i] = keep.len();
                keep.push(i as u32);
            }
        }
        fn gather<T: Clone>(col: &mut Vec<T>, keep: &[u32]) {
            for (new, &old) in keep.iter().enumerate() {
                col[new] = col[old as usize].clone();
            }
            col.truncate(keep.len());
        }
        gather(&mut self.phase, &keep);
        gather(&mut self.buffer_s, &keep);
        gather(&mut self.bitrate, &keep);
        gather(&mut self.chunk_noise, &keep);
        gather(&mut self.chunk_progress_s, &keep);
        gather(&mut self.access_bps, &keep);
        gather(&mut self.watched_s, &keep);
        gather(&mut self.watch_target_s, &keep);
        gather(&mut self.min_rtt_s, &keep);
        gather(&mut self.bytes, &keep);
        gather(&mut self.retx_bytes, &keep);
        gather(&mut self.active_dl_s, &keep);
        gather(&mut self.arrival_tick, &keep);
        gather(&mut self.push_tick, &keep);
        gather(&mut self.seg_play_ticks, &keep);
        gather(&mut self.demand, &keep);
        gather(&mut self.peak_demand, &keep);
        gather(&mut self.throughput_est, &keep);
        gather(&mut self.chunk_params, &keep);
        gather(&mut self.rng, &keep);
        gather(&mut self.dead, &keep);
        gather(&mut self.cold, &keep);
        self.dead_count = 0;
        self.keep = keep;
    }

    /// Eagerly remove the sessions flagged in `finished` (plus any
    /// older tombstones), preserving survivor order. Convenience for
    /// tests and callers that keep external state index-aligned every
    /// tick; the production path defers via [`ClientArena::needs_compaction`] /
    /// [`ClientArena::compact_stale`].
    pub fn compact(&mut self, finished: &[bool]) {
        debug_assert_eq!(finished.len(), self.len());
        for (i, &done) in finished.iter().enumerate() {
            if done && !self.dead[i] {
                self.dead[i] = true;
                self.dead_count += 1;
            }
        }
        let mut remap = Vec::new();
        self.compact_stale(&mut remap);
    }
}

/// Minimum RTT observed over the ticks `[start, now]`, answered from
/// the arena's monotone suffix-min stack: the last entry at or before
/// `start` covers it (the first entry is the global minimum and covers
/// any earlier start). `∞` when no tick has been recorded.
#[inline]
fn window_min_rtt(stack: &[(u64, f64)], start: u64) -> f64 {
    let idx = stack.partition_point(|&(t, _)| t <= start);
    if idx == 0 {
        stack.first().map_or(f64::INFINITY, |&(_, v)| v)
    } else {
        stack[idx - 1].1
    }
}

/// The borrows of slot `i` a session-finish needs — free functions
/// instead of `&mut self` methods so `step_all` can keep its columns
/// destructured into bounds-check-free slices.
struct FinishSlot<'a> {
    ticks_alive: u64,
    watched_s: f64,
    active_dl_s: f64,
    min_rtt_s: f64,
    bitrate: f64,
    seg_play_ticks: &'a mut u64,
    bytes: f64,
    retx_bytes: &'a mut f64,
    cold: &'a mut Cold,
}

/// Fold the current constant-bitrate segment into the time-weighted
/// products. Must run before the slot's bitrate changes and at session
/// end (mirrors `Client::fold_products`).
#[inline]
fn fold_products(seg_play_ticks: &mut u64, bitrate: f64, cold: &mut Cold, dt_s: f64) {
    if *seg_play_ticks > 0 {
        let t = *seg_play_ticks as f64 * dt_s;
        cold.bitrate_time_product += bitrate * t;
        cold.quality_time_product += perceptual_quality(bitrate) * t;
        *seg_play_ticks = 0;
    }
}

/// Build the session record for a finishing slot (mirrors
/// `Client::finish`).
fn finish_record(
    slot: FinishSlot<'_>,
    cfg: &StreamConfig,
    dt_s: f64,
    now_s: f64,
    cancelled: bool,
) -> SessionRecord {
    // Volume-independent retransmissions (connection upkeep, tail
    // losses), accrued once over the session's lifetime.
    *slot.retx_bytes += cfg.fixed_retx_bytes_per_s * dt_s * slot.ticks_alive as f64;
    fold_products(slot.seg_play_ticks, slot.bitrate, slot.cold, dt_s);
    // Play time == watched seconds (playback advances exactly while
    // playing), so no separate accumulator is needed.
    let play = slot.watched_s.max(1e-9);
    let c = slot.cold;
    SessionRecord {
        link: c.link,
        day: c.day,
        hour: c.hour,
        weekend: c.weekend,
        arrival_s: c.arrival_s,
        treated: c.treated,
        throughput_bps: if slot.active_dl_s > 0.0 {
            slot.bytes * 8.0 / slot.active_dl_s
        } else {
            0.0
        },
        min_rtt_s: if slot.min_rtt_s.is_finite() {
            slot.min_rtt_s
        } else {
            f64::NAN
        },
        play_delay_s: c.play_delay_s,
        bitrate_bps: if cancelled {
            f64::NAN
        } else {
            c.bitrate_time_product / play
        },
        quality: if cancelled {
            f64::NAN
        } else {
            c.quality_time_product / play
        },
        rebuffer_count: c.rebuffer_count,
        rebuffered: c.rebuffer_count > 0,
        cancelled,
        bytes: slot.bytes,
        retx_bytes: *slot.retx_bytes,
        switches: c.switches,
        duration_s: now_s - c.arrival_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::AllocationSchedule;
    use crate::sim::LinkSim;

    fn cfg() -> StreamConfig {
        StreamConfig {
            access_median_bps: 20e6,
            access_sigma: 0.05,
            ..Default::default()
        }
    }

    fn make_client(c: &StreamConfig, ladder: &Ladder, seed: u64) -> Client {
        Client::new(
            c,
            ladder,
            LinkId::One,
            0,
            20,
            false,
            0.0,
            false,
            20e6,
            SimRng::new(seed),
        )
    }

    /// The arena must reproduce the scalar client bit-for-bit over a
    /// whole session lifetime, including the finish record. (The full
    /// randomized suite lives in `tests/arena_oracle.rs`.)
    #[test]
    fn matches_scalar_client_to_completion() {
        let c = cfg();
        let ladder = Ladder::new(c.ladder_bps.clone());
        let scalar = make_client(&c, &ladder, 42);
        let mut arena = ClientArena::new();
        arena.push(&c, scalar.clone());
        let mut scalar = scalar;

        let mut records = Vec::new();
        let mut finished = Vec::new();
        let mut t = 0.0;
        for _ in 0..200_000 {
            t += 1.0;
            let scalar_done = scalar.step(&c, &ladder, 20e6, 0.02, 0.0, t, 1.0);
            let any = arena.step_all(
                &c,
                &ladder,
                &[20e6],
                &[0],
                0.02,
                0.0,
                t,
                1.0,
                &mut records,
                &mut finished,
            );
            assert_eq!(scalar_done.is_some(), any);
            if let Some(rec) = scalar_done {
                let arec = records.pop().unwrap();
                assert_eq!(rec.bytes.to_bits(), arec.bytes.to_bits());
                assert_eq!(rec.throughput_bps.to_bits(), arec.throughput_bps.to_bits());
                assert_eq!(rec.bitrate_bps.to_bits(), arec.bitrate_bps.to_bits());
                assert_eq!(rec.quality.to_bits(), arec.quality.to_bits());
                assert_eq!(rec.retx_bytes.to_bits(), arec.retx_bytes.to_bits());
                assert_eq!(rec.duration_s.to_bits(), arec.duration_s.to_bits());
                assert_eq!(rec.rebuffer_count, arec.rebuffer_count);
                assert_eq!(rec.switches, arec.switches);
                assert_eq!(rec.cancelled, arec.cancelled);
                return;
            }
            // Demands agree every tick.
            assert_eq!(
                scalar.demand(&c).rate_bps.to_bits(),
                arena.demands()[0].to_bits()
            );
        }
        panic!("session never finished");
    }

    #[test]
    fn compact_preserves_survivor_order() {
        let c = cfg();
        let ladder = Ladder::new(c.ladder_bps.clone());
        let mut arena = ClientArena::new();
        for seed in 0..5 {
            arena.push(&c, make_client(&c, &ladder, seed));
        }
        let accesses: Vec<f64> = arena.access_bps.clone();
        arena.compact(&[true, false, true, false, false]);
        assert_eq!(arena.len(), 3);
        assert_eq!(
            arena.access_bps,
            vec![accesses[1], accesses[3], accesses[4]]
        );
    }

    #[test]
    fn push_reports_startup_demand() {
        let c = cfg();
        let ladder = Ladder::new(c.ladder_bps.clone());
        let client = make_client(&c, &ladder, 7);
        let expect = client.demand(&c).rate_bps;
        let mut arena = ClientArena::new();
        arena.push(&c, client);
        assert_eq!(arena.demands(), &[expect]);
        assert_eq!(arena.peak_demands(), &[expect]);
        let mut sim = LinkSim::new(c.clone(), LinkId::One, AllocationSchedule::none(), 1);
        sim.inject(make_client(&c, &ladder, 8));
        assert_eq!(sim.active_sessions(), 1);
    }
}
